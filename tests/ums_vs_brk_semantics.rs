//! Integration tests contrasting UMS semantics with the BRK baseline — the
//! behavioural claims of Sections 3 and 6 of the paper.

use rdht::baseline::{self, BrkAccess, InMemoryBrk, Version, VersionedValue};
use rdht::core::{ums, InMemoryDht, ReplicaValue, UmsAccess};
use rdht::hashing::Key;

/// Replays the paper's introductory scenario: an update misses one replica
/// holder ("p2 cannot be reached"), the holder comes back with stale data,
/// and a reader must still get the current value — and know that it is
/// current.
#[test]
fn missed_update_does_not_surface_stale_data() {
    let mut dht = InMemoryDht::new(2, 1);
    let key = Key::new("k");
    // put(k, d0) reaches both replica holders.
    ums::insert(&mut dht, &key, b"d0".to_vec()).unwrap();
    // put(k, d1): the holder under the second hash function is unreachable.
    let ids = dht.replication_ids_vec();
    dht.fail_puts_for_hashes(vec![ids[1]]);
    let report = ums::insert(&mut dht, &key, b"d1".to_vec()).unwrap();
    assert_eq!(report.replicas_written, 1);
    assert_eq!(report.replicas_failed, 1);
    dht.fail_puts_for_hashes(Vec::<rdht::hashing::HashId>::new());

    // The stale holder is reachable again; a reader still gets d1, certified.
    let got = ums::retrieve(&mut dht, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"d1");
}

/// The concurrent-update scenario of the introduction: two updates reach the
/// two replica holders in opposite orders. BRK ends ambiguous; UMS converges
/// to the update holding the later timestamp.
#[test]
fn concurrent_updates_brk_ambiguous_ums_deterministic() {
    let key = Key::new("k");

    // BRK: both updaters mint version 2.
    let mut brk = InMemoryBrk::new(2, 2);
    baseline::insert(&mut brk, &key, b"d0".to_vec()).unwrap();
    let ids = brk.replication_ids_vec();
    let d2 = VersionedValue::new(b"d2".to_vec(), Version(2));
    let d3 = VersionedValue::new(b"d3".to_vec(), Version(2));
    brk.put_versioned(ids[0], &key, &d2).unwrap();
    brk.put_versioned(ids[0], &key, &d3).unwrap();
    brk.put_versioned(ids[1], &key, &d3).unwrap();
    brk.put_versioned(ids[1], &key, &d2).unwrap();
    let brk_result = baseline::retrieve(&mut brk, &key).unwrap();
    assert!(
        brk_result.ambiguity.is_some(),
        "same version, different payloads: BRK cannot identify the current replica"
    );

    // UMS: the update that obtained the later timestamp wins everywhere.
    let mut dht = InMemoryDht::new(2, 2);
    ums::insert(&mut dht, &key, b"d0".to_vec()).unwrap();
    let ids = dht.replication_ids_vec();
    let ts2 = dht.kts_gen_ts(&key).unwrap();
    let ts3 = dht.kts_gen_ts(&key).unwrap();
    let d2 = ReplicaValue::new(b"d2".to_vec(), ts2);
    let d3 = ReplicaValue::new(b"d3".to_vec(), ts3);
    dht.put_replica(ids[0], &key, &d2).unwrap();
    dht.put_replica(ids[0], &key, &d3).unwrap();
    dht.put_replica(ids[1], &key, &d3).unwrap();
    dht.put_replica(ids[1], &key, &d2).unwrap();
    let ums_result = ums::retrieve(&mut dht, &key).unwrap();
    assert!(ums_result.is_current);
    assert_eq!(ums_result.data.unwrap(), b"d3");
}

/// Cost claim: UMS stops at the first current replica; BRK always reads all
/// of them (Figures 9–10 in microcosm).
#[test]
fn probe_counts_diverge_with_replica_count() {
    for replicas in [5usize, 10, 20, 40] {
        let key = Key::new("doc");
        let mut ums_dht = InMemoryDht::new(replicas, 3);
        ums::insert(&mut ums_dht, &key, b"v".to_vec()).unwrap();
        let ums_result = ums::retrieve(&mut ums_dht, &key).unwrap();
        assert_eq!(ums_result.replicas_probed, 1);

        let mut brk_dht = InMemoryBrk::new(replicas, 3);
        baseline::insert(&mut brk_dht, &key, b"v".to_vec()).unwrap();
        let brk_result = baseline::retrieve(&mut brk_dht, &key).unwrap();
        assert_eq!(brk_result.replicas_probed, replicas);
    }
}

/// When no current replica survives, UMS degrades gracefully: it returns the
/// most recent surviving replica and *says* it could not certify currency.
#[test]
fn ums_reports_uncertified_fallback_honestly() {
    let mut dht = InMemoryDht::new(6, 4);
    let key = Key::new("doc");
    ums::insert(&mut dht, &key, b"old".to_vec()).unwrap();
    ums::insert(&mut dht, &key, b"new".to_vec()).unwrap();
    for hash in dht.replication_ids_vec() {
        dht.overwrite_replica(
            hash,
            &key,
            ReplicaValue::new(b"old".to_vec(), rdht::Timestamp(1)),
        );
    }
    let got = ums::retrieve(&mut dht, &key).unwrap();
    assert!(!got.is_current);
    assert_eq!(got.data.unwrap(), b"old");
    assert_eq!(got.last_timestamp, rdht::Timestamp(2));
}
