//! Smoke test mirroring the crate-level doc example of `rdht`, so the
//! facade's re-export paths stay verified even if doctests are skipped.

use rdht::core::{ums, InMemoryDht};
use rdht::hashing::Key;

#[test]
fn facade_doc_example_paths_work() {
    let mut dht = InMemoryDht::new(10, 1);
    let key = Key::new("quickstart");
    ums::insert(&mut dht, &key, b"hello".to_vec()).unwrap();
    assert!(ums::retrieve(&mut dht, &key).unwrap().is_current);
}

#[test]
fn top_level_reexports_resolve() {
    // Types re-exported at the crate root are the same items as the
    // per-module paths — assignments must type-check both ways.
    let key: rdht::Key = rdht::hashing::Key::new("alias");
    let family: rdht::HashFamily = rdht::hashing::HashFamily::new(3, 7);
    let _position: u64 = family.eval_timestamp(&key);

    let config: rdht::SimConfig = rdht::sim::SimConfig::small_test(16, 1);
    let _algorithm: rdht::Algorithm = rdht::Algorithm::UmsDirect;
    let _ = config;
}

#[test]
fn facade_retrieve_sees_latest_insert() {
    let mut dht = InMemoryDht::new(10, 2);
    let key = Key::new("doc");
    ums::insert(&mut dht, &key, b"v1".to_vec()).unwrap();
    ums::insert(&mut dht, &key, b"v2".to_vec()).unwrap();
    let got = ums::retrieve(&mut dht, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.as_deref(), Some(b"v2".as_slice()));
}
