//! Integration test of the threaded deployment through the facade crate:
//! the same `rdht::ums` code that runs in the simulator runs against real
//! threads, and the overlays' neighbour-handoff property (which justifies the
//! direct algorithm) holds for both Chord and CAN.

use rdht::core::ums;
use rdht::hashing::Key;
use rdht::net::Cluster;
use rdht::overlay::can::{CanConfig, CanNetwork};
use rdht::overlay::chord::{ChordConfig, ChordNetwork};
use rdht::overlay::{NodeId, Overlay};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn cluster_round_trip_through_facade() {
    let cluster = Cluster::spawn(12, 6, 2026);
    let mut client = cluster.client();
    let key = Key::new("facade-check");
    ums::insert(&mut client, &key, b"one".to_vec()).unwrap();
    ums::insert(&mut client, &key, b"two".to_vec()).unwrap();
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"two");
    cluster.shutdown();
}

fn random_ids(seed: u64, count: usize) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < count {
        ids.insert(NodeId(rng.gen()));
    }
    ids.into_iter().collect()
}

/// Section 4.2.1.1: in Chord, when the responsible for a key departs, the
/// next responsible is one of its neighbours — the property that makes the
/// O(1)-message direct counter transfer possible.
#[test]
fn chord_next_responsible_is_a_neighbor() {
    let mut overlay = ChordNetwork::bootstrap(random_ids(3, 80), ChordConfig::default());
    let position = 0x0123_4567_89ab_cdefu64;
    for _ in 0..20 {
        let responsible = overlay.responsible_for(position).unwrap();
        let neighbors = overlay.neighbors(responsible);
        overlay.leave(responsible);
        match overlay.responsible_for(position) {
            Some(next) => assert!(neighbors.contains(&next)),
            None => break,
        }
    }
}

/// The same property for CAN: a departing owner's zone is taken over by one
/// of its neighbours.
#[test]
fn can_next_responsible_is_a_neighbor() {
    let mut overlay = CanNetwork::bootstrap(random_ids(4, 40), CanConfig::default());
    let position = 0xfedc_ba98_7654_3210u64;
    for _ in 0..10 {
        let responsible = overlay.responsible_for(position).unwrap();
        let neighbors = overlay.neighbors(responsible);
        if neighbors.is_empty() {
            break;
        }
        overlay.leave(responsible);
        match overlay.responsible_for(position) {
            Some(next) => assert!(
                neighbors.contains(&next),
                "CAN zone takeover must go to a neighbour"
            ),
            None => break,
        }
    }
}

/// Both overlays agree with each other about the abstract Overlay contract:
/// every position always has exactly one live responsible.
#[test]
fn overlays_always_have_a_unique_responsible() {
    let mut chord = ChordNetwork::bootstrap(random_ids(5, 30), ChordConfig::default());
    let mut can = CanNetwork::bootstrap(random_ids(6, 30), CanConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..40 {
        let position: u64 = rng.gen();
        for overlay in [&mut chord as &mut dyn Overlay, &mut can as &mut dyn Overlay] {
            let responsible = overlay.responsible_for(position).unwrap();
            assert!(overlay.is_alive(responsible));
        }
        if round % 4 == 0 {
            let id = NodeId(rng.gen());
            chord.join(id);
            can.join(id);
        }
    }
}

/// The durable deployment through the facade: a cluster journaling to disk
/// survives the crash and restart of the timestamping responsible.
#[test]
fn cluster_crash_restart_through_facade() {
    use rdht::net::{ClusterConfig, ClusterStorage};

    let root =
        std::env::temp_dir().join(format!("rdht-facade-crash-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = ClusterConfig::new(6, 4, 2027).with_storage(ClusterStorage::new(&root));
    let mut cluster = Cluster::spawn_with(config);
    let key = Key::new("facade-durable");
    let mut client = cluster.client();
    ums::insert(&mut client, &key, b"survives".to_vec()).unwrap();

    let victim = cluster.timestamp_responsible(&key).unwrap();
    cluster.crash_peer(victim).unwrap();
    let report = cluster.restart_peer(victim).unwrap();
    assert!(report.recovered_counters >= 1);

    let mut fresh = cluster.client();
    let got = ums::retrieve(&mut fresh, &key).unwrap();
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"survives");
    assert!(fresh.indirect_initializations() >= 1);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
