//! Validates the paper's probabilistic analysis (Theorem 1, Equations 1–5,
//! p_s) against controlled measurements — the cross-crate version of the
//! "theorem1" experiment, small enough for the test suite.

use rdht::core::{analysis, ums, InMemoryDht, ReplicaValue, Timestamp};
use rdht::hashing::Key;
use rdht::sim::{Algorithm, SimConfig, Simulation};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Monte-Carlo check of Theorem 1 in a controlled setting: with exactly
/// `current` of `total` replicas current (positions shuffled), the average
/// number of probes stays below 1/p_t (+ sampling slack) and below |Hr|.
#[test]
fn measured_probe_counts_respect_theorem_1() {
    let total = 10usize;
    let mut rng = StdRng::seed_from_u64(1);
    for &current in &[2usize, 4, 6, 8, 10] {
        let p_t = current as f64 / total as f64;
        let trials = 300;
        let mut probes_sum = 0usize;
        for trial in 0..trials {
            let mut dht = InMemoryDht::new(total, trial as u64);
            let key = Key::new("doc");
            ums::insert(&mut dht, &key, b"old".to_vec()).unwrap();
            ums::insert(&mut dht, &key, b"new".to_vec()).unwrap();
            // Make a random subset of (total - current) replicas stale.
            let mut ids = dht.replication_ids_vec();
            for i in (1..ids.len()).rev() {
                ids.swap(i, rng.gen_range(0..=i));
            }
            for hash in ids.into_iter().take(total - current) {
                dht.overwrite_replica(hash, &key, ReplicaValue::new(b"old".to_vec(), Timestamp(1)));
            }
            let got = ums::retrieve(&mut dht, &key).unwrap();
            assert!(got.is_current);
            probes_sum += got.replicas_probed;
        }
        let measured = probes_sum as f64 / trials as f64;
        let bound = analysis::theorem1_upper_bound(p_t);
        let eq5 = analysis::bounded_expectation(p_t, total);
        assert!(
            measured <= bound * 1.15,
            "p_t={p_t}: measured {measured} exceeds 1/p_t={bound} beyond sampling slack"
        );
        assert!(measured <= eq5 * 1.15);
        // The closed-form Eq.1 prediction should be close to the measurement
        // (sampling without replacement is slightly cheaper than the
        // geometric model, so the prediction is an upper estimate).
        let predicted = analysis::expected_probes_exact(p_t, total);
        assert!(
            measured <= predicted + 0.5,
            "p_t={p_t}: measured {measured} vs predicted {predicted}"
        );
    }
}

/// The paper's headline example: at p_t = 35%, fewer than 3 replicas are
/// retrieved on average.
#[test]
fn paper_example_35_percent_under_three_probes() {
    assert!(analysis::theorem1_upper_bound(0.35) < 3.0);
    assert!(analysis::expected_probes_exact(0.35, 10) < 3.0);
}

/// The indirect algorithm's success probability formula matches a direct
/// Monte-Carlo estimate.
#[test]
fn indirect_success_probability_matches_monte_carlo() {
    let mut rng = StdRng::seed_from_u64(2);
    for &(p_t, replicas) in &[(0.3f64, 5usize), (0.3, 13), (0.1, 10), (0.6, 4)] {
        let trials = 20_000;
        let mut successes = 0usize;
        for _ in 0..trials {
            if (0..replicas).any(|_| rng.gen_bool(p_t)) {
                successes += 1;
            }
        }
        let measured = successes as f64 / trials as f64;
        let predicted = analysis::indirect_success_probability(p_t, replicas);
        assert!(
            (measured - predicted).abs() < 0.02,
            "p_t={p_t}, |Hr|={replicas}: measured {measured} vs predicted {predicted}"
        );
    }
}

/// In the full simulator, the average number of replicas UMS retrieves stays
/// within the Equation 5 envelope computed from the measured p_t.
#[test]
fn simulated_probe_counts_stay_in_the_eq5_envelope() {
    let config = SimConfig::small_test(96, 17);
    let replicas = config.num_replicas;
    let report = Simulation::new(config).run();
    let samples: Vec<_> = report.samples_for(Algorithm::UmsDirect).collect();
    assert!(!samples.is_empty());
    for sample in samples {
        assert!(sample.replicas_probed <= replicas);
        if sample.certified_current && sample.currency_availability > 0.0 {
            // A certified answer found a current replica within the first
            // probes; the per-query bound min(1/p_t, |Hr|) holds in
            // expectation, and no single certified query can exceed |Hr|.
            let envelope = analysis::bounded_expectation(sample.currency_availability, replicas);
            assert!(envelope >= 1.0);
        }
    }
}
