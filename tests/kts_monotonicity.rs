//! Integration tests of KTS monotonicity across responsibility hand-offs on a
//! real Chord overlay (overlay + core used together, outside the simulator).

use rdht::core::kts::{IndirectObservation, KtsNode};
use rdht::core::Timestamp;
use rdht::hashing::{HashFamily, Key};
use rdht::overlay::chord::{ChordConfig, ChordNetwork};
use rdht::overlay::{MembershipEventKind, NodeId, Overlay};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drives a Chord ring through churn while generating timestamps for one key
/// at whichever peer is currently the responsible of timestamping, handing
/// counters over exactly as the direct algorithm prescribes for graceful
/// leaves and using the indirect observation after failures. Timestamps must
/// stay strictly increasing throughout.
#[test]
fn timestamps_stay_monotonic_across_chord_churn() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < 64 {
        ids.insert(NodeId(rng.gen()));
    }
    let mut overlay = ChordNetwork::bootstrap(ids, ChordConfig::default());
    let family = HashFamily::new(8, 7);
    let key = Key::new("audited-key");
    let ts_position = family.eval_timestamp(&key);

    // KTS state per live peer.
    let mut kts: std::collections::HashMap<NodeId, KtsNode> = overlay
        .alive_ids()
        .into_iter()
        .map(|id| (id, KtsNode::new(false)))
        .collect();

    let mut last_generated = Timestamp::ZERO;
    // The "DHT view" of the latest committed timestamp, available to the
    // indirect algorithm (we commit every generated timestamp immediately).
    let mut committed = Timestamp::ZERO;

    for round in 0..200 {
        // Generate a timestamp at the current responsible.
        let responsible = overlay.responsible_for(ts_position).unwrap();
        let node = kts
            .entry(responsible)
            .or_insert_with(|| KtsNode::new(false));
        let observation = if committed.is_zero() {
            IndirectObservation::nothing()
        } else {
            IndirectObservation::observed(committed)
        };
        let generated = node.gen_ts(&key, || observation).timestamp;
        assert!(
            generated > last_generated,
            "round {round}: generated {generated:?} after {last_generated:?}"
        );
        last_generated = generated;
        committed = generated;

        // Churn: every other round the responsible departs (mostly leaves,
        // sometimes failures), otherwise a random peer joins.
        if round % 2 == 0 {
            let fails = round % 10 == 0;
            let outcome = if fails {
                overlay.fail(responsible)
            } else {
                overlay.leave(responsible)
            };
            let mut departing = kts
                .remove(&responsible)
                .unwrap_or_else(|| KtsNode::new(false));
            for change in &outcome.changes {
                if change.handover_possible && change.kind == MembershipEventKind::Leave {
                    let exported = departing
                        .export_counters_in_range(|k| change.covers(family.eval_timestamp(k)));
                    kts.entry(change.to)
                        .or_insert_with(|| KtsNode::new(false))
                        .receive_transferred_counters(exported);
                }
            }
        } else {
            let new_id = NodeId(rng.gen());
            let outcome = overlay.join(new_id);
            kts.insert(new_id, KtsNode::new(false));
            for change in &outcome.changes {
                if change.kind == MembershipEventKind::Join {
                    let exported = kts
                        .get_mut(&change.from)
                        .map(|node| {
                            node.export_counters_in_range(|k| {
                                change.covers(family.eval_timestamp(k))
                            })
                        })
                        .unwrap_or_default();
                    kts.entry(change.to)
                        .or_insert_with(|| KtsNode::new(false))
                        .receive_transferred_counters(exported);
                }
            }
        }
    }
    assert!(last_generated.0 >= 200, "200 timestamps were generated");
}

/// The recovery strategy: a failed responsible that restarts hands its
/// counters to the new responsible, which corrects any counter the indirect
/// algorithm initialized too low.
#[test]
fn recovery_corrects_underestimated_counters_after_failure() {
    let key = Key::new("doc");
    let mut old_responsible = KtsNode::new(false);
    let mut latest = Timestamp::ZERO;
    for _ in 0..10 {
        latest = old_responsible
            .gen_ts(&key, IndirectObservation::nothing)
            .timestamp;
    }

    // The old responsible fails before the last timestamps reach any replica:
    // the new responsible can only observe an older timestamp in the DHT.
    let mut new_responsible = KtsNode::new(false);
    let stale_observation = Timestamp(4);
    let first = new_responsible
        .gen_ts(&key, || IndirectObservation::observed(stale_observation))
        .timestamp;
    assert!(
        first < latest,
        "the under-initialized counter would break monotonicity ({first:?} < {latest:?})"
    );

    // Recovery: the failed responsible restarts and sends its counters; the
    // new responsible corrects itself and reports which keys need re-insertion.
    let corrections =
        new_responsible.reconcile_with_recovered_counters(vec![(key.clone(), latest)]);
    assert_eq!(corrections.len(), 1);
    assert_eq!(corrections[0].corrected_to, latest);
    let next = new_responsible
        .gen_ts(&key, || panic!("counter is valid"))
        .timestamp;
    assert!(next > latest);
}

/// Periodic inspection achieves the same correction without the failed peer
/// ever coming back, by comparing counters against the timestamps stored in
/// the DHT.
#[test]
fn periodic_inspection_catches_up_with_stored_timestamps() {
    let key = Key::new("doc");
    let mut responsible = KtsNode::new(false);
    responsible.gen_ts(&key, || IndirectObservation::observed(Timestamp(3)));
    // The DHT actually holds a replica stamped 17 that the indirect scan missed.
    let corrections =
        responsible.periodic_inspection(|k| if k == &key { Some(Timestamp(17)) } else { None });
    assert_eq!(corrections.len(), 1);
    assert!(responsible.counter_value(&key).unwrap() >= Timestamp(17));
    let next = responsible
        .gen_ts(&key, || panic!("counter is valid"))
        .timestamp;
    assert!(next > Timestamp(17));
}
