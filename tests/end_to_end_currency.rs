//! End-to-end integration tests across crates: the simulated DHT (overlay +
//! core + baseline + sim) must uphold the paper's currency guarantees and
//! cost ordering.

use rdht::sim::{Algorithm, SimConfig, Simulation};

#[test]
fn certified_answers_are_always_really_current() {
    // Whenever UMS certifies an answer (timestamp matches KTS's last
    // timestamp), the returned payload must be the latest committed update.
    for seed in [11u64, 12, 13] {
        let report = Simulation::new(SimConfig::small_test(96, seed)).run();
        for algorithm in [Algorithm::UmsDirect, Algorithm::UmsIndirect] {
            for sample in report.samples_for(algorithm) {
                if sample.certified_current {
                    assert!(
                        sample.returned_latest,
                        "seed {seed}: {algorithm} certified a stale answer at t={}",
                        sample.time
                    );
                }
            }
        }
    }
}

#[test]
fn ums_beats_brk_on_both_metrics_across_seeds() {
    let mut ums_wins_time = 0;
    let mut ums_wins_messages = 0;
    let runs = 3;
    for seed in 0..runs {
        let report = Simulation::new(SimConfig::small_test(80, 100 + seed)).run();
        let ums = report.summary(Algorithm::UmsDirect);
        let brk = report.summary(Algorithm::Brk);
        if ums.mean_response_time < brk.mean_response_time {
            ums_wins_time += 1;
        }
        if ums.mean_messages < brk.mean_messages {
            ums_wins_messages += 1;
        }
    }
    assert_eq!(
        ums_wins_time, runs,
        "UMS-Direct should win on response time in every run"
    );
    assert_eq!(
        ums_wins_messages, runs,
        "UMS-Direct should win on messages in every run"
    );
}

#[test]
fn ums_direct_never_probes_more_than_ums_indirect_on_average() {
    let report = Simulation::new(SimConfig::small_test(120, 7)).run();
    let direct = report.summary(Algorithm::UmsDirect);
    let indirect = report.summary(Algorithm::UmsIndirect);
    // The direct counter transfer can only reduce work (it avoids indirect
    // initializations); allow equality for runs where no hand-off happened.
    assert!(
        direct.mean_messages <= indirect.mean_messages + 1e-9,
        "direct {} vs indirect {}",
        direct.mean_messages,
        indirect.mean_messages
    );
}

#[test]
fn population_and_replica_invariants_hold_under_churn() {
    let config = SimConfig::small_test(64, 21);
    let peers = config.num_peers;
    let replicas = config.num_replicas;
    let mut simulation = Simulation::new(config);
    let report = simulation.run();
    assert_eq!(
        simulation.live_peers(),
        peers,
        "population must stay constant"
    );
    for sample in &report.samples {
        assert!(sample.replicas_probed <= replicas);
        assert!(sample.messages as usize >= sample.replicas_probed);
    }
}

#[test]
fn disabling_data_handoff_reduces_currency() {
    // Ablation: with replica hand-off disabled, responsibility changes leave
    // holes, so the measured probability of currency and availability drops.
    let mut with_handoff = SimConfig::small_test(96, 31);
    with_handoff.churn_rate_per_second *= 4.0;
    let mut without_handoff = with_handoff.clone();
    without_handoff.transfer_data_on_membership_change = false;

    let report_with = Simulation::new(with_handoff).run();
    let report_without = Simulation::new(without_handoff).run();
    let pt_with = report_with
        .summary(Algorithm::UmsDirect)
        .mean_currency_availability;
    let pt_without = report_without
        .summary(Algorithm::UmsDirect)
        .mean_currency_availability;
    assert!(
        pt_without <= pt_with + 1e-9,
        "hand-off disabled should not improve currency ({pt_without} vs {pt_with})"
    );
}
