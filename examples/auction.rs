//! Cooperative auction management over a replicated DHT — another of the
//! paper's motivating applications — contrasting UMS with the BRK baseline.
//!
//! Two bidders race to outbid each other on the same item. With BRK-style
//! version counters the concurrent bids can mint the same version number, so
//! replicas disagree and the "winning bid" depends on which replica a reader
//! happens to contact. With UMS the KTS timestamps totally order the bids per
//! item and every reader sees the same, latest bid.
//!
//! ```text
//! cargo run --release --example auction
//! ```

use rdht::baseline::{self, InMemoryBrk, Version, VersionedValue};
use rdht::core::ReplicaValue;
use rdht::core::{ums, InMemoryDht, UmsAccess};
use rdht::hashing::Key;

fn main() {
    let item = Key::new("auction:antique-clock");
    brk_ambiguity(&item);
    ums_resolution(&item);
}

/// Reproduces the concurrent-update anomaly of version-counter replication
/// (Section 6 of the paper, discussing BRICKS).
fn brk_ambiguity(item: &Key) {
    println!("== BRK baseline (version counters) ==");
    let mut dht = InMemoryBrk::new(6, 1);
    baseline::insert(&mut dht, item, b"opening bid: 100".to_vec()).unwrap();

    // Both bidders read version 1, both mint version 2, and their writes
    // reach the replicas in different orders (a reordered network).
    let alice = VersionedValue::new(b"alice bids 150".to_vec(), Version(2));
    let bob = VersionedValue::new(b"bob bids 160".to_vec(), Version(2));
    for (i, hash) in dht.replication_ids_vec().into_iter().enumerate() {
        if i % 2 == 0 {
            baseline::BrkAccess::put_versioned(&mut dht, hash, item, &alice).unwrap();
            baseline::BrkAccess::put_versioned(&mut dht, hash, item, &bob).unwrap();
        } else {
            baseline::BrkAccess::put_versioned(&mut dht, hash, item, &bob).unwrap();
            baseline::BrkAccess::put_versioned(&mut dht, hash, item, &alice).unwrap();
        }
    }

    let result = baseline::retrieve(&mut dht, item).unwrap();
    println!(
        "highest version is {}, but the replicas disagree about what it contains:",
        result.version
    );
    match result.ambiguity {
        Some(ambiguity) => {
            for payload in &ambiguity.conflicting_payloads {
                println!("  candidate: {}", String::from_utf8_lossy(payload));
            }
            println!("-> no reader can tell which bid is the current one\n");
        }
        None => println!("-> (this interleaving happened to stay consistent)\n"),
    }
}

/// The same race through UMS: the later KTS timestamp wins everywhere.
fn ums_resolution(item: &Key) {
    println!("== UMS (KTS timestamps) ==");
    let mut dht = InMemoryDht::new(6, 1);
    ums::insert(&mut dht, item, b"opening bid: 100".to_vec()).unwrap();

    // The two bids obtain timestamps from KTS; even though their writes reach
    // the replicas in different orders, the one stamped later wins on every
    // replica.
    let ts_alice = dht.kts_gen_ts(item).unwrap();
    let ts_bob = dht.kts_gen_ts(item).unwrap();
    let alice = ReplicaValue::new(b"alice bids 150".to_vec(), ts_alice);
    let bob = ReplicaValue::new(b"bob bids 160".to_vec(), ts_bob);
    for (i, hash) in dht.replication_ids_vec().into_iter().enumerate() {
        if i % 2 == 0 {
            dht.put_replica(hash, item, &alice).unwrap();
            dht.put_replica(hash, item, &bob).unwrap();
        } else {
            dht.put_replica(hash, item, &bob).unwrap();
            dht.put_replica(hash, item, &alice).unwrap();
        }
    }

    let result = ums::retrieve(&mut dht, item).unwrap();
    println!(
        "retrieve returns: {} (certified current: {}, {} probe(s))",
        String::from_utf8_lossy(&result.data.clone().unwrap()),
        result.is_current,
        result.replicas_probed
    );
    assert!(result.is_current);
    assert_eq!(result.data.unwrap(), b"bob bids 160");
    println!("-> the bid holding the latest KTS timestamp wins on every replica");
}
