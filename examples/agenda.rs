//! Shared agenda management — one of the applications the paper's
//! introduction uses to motivate data currency ("agenda management, bulletin
//! boards, cooperative auction management, reservation management").
//!
//! Several colleagues keep rescheduling the same meeting slots concurrently
//! from different peers of an in-process cluster (every peer is a real
//! thread). Whoever reads the agenda afterwards must see the *latest* booking
//! for every slot — never a stale one — which is exactly the guarantee UMS
//! provides and a plain replicated DHT does not.
//!
//! ```text
//! cargo run --release --example agenda
//! ```

use std::sync::Arc;

use rdht::core::ums;
use rdht::hashing::Key;
use rdht::net::Cluster;

const SLOTS: [&str; 4] = ["mon-09h", "mon-14h", "tue-10h", "wed-16h"];
const COLLEAGUES: usize = 6;
const RESCHEDULES_PER_COLLEAGUE: usize = 20;

fn main() {
    let cluster = Arc::new(Cluster::spawn(16, 8, 2026));
    println!(
        "cluster up: {} peers, 8 replicas per agenda slot",
        cluster.live_peers()
    );

    // Every colleague runs on its own thread with its own client and keeps
    // re-booking random slots.
    std::thread::scope(|scope| {
        for colleague in 0..COLLEAGUES {
            let cluster = Arc::clone(&cluster);
            scope.spawn(move || {
                let mut client = cluster.client();
                for round in 0..RESCHEDULES_PER_COLLEAGUE {
                    let slot = SLOTS[(colleague + round) % SLOTS.len()];
                    let key = Key::new(format!("agenda:{slot}"));
                    let booking = format!("booked by colleague-{colleague} (round {round})");
                    ums::insert(&mut client, &key, booking.into_bytes()).expect("booking failed");
                }
            });
        }
    });

    // Read the final agenda. Every slot must come back certified current —
    // the timestamp of the returned booking equals the last timestamp ever
    // generated for that slot.
    let mut client = cluster.client();
    let mut total_probes = 0usize;
    println!("\nfinal agenda:");
    for slot in SLOTS {
        let key = Key::new(format!("agenda:{slot}"));
        let got = ums::retrieve(&mut client, &key).expect("retrieve failed");
        assert!(
            got.is_current,
            "agenda slot {slot} returned a non-current booking"
        );
        total_probes += got.replicas_probed;
        println!(
            "  {slot}: {} [ts {}] ({} replica probe(s))",
            String::from_utf8_lossy(&got.data.unwrap()),
            got.timestamp,
            got.replicas_probed
        );
    }
    println!(
        "\nall {} slots certified current; {} total replica probes for {} slots",
        SLOTS.len(),
        total_probes,
        SLOTS.len()
    );

    match Arc::try_unwrap(cluster) {
        Ok(cluster) => cluster.shutdown(),
        Err(_) => unreachable!("all colleague threads have finished"),
    }
}
