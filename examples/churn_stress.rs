//! Churn stress test: how well do UMS-Direct, UMS-Indirect and BRK keep
//! returning current data as the failure rate climbs?
//!
//! Runs the discrete-event simulator at several failure rates (the fraction
//! of peer departures that are fail-stop crashes rather than graceful
//! leaves) and prints, for each algorithm, the mean response time and how
//! often the returned value was really the latest committed update — a
//! compact, runnable version of the paper's Figure 11 plus a currency audit.
//!
//! ```text
//! cargo run --release --example churn_stress
//! ```

use rdht::sim::{Algorithm, SimConfig, Simulation};

fn main() {
    let failure_rates = [0.05, 0.25, 0.50, 0.75, 0.95];
    println!("peers: 400, replicas: 8, churn: ~1 departure every 12 s (simulated)\n");
    println!(
        "{:<14} {:<13} {:>14} {:>12} {:>16}",
        "failure rate", "algorithm", "response (s)", "messages", "latest answer %"
    );

    for &failure_rate in &failure_rates {
        let mut config = SimConfig::small_test(400, 99);
        config.num_replicas = 8;
        config.queries = 24;
        config.failure_rate = failure_rate;
        let report = Simulation::new(config).run();

        for algorithm in Algorithm::ALL {
            let summary = report.summary(algorithm);
            println!(
                "{:<14} {:<13} {:>14.2} {:>12.1} {:>16.0}",
                format!("{:.0}%", failure_rate * 100.0),
                algorithm.label(),
                summary.mean_response_time,
                summary.mean_messages,
                summary.returned_latest_fraction * 100.0
            );
        }
        println!();
    }

    println!(
        "UMS stays well below BRK at every failure rate; UMS-Direct and UMS-Indirect converge\n\
         as failures dominate, because a failed timestamping responsible forces the indirect\n\
         counter initialization in both variants (paper, Section 5.4)."
    );
}
