//! Quickstart: insert, update and retrieve a key with a currency guarantee.
//!
//! Runs the UMS/KTS stack twice — first against the single-process in-memory
//! DHT (the smallest possible setup), then against a simulated 500-peer Chord
//! overlay under churn — and prints what each retrieve cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rdht::core::{ums, InMemoryDht};
use rdht::hashing::Key;
use rdht::sim::{Algorithm, SimConfig, Simulation};

fn main() {
    in_memory();
    simulated();
}

fn in_memory() {
    println!("== In-memory DHT (10 replicas) ==");
    let mut dht = InMemoryDht::new(10, 42);
    let key = Key::new("greeting");

    ums::insert(&mut dht, &key, b"hello".to_vec()).expect("insert");
    ums::insert(&mut dht, &key, b"hello, world".to_vec()).expect("update");

    let got = ums::retrieve(&mut dht, &key).expect("retrieve");
    println!(
        "retrieved {:?} (current: {}, probes: {})",
        String::from_utf8_lossy(&got.data.clone().unwrap()),
        got.is_current,
        got.replicas_probed
    );
    assert!(got.is_current);
    assert_eq!(got.data.unwrap(), b"hello, world");

    // Simulate a crash of the timestamping responsible: the counter is lost,
    // the next operation re-initializes it from the replicas (the indirect
    // algorithm) and currency is preserved.
    dht.crash_timestamp_service();
    ums::insert(&mut dht, &key, b"hello again".to_vec()).expect("insert after crash");
    let got = ums::retrieve(&mut dht, &key).expect("retrieve after crash");
    println!(
        "after KTS failover: {:?} (current: {})",
        String::from_utf8_lossy(&got.data.clone().unwrap()),
        got.is_current
    );
    assert!(got.is_current);
}

fn simulated() {
    println!("\n== Simulated 500-peer Chord overlay under churn ==");
    let mut config = SimConfig::small_test(500, 7);
    config.queries = 20;
    config.num_keys = 16;
    let mut simulation = Simulation::new(config);
    let report = simulation.run();

    for algorithm in Algorithm::ALL {
        let summary = report.summary(algorithm);
        println!(
            "{:<12} mean response {:6.2} s | mean messages {:6.1} | replicas probed {:4.2} | latest answer {:4.0}%",
            algorithm.label(),
            summary.mean_response_time,
            summary.mean_messages,
            summary.mean_replicas_probed,
            summary.returned_latest_fraction * 100.0
        );
    }
    println!(
        "(churn processed: {} leaves, {} failures, {} joins)",
        report.stats.leaves, report.stats.failures, report.stats.joins
    );
}
