//! **rdht** — data currency in replicated DHTs.
//!
//! A from-scratch Rust reproduction of *"Data Currency in Replicated DHTs"*
//! (Akbarinia, Pacitti, Valduriez — SIGMOD 2007): an Update Management
//! Service (UMS) and a Key-based Timestamping Service (KTS) that let a
//! replicated DHT return the **latest** replica of a key despite churn and
//! concurrent updates, together with everything needed to evaluate them —
//! Chord and CAN overlays, the BRK baseline, a discrete-event simulator with
//! the paper's workload, a threaded in-process deployment, and an experiment
//! harness regenerating every figure of the paper.
//!
//! This facade crate re-exports the individual crates under stable paths:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`hashing`] | `rdht-hashing` | keys, pairwise-independent hash families |
//! | [`overlay`] | `rdht-overlay` | Chord and CAN overlays, routing, churn |
//! | [`core`] | `rdht-core` | UMS + KTS + the probabilistic analysis |
//! | [`baseline`] | `rdht-baseline` | the BRK (BRICKS-style) baseline |
//! | [`sim`] | `rdht-sim` | discrete-event simulator and workloads |
//! | [`net`] | `rdht-net` | threaded in-process cluster deployment |
//! | [`storage`] | `rdht-storage` | durable peer state: WAL, snapshots, recovery |
//! | [`membership`] | `rdht-membership` | live joins and graceful leaves: plans + crash-recoverable transfers |
//!
//! The most common entry points are also re-exported at the top level.
//!
//! ```
//! use rdht::core::{ums, InMemoryDht};
//! use rdht::hashing::Key;
//!
//! let mut dht = InMemoryDht::new(10, 1);
//! let key = Key::new("quickstart");
//! ums::insert(&mut dht, &key, b"hello".to_vec()).unwrap();
//! assert!(ums::retrieve(&mut dht, &key).unwrap().is_current);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rdht_baseline as baseline;
pub use rdht_core as core;
pub use rdht_hashing as hashing;
pub use rdht_membership as membership;
pub use rdht_net as net;
pub use rdht_overlay as overlay;
pub use rdht_sim as sim;
pub use rdht_storage as storage;

pub use rdht_core::{ums, InMemoryDht, ReplicaValue, Timestamp, UmsAccess, UmsConfig, UmsError};
pub use rdht_hashing::{HashFamily, HashId, Key};
pub use rdht_sim::{Algorithm, SimConfig, Simulation};
