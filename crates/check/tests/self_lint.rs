//! The lint gate applied to this workspace itself: `cargo test -p
//! rdht-check` fails if any project invariant regresses, without waiting
//! for the CI `analysis` job to run the binary.

use std::path::PathBuf;

use rdht_check::lint::lint_workspace;

#[test]
fn workspace_passes_its_own_lint() {
    // crates/check -> crates -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/check has a workspace root two levels up")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "not a workspace root: {}",
        root.display()
    );
    let findings = lint_workspace(&root).expect("walk workspace sources");
    assert!(
        findings.is_empty(),
        "rdht-check lint found {} problem(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
