//! Litmus tests for the model checker itself: classic weak-memory and
//! interleaving shapes with known verdicts. If the engine cannot find
//! these violations (or reports spurious ones), nothing downstream can be
//! trusted — this file is the checker's own acceptance gate.

use std::sync::atomic::Ordering;

use rdht_check::cell::UnsafeCell;
use rdht_check::sync::{Arc, AtomicU64, Mutex};
use rdht_check::{model, model_expect_violation, model_with, thread, Config};

fn exhaustive() -> Config {
    Config {
        preemption_bound: None,
        ..Config::default()
    }
}

/// Message passing with Release/Acquire: the classic publication idiom
/// must hold in every schedule.
#[test]
fn message_passing_release_acquire_holds() {
    let report = model_with(exhaustive(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "publication torn");
        }
        t.join().unwrap();
    });
    assert!(
        report.schedules >= 3,
        "expected several interleavings, saw {}",
        report.schedules
    );
}

/// The same shape with a Relaxed publication store must fail: the model
/// exposes the stale read a real weak machine could produce.
#[test]
fn message_passing_relaxed_fails() {
    let failure = model_expect_violation(exhaustive(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "publication torn");
        }
        t.join().unwrap();
    });
    assert!(failure.contains("publication torn"), "{failure}");
    assert!(failure.contains("interleaving"), "{failure}");
}

/// Two unsynchronized load+store increments lose an update in some
/// schedule; the checker must find it.
#[test]
fn load_store_increment_loses_updates() {
    let failure = model_expect_violation(exhaustive(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::Relaxed);
            c2.store(v + 1, Ordering::Relaxed);
        });
        let v = counter.load(Ordering::Relaxed);
        counter.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2, "lost increment");
    });
    assert!(failure.contains("lost increment"), "{failure}");
}

/// `fetch_add` increments are atomic: no schedule loses one.
#[test]
fn fetch_add_increments_are_exact() {
    model_with(exhaustive(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        counter.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
}

/// Mutexes exclude and synchronize: a guarded read-modify-write never
/// loses updates even with plain (non-atomic) data inside.
#[test]
fn mutex_guards_exclude() {
    model(|| {
        let shared = Arc::new(Mutex::new(0u64));
        let s2 = Arc::clone(&shared);
        let t = thread::spawn(move || {
            *s2.lock().unwrap() += 1;
        });
        *shared.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*shared.lock().unwrap(), 2);
    });
}

/// Lock-order inversion: the checker reports the deadlock instead of
/// hanging.
#[test]
fn lock_order_inversion_is_a_deadlock() {
    let failure = model_expect_violation(exhaustive(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_gb, _ga));
        t.join().unwrap();
    });
    assert!(failure.contains("deadlock"), "{failure}");
}

/// Unsynchronized concurrent cell accesses are reported as a data race
/// with both source locations.
#[test]
fn unsynchronized_cell_access_races() {
    let failure = model_expect_violation(exhaustive(), || {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.with_mut(|p| unsafe { *p = 1 });
        });
        cell.with(|p| unsafe { *p });
        t.join().unwrap();
    });
    assert!(failure.contains("data race"), "{failure}");
    assert!(failure.contains("litmus.rs"), "{failure}");
}

/// The same cell protected by a mutex is race-free.
#[test]
fn mutex_protected_cell_is_race_free() {
    model(|| {
        let lock = Arc::new(Mutex::new(()));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&cell));
        let t = thread::spawn(move || {
            let _g = l2.lock().unwrap();
            c2.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let _g = lock.lock().unwrap();
            cell.with_mut(|p| unsafe { *p += 1 });
        }
        t.join().unwrap();
        let _g = lock.lock().unwrap();
        assert_eq!(cell.with(|p| unsafe { *p }), 2);
    });
}

/// The preemption bound really bounds. The probe bug is a lost update
/// through a read-unlock-relock-write gap: every operation is a mutex op
/// (strongly synchronized — no stale read can substitute for a context
/// switch), so the bug is reachable *only* by preempting the gap. Bound 0
/// (threads run to completion except at voluntary blocks) cannot see it;
/// bound 2 can.
#[test]
fn preemption_bound_trades_coverage() {
    let racy = |cfg: Config| {
        let run = || {
            let shared = Arc::new(Mutex::new(0u64));
            let s2 = Arc::clone(&shared);
            let increment_with_gap = |m: &Mutex<u64>| {
                let v = *m.lock().unwrap();
                *m.lock().unwrap() = v + 1;
            };
            let t = thread::spawn(move || increment_with_gap(&s2));
            increment_with_gap(&shared);
            t.join().unwrap();
            assert_eq!(*shared.lock().unwrap(), 2, "lost increment");
        };
        rdht_check::exec_probe(cfg, run)
    };
    assert!(racy(Config {
        preemption_bound: Some(0),
        ..Config::default()
    })
    .is_none());
    // Bound 2 covers it.
    assert!(racy(Config {
        preemption_bound: Some(2),
        ..Config::default()
    })
    .is_some());
}

/// CAS spin loops terminate under the model thanks to yield semantics,
/// and CAS exclusion holds.
#[test]
fn cas_spinlock_excludes() {
    model(|| {
        let lock = Arc::new(AtomicU64::new(0));
        let cell = Arc::new(UnsafeCell::new(0u64));
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&cell));
        let acquire = |l: &AtomicU64| {
            while l
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                thread::yield_now();
            }
        };
        let t = thread::spawn(move || {
            acquire(&l2);
            c2.with_mut(|p| unsafe { *p += 1 });
            l2.store(0, Ordering::Release);
        });
        acquire(&lock);
        cell.with_mut(|p| unsafe { *p += 1 });
        lock.store(0, Ordering::Release);
        t.join().unwrap();
        acquire(&lock);
        assert_eq!(cell.with(|p| unsafe { *p }), 2);
        lock.store(0, Ordering::Release);
    });
}

/// Three threads, sanity check that exploration scales and fetch_max is
/// exact (the Counter::record_absolute shape).
#[test]
fn three_thread_fetch_max_converges() {
    let report = model_with(Config::default(), || {
        let hwm = Arc::new(AtomicU64::new(0));
        let (h2, h3) = (Arc::clone(&hwm), Arc::clone(&hwm));
        let t2 = thread::spawn(move || {
            h2.fetch_max(10, Ordering::Relaxed);
        });
        let t3 = thread::spawn(move || {
            h3.fetch_max(7, Ordering::Relaxed);
        });
        hwm.fetch_max(3, Ordering::Relaxed);
        t2.join().unwrap();
        t3.join().unwrap();
        assert_eq!(hwm.load(Ordering::Relaxed), 10, "high-water mark lost");
    });
    assert!(report.schedules >= 3, "saw {} schedules", report.schedules);
}
