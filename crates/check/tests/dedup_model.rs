//! Models the idempotency-window protocol from `crates/net` (the
//! `DedupWindow` a peer consults before applying an identified mutation):
//! a retried or duplicated request must be applied **exactly once**, with
//! every duplicate answered from the cached reply.
//!
//! In the real peer loop the window lives on a single thread, so the
//! check-then-act sequence (`lookup` → apply → `record`) is trivially
//! atomic. These tests pin down *why* that matters: the same protocol
//! with the window behind a lock but the check and the record in separate
//! critical sections double-applies under a race — the checker finds the
//! interleaving — while holding the lock across the whole sequence admits
//! exactly one of N racing duplicates.

use rdht_check::sync::{Arc, AtomicU64, Mutex, Ordering};
use rdht_check::{model, model_expect_violation, thread, Config};

/// One client's cached reply slot: `None` until the op is applied, then
/// `Some(reply)` for the duplicate horizon.
type Window = Mutex<Option<u64>>;

/// The broken shape: lookup and record are individually locked, but a
/// second duplicate can slip between them and double-apply.
fn racy_duplicate(window: &Window, applied: &AtomicU64) -> u64 {
    let cached = *window.lock().unwrap();
    if let Some(reply) = cached {
        return reply;
    }
    // relaxed: the count is asserted only after both threads are joined,
    // and in the model every schedule checks it.
    let reply = 40 + applied.fetch_add(1, Ordering::Relaxed) + 1;
    *window.lock().unwrap() = Some(reply);
    reply
}

/// The correct shape: check, apply and record under one critical section,
/// mirroring the single-threaded peer loop's atomicity.
fn serialized_duplicate(window: &Window, applied: &AtomicU64) -> u64 {
    let mut slot = window.lock().unwrap();
    if let Some(reply) = *slot {
        return reply;
    }
    // relaxed: only ever touched while holding the window lock.
    let reply = 40 + applied.fetch_add(1, Ordering::Relaxed) + 1;
    *slot = Some(reply);
    reply
}

#[test]
fn split_lookup_record_double_applies() {
    let failure = model_expect_violation(Config::default(), || {
        let window: Arc<Window> = Arc::new(Mutex::new(None));
        let applied = Arc::new(AtomicU64::new(0));
        let (w2, a2) = (Arc::clone(&window), Arc::clone(&applied));
        let t = thread::spawn(move || racy_duplicate(&w2, &a2));
        let mine = racy_duplicate(&window, &applied);
        let theirs = t.join().unwrap();
        assert_eq!(
            applied.load(Ordering::Relaxed),
            1,
            "duplicate was applied twice (replies {mine} and {theirs})"
        );
    });
    assert!(
        failure.contains("applied twice"),
        "expected the double-apply interleaving, got:\n{failure}"
    );
}

#[test]
fn serialized_window_applies_exactly_once() {
    model(|| {
        let window: Arc<Window> = Arc::new(Mutex::new(None));
        let applied = Arc::new(AtomicU64::new(0));
        let (w2, a2) = (Arc::clone(&window), Arc::clone(&applied));
        let (w3, a3) = (Arc::clone(&window), Arc::clone(&applied));
        let t2 = thread::spawn(move || serialized_duplicate(&w2, &a2));
        let t3 = thread::spawn(move || serialized_duplicate(&w3, &a3));
        let mine = serialized_duplicate(&window, &applied);
        let r2 = t2.join().unwrap();
        let r3 = t3.join().unwrap();
        assert_eq!(
            applied.load(Ordering::Relaxed),
            1,
            "not applied exactly once"
        );
        assert_eq!(mine, 41, "duplicate answered with a different reply");
        assert_eq!(r2, 41, "duplicate answered with a different reply");
        assert_eq!(r3, 41, "duplicate answered with a different reply");
    });
}
