//! Models the `wal_syncs` accounting pattern from `crates/storage`: the
//! engine folds a live WAL's sync count into a base total at roll-over
//! (`stats.wal_syncs += old.syncs()`), and publishes the total into a
//! metrics counter with `record_absolute` (a `fetch_max` high-water mark)
//! so re-publication is idempotent and stale publishers cannot regress it.
//!
//! Two invariants, each paired with a broken variant the checker flags:
//!
//! * roll-over must *move* the live count with a single RMW (`swap`) — a
//!   load-then-store reset loses syncs recorded in the gap;
//! * publication must be a `fetch_max` — a plain store lets a stale
//!   publisher overwrite a newer total.

use rdht_check::sync::{Arc, AtomicU64, Ordering};
use rdht_check::{model, model_expect_violation, thread, Config};

#[test]
fn rollover_via_swap_never_loses_a_sync() {
    model(|| {
        // relaxed: totals are read only after join; the model proves no
        // schedule loses an increment.
        let live = Arc::new(AtomicU64::new(0));
        let base = Arc::new(AtomicU64::new(0));
        let l2 = Arc::clone(&live);
        let writer = thread::spawn(move || {
            l2.fetch_add(1, Ordering::Relaxed);
            l2.fetch_add(1, Ordering::Relaxed);
        });
        // Roll the WAL: move whatever the live writer has recorded so far
        // into the base total in one atomic exchange.
        let folded = live.swap(0, Ordering::Relaxed);
        base.fetch_add(folded, Ordering::Relaxed);
        writer.join().unwrap();
        let total = base.load(Ordering::Relaxed) + live.load(Ordering::Relaxed);
        assert_eq!(total, 2, "roll-over lost a sync");
    });
}

#[test]
fn rollover_via_load_then_store_loses_syncs() {
    let failure = model_expect_violation(Config::default(), || {
        let live = Arc::new(AtomicU64::new(0));
        let base = Arc::new(AtomicU64::new(0));
        let l2 = Arc::clone(&live);
        let writer = thread::spawn(move || {
            l2.fetch_add(1, Ordering::Relaxed);
            l2.fetch_add(1, Ordering::Relaxed);
        });
        // Broken roll-over: a sync recorded between the load and the
        // store(0) vanishes from both totals.
        let folded = live.load(Ordering::Relaxed);
        live.store(0, Ordering::Relaxed);
        base.fetch_add(folded, Ordering::Relaxed);
        writer.join().unwrap();
        let total = base.load(Ordering::Relaxed) + live.load(Ordering::Relaxed);
        assert_eq!(total, 2, "roll-over lost a sync");
    });
    assert!(
        failure.contains("lost a sync"),
        "expected the lost-sync interleaving, got:\n{failure}"
    );
}

#[test]
fn record_absolute_publication_is_monotonic() {
    model(|| {
        let published = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&published);
        // A stale publisher (total 7) races a fresh one (total 10); the
        // high-water mark keeps the newer value either way.
        let t = thread::spawn(move || {
            p2.fetch_max(7, Ordering::Relaxed);
        });
        published.fetch_max(10, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(
            published.load(Ordering::Relaxed),
            10,
            "stale publisher regressed the total"
        );
    });
}

#[test]
fn store_based_publication_can_regress() {
    let failure = model_expect_violation(Config::default(), || {
        let published = Arc::new(AtomicU64::new(0));
        let p2 = Arc::clone(&published);
        let t = thread::spawn(move || {
            p2.store(7, Ordering::Relaxed);
        });
        published.store(10, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(
            published.load(Ordering::Relaxed),
            10,
            "stale publisher regressed the total"
        );
    });
    assert!(
        failure.contains("regressed the total"),
        "expected the regression interleaving, got:\n{failure}"
    );
}
