//! `rdht-check` CLI: `rdht-check lint [--root DIR]` walks the workspace
//! and reports project-invariant violations, exiting nonzero on any
//! finding (CI runs this with `-D warnings` semantics).

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    println!("usage: rdht-check lint [--root DIR]");
    println!();
    println!("Lints the workspace for project invariants (see crates/check/src/lint.rs");
    println!("and the README's \"Correctness tooling\" section). The model-checker");
    println!("engine runs as tests: RUSTFLAGS='--cfg rdht_model' cargo test -p rdht-check \\");
    println!("  -p rdht-metrics --release");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut command = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" if command.is_none() => command = Some("lint"),
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if command != Some("lint") {
        return usage();
    }

    // `cargo run -p rdht-check -- lint` runs from the workspace root; a
    // bare `.` also works from any crate dir thanks to the marker probe.
    let root = workspace_root(root);
    match rdht_check::lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("rdht-check lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("rdht-check lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            println!("rdht-check lint: i/o error: {err}");
            ExitCode::from(2)
        }
    }
}

/// Ascends from `start` to the nearest directory containing both
/// `Cargo.toml` and `crates/` — the workspace root.
fn workspace_root(start: PathBuf) -> PathBuf {
    let mut dir = start.canonicalize().unwrap_or(start);
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
