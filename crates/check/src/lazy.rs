//! Per-execution lazy statics. A `static NEXT: AtomicU64` in production
//! code cannot stay a plain static under the model: model objects belong
//! to one execution and must be re-created for every explored schedule.
//! [`Lazy`] keys per-execution instances by the static's address, so the
//! consuming crate writes
//!
//! ```ignore
//! static NEXT: rdht_check::lazy::Lazy<AtomicU64> =
//!     rdht_check::lazy::Lazy::new(|| AtomicU64::new(1));
//! NEXT.get().fetch_add(1, Ordering::Relaxed)
//! ```
//!
//! and each schedule starts from a fresh counter.

use std::any::Any;
use std::sync::Arc;

use crate::exec::with_active_state;

/// A lazily-initialized, per-model-execution value.
pub struct Lazy<T> {
    init: fn() -> T,
}

impl<T: Send + Sync + 'static> Lazy<T> {
    /// Creates the lazy holder (const, so it can live in a `static`).
    pub const fn new(init: fn() -> T) -> Self {
        Lazy { init }
    }

    /// The calling execution's instance, created on first use. If two
    /// model threads race the first use, both construct but the first
    /// insert wins and the loser's instance is discarded — deterministic
    /// under replay because construction is not a scheduling point.
    pub fn get(&self) -> Arc<T> {
        let key = self as *const Self as usize;
        if let Some(existing) = with_active_state(|st, _| st.lazy_lookup(key)) {
            return existing
                .downcast::<T>()
                .expect("lazy key maps to its own type");
        }
        let value: Arc<T> = Arc::new((self.init)());
        let erased: Arc<dyn Any + Send + Sync> = value;
        with_active_state(|st, _| st.lazy_insert(key, erased))
            .downcast::<T>()
            .expect("lazy key maps to its own type")
    }
}
