//! Instrumented threading: `spawn` creates a *model* thread (a real OS
//! thread driven cooperatively by the scheduler), `join` is a blocking
//! scheduling point that merges the child's clock, and `yield_now`
//! deschedules the caller until another thread makes progress — which is
//! what keeps CAS spin loops finite under exhaustive exploration.

use std::panic::Location;
use std::sync::{Arc, Mutex};

use crate::exec::{join_impl, spawn_impl, yield_now_impl, Tid};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    tid: Tid,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T: Send + 'static> JoinHandle<T> {
    /// Blocks the calling model thread until the child finishes, then
    /// returns its result. Always `Ok`: a panicking model thread fails
    /// the whole execution before any join observes it.
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        Ok(join_impl(self.tid, &self.slot, Location::caller()))
    }
}

/// Spawns a model thread running `f`.
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (tid, slot) = spawn_impl(f, Location::caller());
    JoinHandle { tid, slot }
}

/// Deschedules the caller until another model thread executes an
/// operation. A no-op when no other thread is runnable.
#[track_caller]
pub fn yield_now() {
    yield_now_impl(Location::caller());
}
