//! Instrumented drop-in replacements for the `std::sync` types the
//! workspace's lock-free structures are built on. Under `cfg(rdht_model)`
//! the consuming crates alias these in place of the std types; every
//! operation becomes a scheduling point of the bounded exhaustive
//! scheduler in [`crate::model`], and atomics get C11-lite weak-memory
//! semantics (loads may observe stale stores unless happens-before forbids
//! it).
//!
//! API-compatible subset only: the methods the workspace actually uses.
//! `compare_exchange_weak` never fails spuriously here — callers loop on
//! it anyway, and the strong semantics only *remove* behaviours that the
//! strong `compare_exchange` path already covers.

use std::panic::Location;

use crate::exec::{operate, set_blocked, with_active_state, Access, ObjId, OpSig, Outcome};

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

macro_rules! model_atomic {
    ($(#[$meta:meta])* $name:ident, $ty:ty) => {
        $(#[$meta])*
        pub struct $name {
            obj: ObjId,
        }

        impl $name {
            fn to_bits(v: $ty) -> u64 {
                v as u64
            }

            fn from_bits(b: u64) -> $ty {
                b as $ty
            }

            /// Registers a fresh atomic initialized to `value`.
            #[track_caller]
            pub fn new(value: $ty) -> Self {
                let bits = Self::to_bits(value);
                let obj = with_active_state(|st, tid| st.new_atomic(bits, tid));
                $name { obj }
            }

            /// An instrumented load; may observe any coherent stale store.
            #[track_caller]
            pub fn load(&self, ordering: Ordering) -> $ty {
                let obj = self.obj;
                let bits = operate(
                    OpSig {
                        obj: Some(obj),
                        access: Access::Read,
                        desc: concat!(stringify!($name), ".load"),
                    },
                    Location::caller(),
                    move |st, tid| Outcome::Done(st.atomic_load(obj, ordering, tid)),
                    |bits| {
                        format!(
                            "{}(#{}).load({:?}) -> {}",
                            stringify!($name),
                            obj,
                            ordering,
                            Self::from_bits(*bits)
                        )
                    },
                );
                Self::from_bits(bits)
            }

            /// An instrumented store appended to the modification order.
            #[track_caller]
            pub fn store(&self, value: $ty, ordering: Ordering) {
                let obj = self.obj;
                let bits = Self::to_bits(value);
                operate(
                    OpSig {
                        obj: Some(obj),
                        access: Access::Write,
                        desc: concat!(stringify!($name), ".store"),
                    },
                    Location::caller(),
                    move |st, tid| {
                        st.atomic_store(obj, bits, ordering, tid);
                        Outcome::Done(())
                    },
                    |_| {
                        format!(
                            "{}(#{}).store({}, {:?})",
                            stringify!($name),
                            obj,
                            value,
                            ordering
                        )
                    },
                );
            }

            /// Atomic swap; returns the previous value.
            #[track_caller]
            pub fn swap(&self, value: $ty, ordering: Ordering) -> $ty {
                self.rmw("swap", ordering, move |_| value)
            }

            /// Wrapping atomic add; returns the previous value.
            #[track_caller]
            pub fn fetch_add(&self, value: $ty, ordering: Ordering) -> $ty {
                self.rmw("fetch_add", ordering, move |old| old.wrapping_add(value))
            }

            /// Wrapping atomic subtract; returns the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, value: $ty, ordering: Ordering) -> $ty {
                self.rmw("fetch_sub", ordering, move |old| old.wrapping_sub(value))
            }

            /// Atomic maximum; returns the previous value.
            #[track_caller]
            pub fn fetch_max(&self, value: $ty, ordering: Ordering) -> $ty {
                self.rmw("fetch_max", ordering, move |old| {
                    if value > old {
                        value
                    } else {
                        old
                    }
                })
            }

            #[track_caller]
            fn rmw(
                &self,
                name: &'static str,
                ordering: Ordering,
                f: impl Fn($ty) -> $ty,
            ) -> $ty {
                let obj = self.obj;
                let bits = operate(
                    OpSig {
                        obj: Some(obj),
                        access: Access::Write,
                        desc: concat!(stringify!($name), ".rmw"),
                    },
                    Location::caller(),
                    move |st, tid| {
                        Outcome::Done(st.atomic_rmw(obj, ordering, tid, |old| {
                            Self::to_bits(f(Self::from_bits(old)))
                        }))
                    },
                    |bits| {
                        format!(
                            "{}(#{}).{}(.., {:?}) -> {}",
                            stringify!($name),
                            obj,
                            name,
                            ordering,
                            Self::from_bits(*bits)
                        )
                    },
                );
                Self::from_bits(bits)
            }

            /// Strong compare-exchange.
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                let obj = self.obj;
                let (cur_bits, new_bits) = (Self::to_bits(current), Self::to_bits(new));
                let result = operate(
                    OpSig {
                        obj: Some(obj),
                        access: Access::Write,
                        desc: concat!(stringify!($name), ".compare_exchange"),
                    },
                    Location::caller(),
                    move |st, tid| {
                        Outcome::Done(st.atomic_cas(obj, cur_bits, new_bits, success, failure, tid))
                    },
                    |result| {
                        format!(
                            "{}(#{}).compare_exchange({}, {}, {:?}) -> {:?}",
                            stringify!($name),
                            obj,
                            current,
                            new,
                            success,
                            result.map(Self::from_bits).map_err(Self::from_bits)
                        )
                    },
                );
                result.map(Self::from_bits).map_err(Self::from_bits)
            }

            /// Weak compare-exchange; modeled without spurious failure
            /// (see the module docs for why that is sound here).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}(#{})", stringify!($name), self.obj)
            }
        }

        impl Default for $name {
            #[track_caller]
            fn default() -> Self {
                Self::new(<$ty>::default())
            }
        }
    };
}

model_atomic!(
    /// Instrumented `AtomicU64`.
    AtomicU64,
    u64
);
model_atomic!(
    /// Instrumented `AtomicUsize`.
    AtomicUsize,
    usize
);
model_atomic!(
    /// Instrumented `AtomicI64` (values round-trip through their two's
    /// complement bit pattern; comparisons stay signed).
    AtomicI64,
    i64
);

/// Instrumented mutex: lock/unlock are scheduling points, contention
/// blocks the model thread, and the unlock clock release-synchronizes the
/// next lock. No poisoning — a panicking model thread aborts the whole
/// execution anyway.
pub struct Mutex<T> {
    obj: ObjId,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and the
// guard only exists while the model-level lock is held, so all access to
// `data` is serialized twice over.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Registers a fresh unlocked mutex.
    #[track_caller]
    pub fn new(data: T) -> Self {
        let obj = with_active_state(|st, _tid| st.new_mutex());
        Mutex {
            obj,
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Acquires the model lock, blocking this model thread while another
    /// holds it. Never returns `Err`: model mutexes do not poison.
    #[track_caller]
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        let obj = self.obj;
        operate(
            OpSig {
                obj: Some(obj),
                access: Access::Write,
                desc: "Mutex.lock",
            },
            Location::caller(),
            move |st, tid| {
                if st.mutex_try_acquire(obj, tid) {
                    Outcome::Done(())
                } else {
                    set_blocked(st, tid, Some(obj), None);
                    Outcome::Block
                }
            },
            |_| format!("Mutex(#{obj}).lock()"),
        );
        Ok(MutexGuard { mutex: self })
    }
}

/// RAII guard for [`Mutex`]; unlocking is itself a scheduling point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the model-level lock is held for the guard's lifetime.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`, plus `&mut self` gives uniqueness.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    #[track_caller]
    fn drop(&mut self) {
        if std::thread::panicking() {
            // The execution is unwinding (violation found or subtree
            // pruned); scheduling another op would double-panic. The
            // whole execution state is discarded, so skipping the unlock
            // is harmless.
            return;
        }
        let obj = self.mutex.obj;
        operate(
            OpSig {
                obj: Some(obj),
                access: Access::Write,
                desc: "Mutex.unlock",
            },
            Location::caller(),
            move |st, tid| {
                st.mutex_release(obj, tid);
                Outcome::Done(())
            },
            |_| format!("Mutex(#{obj}).unlock()"),
        );
    }
}
