//! Engine 2: the project-invariant linter. Line-level (no AST dep, no
//! proc macros), enforcing workspace rules clippy cannot express:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-eprintln` | all diagnostics flow through `EventLog` (structured, rate-limited, `RDHT_LOG`-gated); `eprintln!` is allowed only inside the `EventLog` implementation itself |
//! | `blessed-wait-unbounded` | `wait_unbounded` (no-timeout blocking) may be *called* only at sites carrying a `// blessed: wait_unbounded` comment, and at most two such sites exist |
//! | `sim-virtual-time` | `rdht-sim` runs on virtual time only: no `Instant::now`/`SystemTime::now` under `crates/sim/src` |
//! | `relaxed-justified` | every `Ordering::Relaxed` carries a `// relaxed:` justification on the same line or in the comment block directly above |
//! | `wire-exhaustive` | every `Request`/`Reply` variant in `message.rs` has an encode arm and a decode arm in `wire.rs`, and every `Request` variant a `RequestCounters` entry in `metrics.rs` |
//!
//! The checker's own crate (`crates/check`) is excluded from the walk: its
//! sources and test fixtures contain the banned patterns *as data*.
//!
//! Matching is done on comment-stripped text (line comments, block
//! comments and string literals are blanked), so doc comments mentioning
//! `Request::Metrics` or a log message containing `Relaxed` cannot
//! confuse the rules.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

// Needles are assembled with `concat!` so this file never contains the
// banned tokens verbatim — the linter must survive being pointed at
// itself (or at a vendored copy of itself) without self-reporting.
const EPRINTLN: &str = concat!("eprint", "ln!");
const WAIT_UNBOUNDED: &str = concat!("wait_", "unbounded");
const INSTANT_NOW: &str = concat!("Instant", "::now");
const SYSTEM_TIME_NOW: &str = concat!("SystemTime", "::now");
const RELAXED: &str = concat!("Ordering::", "Relaxed");
const RELAXED_MARKER: &str = concat!("// relaxed", ":");
const BLESS_MARKER: &str = concat!("// blessed", ": ", "wait_", "unbounded");

/// Maximum number of blessed `wait_unbounded` call sites.
pub const MAX_BLESSED_WAIT_SITES: usize = 2;

/// A single lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule identifier, e.g. `no-eprintln`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file comment/string stripper state (block comments span lines).
#[derive(Default)]
struct Stripper {
    in_block_comment: bool,
}

impl Stripper {
    /// Returns the line with comments and string/char literal *contents*
    /// blanked (replaced by spaces), so column positions are preserved.
    /// Heuristic, not a full lexer: multi-line string literals are not
    /// tracked (the workspace style avoids them in the linted regions).
    fn code_of(&mut self, line: &str) -> String {
        let bytes: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < bytes.len() {
            if self.in_block_comment {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    self.in_block_comment = false;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                '/' if bytes.get(i + 1) == Some(&'/') => {
                    // Line comment: blank the rest.
                    while i < bytes.len() {
                        out.push(' ');
                        i += 1;
                    }
                }
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    self.in_block_comment = true;
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    // String literal: keep the quotes, blank the content.
                    out.push('"');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => {
                                out.push_str("  ");
                                i += 2;
                            }
                            '"' => {
                                out.push('"');
                                i += 1;
                                break;
                            }
                            _ => {
                                out.push(' ');
                                i += 1;
                            }
                        }
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a char literal closes
                    // within a few chars; a lifetime has no closing quote.
                    if bytes.get(i + 1) == Some(&'\\') {
                        out.push('\'');
                        i += 2;
                        while i < bytes.len() && bytes[i] != '\'' {
                            out.push(' ');
                            i += 1;
                        }
                        if i < bytes.len() {
                            out.push('\'');
                            i += 1;
                        }
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        out.push_str("   ");
                        i += 3;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whether `needle` occurs in `hay` delimited by non-identifier chars —
/// so `Request::PutReplica` does not match inside `Request::PutReplicas`.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        let after_ok = hay[at + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Result of linting one file: findings plus the blessed
/// `wait_unbounded` sites it contains (counted globally by the caller).
#[derive(Default)]
pub struct FileLint {
    /// Findings in this file.
    pub findings: Vec<Finding>,
    /// Lines carrying a blessed `wait_unbounded` call.
    pub blessed_wait_sites: Vec<usize>,
}

/// Lints a single file's content. `rel` is the path relative to the
/// workspace root, '/'-separated.
pub fn lint_file(rel: &str, content: &str) -> FileLint {
    let mut out = FileLint::default();
    let in_sim = rel.starts_with("crates/sim/src/");
    let is_eventlog = rel == "crates/metrics/src/log.rs";
    let is_wait_def = rel == "crates/net/src/transport.rs";

    let mut stripper = Stripper::default();
    let lines: Vec<&str> = content.lines().collect();
    let mut prev_raw = "";
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let code = stripper.code_of(raw);

        if !is_eventlog && code.contains(EPRINTLN) {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: line_no,
                rule: "no-eprintln",
                message: format!(
                    "{EPRINTLN}(..) outside the EventLog implementation; use \
                     rdht_metrics::log (structured, rate-limited, RDHT_LOG-gated)"
                ),
            });
        }

        if !is_wait_def && contains_word(&code, WAIT_UNBOUNDED) {
            if raw.contains(BLESS_MARKER) || prev_raw.contains(BLESS_MARKER) {
                out.blessed_wait_sites.push(line_no);
            } else {
                out.findings.push(Finding {
                    file: rel.to_string(),
                    line: line_no,
                    rule: "blessed-wait-unbounded",
                    message: format!(
                        "{WAIT_UNBOUNDED} call without a `{BLESS_MARKER}` comment on this \
                         or the preceding line; prefer a bounded wait"
                    ),
                });
            }
        }

        if in_sim && (code.contains(INSTANT_NOW) || code.contains(SYSTEM_TIME_NOW)) {
            out.findings.push(Finding {
                file: rel.to_string(),
                line: line_no,
                rule: "sim-virtual-time",
                message: "wall-clock read in rdht-sim; the simulator runs on virtual \
                          time only (see sim::Clock)"
                    .to_string(),
            });
        }

        if code.contains(RELAXED) && !raw.contains(RELAXED_MARKER) {
            // Justifications are often multi-line: accept the marker
            // anywhere in the contiguous run of `//` comment lines
            // directly above the site.
            let justified = lines[..idx]
                .iter()
                .rev()
                .take_while(|l| l.trim_start().starts_with("//"))
                .any(|l| l.contains(RELAXED_MARKER));
            if !justified {
                out.findings.push(Finding {
                    file: rel.to_string(),
                    line: line_no,
                    rule: "relaxed-justified",
                    message: format!(
                        "{RELAXED} without a `{RELAXED_MARKER}` justification on this \
                         line or in the comment block above it; explain why the \
                         ordering cannot be load-bearing (or upgrade it)"
                    ),
                });
            }
        }

        prev_raw = raw;
    }
    out
}

/// Extracts the variant names of `pub enum <name>` from comment-stripped
/// enum source, by brace-depth tracking.
fn enum_variants(content: &str, name: &str) -> Vec<(String, usize)> {
    let mut stripper = Stripper::default();
    let header = format!("enum {name}");
    let mut variants = Vec::new();
    let mut depth: i32 = -1; // -1: before the enum; 0+: brace depth inside
    for (idx, raw) in content.lines().enumerate() {
        let code = stripper.code_of(raw);
        if depth < 0 {
            if contains_word(&code, &header) && code.contains('{') {
                depth = 0;
            }
            continue;
        }
        let trimmed = code.trim_start();
        if depth == 0 {
            if let Some(first) = trimmed.chars().next() {
                if first.is_ascii_uppercase() {
                    let ident: String = trimmed.chars().take_while(|&c| is_ident_char(c)).collect();
                    if !ident.is_empty() {
                        variants.push((ident, idx + 1));
                    }
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth < 0 {
                        return variants;
                    }
                }
                _ => {}
            }
        }
    }
    variants
}

/// Maps each line of `content` to the name of the `fn` it falls in.
fn fn_regions(content: &str) -> Vec<Option<String>> {
    let mut stripper = Stripper::default();
    let mut current: Option<String> = None;
    let mut regions = Vec::new();
    for raw in content.lines() {
        let code = stripper.code_of(raw);
        if let Some(pos) = code.find("fn ") {
            let boundary_ok =
                pos == 0 || !is_ident_char(code[..pos].chars().next_back().unwrap_or(' '));
            if boundary_ok {
                let name: String = code[pos + 3..]
                    .chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                if !name.is_empty() {
                    current = Some(name);
                }
            }
        }
        regions.push(current.clone());
    }
    regions
}

/// In how many distinct functions of `content` does `needle` occur
/// (word-delimited, comment-stripped)?
fn distinct_fn_mentions(content: &str, needle: &str) -> usize {
    let regions = fn_regions(content);
    let mut stripper = Stripper::default();
    let mut fns: Vec<String> = Vec::new();
    for (idx, raw) in content.lines().enumerate() {
        let code = stripper.code_of(raw);
        if contains_word(&code, needle) {
            if let Some(Some(name)) = regions.get(idx) {
                if !fns.contains(name) {
                    fns.push(name.clone());
                }
            }
        }
    }
    fns.len()
}

/// Cross-checks wire-tag exhaustiveness: every `Request`/`Reply` variant
/// of `message` must be mentioned in at least two distinct functions of
/// `wire` (its encode arm and its decode arm), and every `Request`
/// variant must appear in `metrics` (its `RequestCounters` entry).
pub fn lint_wire_tags(message: &str, wire: &str, metrics: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for enum_name in ["Request", "Reply"] {
        let variants = enum_variants(message, enum_name);
        if variants.is_empty() {
            findings.push(Finding {
                file: "crates/net/src/message.rs".to_string(),
                line: 0,
                rule: "wire-exhaustive",
                message: format!("found no variants for enum {enum_name}; parser out of sync?"),
            });
            continue;
        }
        for (variant, line) in &variants {
            let qualified = format!("{enum_name}::{variant}");
            let mentions = distinct_fn_mentions(wire, &qualified);
            if mentions < 2 {
                findings.push(Finding {
                    file: "crates/net/src/message.rs".to_string(),
                    line: *line,
                    rule: "wire-exhaustive",
                    message: format!(
                        "{qualified} appears in {mentions} function(s) of wire.rs; every \
                         variant needs both an encode arm and a decode arm"
                    ),
                });
            }
            if enum_name == "Request" && distinct_fn_mentions(metrics, &qualified) == 0 {
                findings.push(Finding {
                    file: "crates/net/src/message.rs".to_string(),
                    line: *line,
                    rule: "wire-exhaustive",
                    message: format!(
                        "{qualified} has no RequestCounters entry in crates/net/src/metrics.rs"
                    ),
                });
            }
        }
    }
    findings
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Deterministic: files are
/// visited in sorted path order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "shims", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut blessed: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        // The checker's sources hold the banned patterns as data.
        if rel.starts_with("crates/check/") {
            continue;
        }
        let content = std::fs::read_to_string(path)?;
        let file_lint = lint_file(&rel, &content);
        findings.extend(file_lint.findings);
        if !file_lint.blessed_wait_sites.is_empty() {
            blessed.insert(rel, file_lint.blessed_wait_sites);
        }
    }

    let blessed_total: usize = blessed.values().map(Vec::len).sum();
    if blessed_total > MAX_BLESSED_WAIT_SITES {
        let sites: Vec<String> = blessed
            .iter()
            .flat_map(|(f, lines)| lines.iter().map(move |l| format!("{f}:{l}")))
            .collect();
        findings.push(Finding {
            file: sites.first().cloned().unwrap_or_default(),
            line: 0,
            rule: "blessed-wait-unbounded",
            message: format!(
                "{blessed_total} blessed {WAIT_UNBOUNDED} sites ({}); at most \
                 {MAX_BLESSED_WAIT_SITES} are allowed — unbless one before adding another",
                sites.join(", ")
            ),
        });
    }

    let message = std::fs::read_to_string(root.join("crates/net/src/message.rs"));
    let wire = std::fs::read_to_string(root.join("crates/net/src/wire.rs"));
    let metrics = std::fs::read_to_string(root.join("crates/net/src/metrics.rs"));
    match (message, wire, metrics) {
        (Ok(message), Ok(wire), Ok(metrics)) => {
            findings.extend(lint_wire_tags(&message, &wire, &metrics));
        }
        _ => findings.push(Finding {
            file: "crates/net/src".to_string(),
            line: 0,
            rule: "wire-exhaustive",
            message: "message.rs / wire.rs / metrics.rs not readable; wire-tag \
                      cross-check skipped"
                .to_string(),
        }),
    }

    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eprintln_is_flagged_outside_eventlog() {
        let src = format!("fn f() {{ {EPRINTLN}(\"x\"); }}\n");
        let out = lint_file("crates/net/src/peer.rs", &src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "no-eprintln");
        assert_eq!(out.findings[0].line, 1);
        let ok = lint_file("crates/metrics/src/log.rs", &src);
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn eprintln_in_comment_or_string_is_ignoredonly() {
        let src = format!("// {EPRINTLN} is banned\nlet s = \"{EPRINTLN}\";\n");
        let out = lint_file("crates/net/src/peer.rs", &src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn wait_unbounded_needs_blessing() {
        let bare = format!("x.{WAIT_UNBOUNDED}();\n");
        let out = lint_file("crates/net/src/cluster.rs", &bare);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "blessed-wait-unbounded");

        let blessed = format!("{BLESS_MARKER} drain barrier\nx.{WAIT_UNBOUNDED}();\n");
        let out = lint_file("crates/net/src/cluster.rs", &blessed);
        assert!(out.findings.is_empty());
        assert_eq!(out.blessed_wait_sites, vec![2]);

        let def = format!("pub fn {WAIT_UNBOUNDED}(&self) {{}}\n");
        let out = lint_file("crates/net/src/transport.rs", &def);
        assert!(out.findings.is_empty());
        assert!(out.blessed_wait_sites.is_empty());
    }

    #[test]
    fn sim_wall_clock_is_flagged() {
        let src = format!("let t = {INSTANT_NOW}();\n");
        let out = lint_file("crates/sim/src/engine.rs", &src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "sim-virtual-time");
        let elsewhere = lint_file("crates/net/src/tcp.rs", &src);
        assert!(elsewhere.findings.is_empty());
    }

    #[test]
    fn relaxed_needs_justification() {
        let bare = format!("a.load({RELAXED});\n");
        let out = lint_file("crates/storage/src/engine.rs", &bare);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "relaxed-justified");

        let same_line = format!("a.load({RELAXED}); {RELAXED_MARKER} monotonic counter\n");
        assert!(lint_file("x.rs", &same_line).findings.is_empty());

        let prev_line = format!("{RELAXED_MARKER} monotonic counter\na.load({RELAXED});\n");
        assert!(lint_file("x.rs", &prev_line).findings.is_empty());

        // Multi-line justification: marker anywhere in the contiguous
        // comment block above the site counts.
        let block = format!(
            "{RELAXED_MARKER} monotonic counter;\n// scrapes tolerate stale reads.\na.load({RELAXED});\n"
        );
        assert!(lint_file("x.rs", &block).findings.is_empty());

        // ...but a marker separated from the site by code does not.
        let separated = format!("{RELAXED_MARKER} stale comment\nlet x = 1;\na.load({RELAXED});\n");
        assert_eq!(lint_file("x.rs", &separated).findings.len(), 1);
    }

    #[test]
    fn word_boundaries_distinguish_variant_prefixes() {
        assert!(contains_word(
            "Request::PutReplica =>",
            "Request::PutReplica"
        ));
        assert!(!contains_word(
            "Request::PutReplicas =>",
            "Request::PutReplica"
        ));
        assert!(contains_word(
            "(Request::PutReplica)",
            "Request::PutReplica"
        ));
    }

    const MESSAGE_FIXTURE: &str = "
pub enum Request {
    Put { key: u64, value: Vec<u8> },
    Get(u64),
}
pub enum Reply {
    Ack,
    Value(Option<Vec<u8>>),
}
";

    #[test]
    fn wire_tags_pass_when_all_arms_exist() {
        let wire = "
fn encode(r: &Request) { match r { Request::Put { .. } => {}, Request::Get(_) => {} } }
fn encode_reply(r: &Reply) { match r { Reply::Ack => {}, Reply::Value(_) => {} } }
fn decode() -> Request { if x { Request::Put { key, value } } else { Request::Get(k) } }
fn decode_reply() -> Reply { if x { Reply::Ack } else { Reply::Value(None) } }
";
        let metrics = "
fn of(r: &Request) { match r { Request::Put { .. } => {}, Request::Get(_) => {} } }
";
        let findings = lint_wire_tags(MESSAGE_FIXTURE, wire, metrics);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wire_tags_flag_missing_decode_and_counter() {
        let wire = "
fn encode(r: &Request) { match r { Request::Put { .. } => {}, Request::Get(_) => {} } }
fn encode_reply(r: &Reply) { match r { Reply::Ack => {}, Reply::Value(_) => {} } }
fn decode() -> Request { Request::Put { key, value } }
fn decode_reply() -> Reply { if x { Reply::Ack } else { Reply::Value(None) } }
";
        let metrics = "
fn of(r: &Request) { match r { Request::Put { .. } => {}, _ => {} } }
";
        let findings = lint_wire_tags(MESSAGE_FIXTURE, wire, metrics);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["wire-exhaustive", "wire-exhaustive"]);
        assert!(findings[0].message.contains("Request::Get"), "{findings:?}");
        assert!(findings[1].message.contains("Request::Get"), "{findings:?}");
    }

    #[test]
    fn enum_parser_sees_through_payload_braces() {
        let variants = enum_variants(MESSAGE_FIXTURE, "Request");
        let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Put", "Get"]);
        let variants = enum_variants(MESSAGE_FIXTURE, "Reply");
        let names: Vec<&str> = variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Ack", "Value"]);
    }

    #[test]
    fn doc_comment_mentions_do_not_count_as_arms() {
        let wire = "
/// Encodes Request::Put and Request::Get.
fn encode(r: &Request) { match r { Request::Put { .. } => {}, Request::Get(_) => {} } }
fn encode_reply(r: &Reply) { match r { Reply::Ack => {}, Reply::Value(_) => {} } }
/// Decodes Request::Get too (doc mention only).
fn decode() -> Request { Request::Put { key, value } }
fn decode_reply() -> Reply { if x { Reply::Ack } else { Reply::Value(None) } }
";
        let metrics = "fn of() { Request::Put; Request::Get }";
        let findings = lint_wire_tags(MESSAGE_FIXTURE, wire, metrics);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("Request::Get"));
        assert!(findings[0].message.contains("decode"));
    }
}
