//! The bounded exhaustive scheduler: one [`SchedState`] per explored
//! schedule, a persistent decision [`path`](PathEntry) driving depth-first
//! replay across schedules, and the vector-clock machinery that gives the
//! instrumented types their C11-flavoured weak-memory semantics.
//!
//! # How an execution runs
//!
//! Model threads are real OS threads, but exactly one runs at a time: every
//! instrumented operation *announces* itself (records its [`OpSig`] as the
//! thread's pending op), then the currently active thread makes a
//! *scheduling decision* — which announced op executes next — recorded as a
//! branch point in the path. The chosen thread executes its effect
//! atomically under the global lock and keeps running user code until its
//! own next instrumented op. Replaying a prefix of recorded choices and
//! taking the first untried alternative at the deepest branch point yields
//! a depth-first, deterministic enumeration of every schedule (bounded by
//! the preemption budget and pruned by the sleep set).
//!
//! # Weak memory
//!
//! Every atomic location keeps its full modification order; a load may read
//! any store not ruled out by coherence or happens-before, and the choice
//! is itself a branch point. `Release` stores capture the writer's vector
//! clock; `Acquire` loads that read them join it. RMWs always read the
//! latest store (C11 atomicity) and continue release sequences. `SeqCst`
//! is modeled as `AcqRel` — a sound over-approximation for bug *finding*
//! (it can only report more behaviours, never fewer).

use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Model-thread index (0 is the thread that called [`crate::model`]).
pub type Tid = usize;
/// Index of an instrumented object (atomic, mutex or cell) in an execution.
pub type ObjId = usize;

/// Hard cap on model threads per execution; vector clocks are this wide.
pub const MAX_THREADS: usize = 8;

/// Exploration limits and bounds.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum number of *preemptive* context switches per schedule (a
    /// switch away from a thread that could have kept running). Voluntary
    /// switches — blocking, finishing, yielding — are free. `None` removes
    /// the bound (full exhaustive exploration).
    pub preemption_bound: Option<u32>,
    /// Abort with a harness error after this many schedules: the model is
    /// too large to check exhaustively and should be shrunk.
    pub max_schedules: u64,
    /// Abort a single schedule after this many operations: almost always a
    /// livelock (an uninstrumented spin loop) or an oversized model.
    pub max_ops: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(3),
            max_schedules: 500_000,
            max_ops: 50_000,
        }
    }
}

/// Exploration summary returned by [`crate::model_with`].
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules fully explored (including sleep-set-pruned prefixes).
    pub schedules: u64,
    /// Instrumented operations executed across all schedules.
    pub ops: u64,
}

/// What a thread is doing with an object — the independence relation of
/// the sleep-set cut is built on this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Reads the object; independent of other reads of the same object.
    Read,
    /// Writes (or read-modify-writes) the object.
    Write,
    /// Thread lifecycle (spawn/join/yield/finish): dependent with everything.
    Thread,
}

/// An announced operation: what a thread will do next.
#[derive(Clone, Copy, Debug)]
pub struct OpSig {
    /// The object touched, if any.
    pub obj: Option<ObjId>,
    /// Kind of access.
    pub access: Access,
    /// Human-readable operation name for traces.
    pub desc: &'static str,
}

impl OpSig {
    fn independent(&self, other: &OpSig) -> bool {
        match (self.obj, other.obj) {
            (Some(a), Some(b)) => {
                a != b || (self.access == Access::Read && other.access == Access::Read)
            }
            _ => false,
        }
    }
}

/// A vector clock over model threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, tid: Tid) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn tick(&mut self, tid: Tid) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, v) in other.0.iter().enumerate() {
            self.0[i] = self.0[i].max(*v);
        }
    }
}

/// One store in a location's modification order.
struct StoreRec {
    value: u64,
    writer: Tid,
    /// The writer's own clock component at the store — the happens-before
    /// test "is this store visible to thread T" is `T.vc[writer] >= time`.
    time: u32,
    /// The clock an `Acquire` reader synchronizes with, present when the
    /// store (or the head of its release sequence) was `Release`.
    release: Option<VClock>,
}

enum Object {
    Atomic {
        stores: Vec<StoreRec>,
    },
    Mutex {
        owner: Option<Tid>,
        /// Clock of the last unlock; joined by the next lock.
        clock: VClock,
    },
    Cell {
        last_write: Option<(Tid, u32, &'static Location<'static>)>,
        /// Per-thread time of the last read, for write-read race checks.
        reads: Vec<(u32, &'static Location<'static>)>,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Blocker {
    Mutex(ObjId),
    Join(Tid),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Ready,
    Blocked(Blocker),
    Yielded,
    Finished,
}

struct ThreadState {
    status: Status,
    pending: Option<OpSig>,
    vc: VClock,
    /// Per-location floor of the modification order this thread may read
    /// from (coherence: you never read older than what you already saw).
    readfront: HashMap<ObjId, usize>,
    /// Eventual-visibility fairness: `(position, consecutive reads)` of
    /// this thread's last load per location. A thread may re-read the
    /// same store only [`REREAD_BOUND`] times in a row before the floor
    /// advances past it (when a newer store exists) — otherwise a spin
    /// loop re-reading a stale value forever is a C11-legal but useless
    /// infinite DFS branch.
    reread: HashMap<ObjId, (usize, u32)>,
}

/// Consecutive same-store re-reads allowed per thread and location.
const REREAD_BOUND: u32 = 2;

impl ThreadState {
    fn fresh() -> Self {
        ThreadState {
            status: Status::Ready,
            pending: None,
            vc: VClock::default(),
            readfront: HashMap::new(),
            reread: HashMap::new(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct PathEntry {
    options: u32,
    chosen: u32,
}

#[derive(Clone)]
struct SleepEntry {
    tid: Tid,
    sig: OpSig,
}

struct TraceStep {
    tid: Tid,
    desc: String,
    loc: &'static Location<'static>,
}

/// Effect outcome: either the op completed, or it must block and be
/// retried once the blocker clears.
pub enum Outcome<R> {
    /// The effect ran; the thread keeps going.
    Done(R),
    /// The op cannot run yet (mutex held, join target alive).
    Block,
}

/// The per-execution shared state plus its condvar.
pub struct ExecShared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Everything one schedule exploration mutates.
pub struct SchedState {
    cfg: Config,
    threads: Vec<ThreadState>,
    objects: Vec<Object>,
    /// Per-execution instances of [`crate::lazy::Lazy`] statics, keyed by
    /// the static's address.
    lazies: HashMap<usize, Arc<dyn std::any::Any + Send + Sync>>,
    active: Tid,
    last_executed: Tid,
    preemptions: u32,
    sleep: Vec<SleepEntry>,
    path: Vec<PathEntry>,
    cursor: usize,
    abort: bool,
    done: bool,
    failure: Option<String>,
    trace: Vec<TraceStep>,
    ops: u64,
    unfinished: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<ExecShared>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// Payload of the internal unwind used to tear threads down when an
/// execution ends early (violation found, or subtree pruned).
struct AbortToken;

fn abort_panic() -> ! {
    std::panic::panic_any(AbortToken)
}

/// Drops the guard, wakes every parked model thread (so they observe the
/// abort flag), and unwinds the caller with the internal abort token.
fn abort_exit(exec: &ExecShared, st: MutexGuard<'_, SchedState>) -> ! {
    drop(st);
    exec.cv.notify_all();
    abort_panic()
}

fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<AbortToken>()
}

/// Suppresses the default "thread panicked" chatter for the internal
/// abort unwinds; real (violation) panics keep the default reporting.
fn install_quiet_abort_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() {
                return;
            }
            previous(info);
        }));
    });
}

impl ExecShared {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The execution the calling OS thread belongs to, plus its model tid.
    /// Panics with a diagnostic when called outside [`crate::model`].
    pub(crate) fn current() -> (Arc<ExecShared>, Tid) {
        CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
            panic!(
                "rdht-check instrumented type used outside a model run; \
                 wrap the test body in rdht_check::model(|| ...)"
            )
        })
    }
}

impl SchedState {
    fn new(cfg: Config, path: Vec<PathEntry>) -> Self {
        let mut root = ThreadState::fresh();
        root.vc.tick(0);
        SchedState {
            cfg,
            threads: vec![root],
            objects: Vec::new(),
            lazies: HashMap::new(),
            active: 0,
            last_executed: 0,
            preemptions: 0,
            sleep: Vec::new(),
            path,
            cursor: 0,
            abort: false,
            done: false,
            failure: None,
            trace: Vec::new(),
            ops: 0,
            unfinished: 1,
            os_handles: Vec::new(),
        }
    }

    /// Records (or replays) a branch point with `options` alternatives and
    /// returns the chosen one. Single-option points are not recorded.
    fn branch(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1);
        if options == 1 {
            return 0;
        }
        let options = u32::try_from(options).expect("branch fan-out fits u32");
        if self.cursor < self.path.len() {
            let entry = self.path[self.cursor];
            assert!(
                entry.options == options,
                "nondeterministic model: replay expected {} alternatives, found {options}; \
                 the model closure must not consult wall-clock time or process-global state",
                entry.options,
            );
            self.cursor += 1;
            entry.chosen as usize
        } else {
            self.path.push(PathEntry { options, chosen: 0 });
            self.cursor += 1;
            0
        }
    }

    /// Registers a violation: the execution aborts and the explorer
    /// reports `reason` together with the interleaving that produced it.
    fn fail(&mut self, reason: String) {
        if self.failure.is_none() {
            self.failure = Some(reason);
        }
        self.abort = true;
    }

    fn render_trace(&self) -> String {
        let mut out = String::new();
        for (i, step) in self.trace.iter().enumerate() {
            out.push_str(&format!(
                "  {i:>4}. [thread {}] {} at {}:{}\n",
                step.tid,
                step.desc,
                step.loc.file(),
                step.loc.line()
            ));
        }
        out
    }

    /// Picks the next thread to run among announced, runnable,
    /// non-sleeping threads. Applies the preemption bound and maintains
    /// the sleep set. Sets `done` when everything finished, `fail`s on
    /// deadlock, aborts (pruned) when the sleep set swallowed every
    /// candidate.
    fn decide(&mut self) {
        loop {
            if self.abort || self.done {
                return;
            }
            let ready: Vec<Tid> = (0..self.threads.len())
                .filter(|&t| {
                    self.threads[t].status == Status::Ready && self.threads[t].pending.is_some()
                })
                .collect();
            if ready.is_empty() {
                if self.threads.iter().all(|t| t.status == Status::Finished) {
                    self.done = true;
                    return;
                }
                if self
                    .threads
                    .iter()
                    .any(|t| t.status == Status::Yielded && t.pending.is_some())
                {
                    for t in &mut self.threads {
                        if t.status == Status::Yielded {
                            t.status = Status::Ready;
                        }
                    }
                    continue;
                }
                let held: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| {
                        let op = t.pending.map(|p| p.desc).unwrap_or("?");
                        match t.status {
                            Status::Blocked(Blocker::Mutex(m)) => {
                                Some(format!("thread {i} blocked in {op} on Mutex(#{m})"))
                            }
                            Status::Blocked(Blocker::Join(j)) => {
                                Some(format!("thread {i} blocked in {op} joining thread {j}"))
                            }
                            _ => None,
                        }
                    })
                    .collect();
                self.fail(format!("deadlock: {}", held.join(", ")));
                return;
            }

            // Sleep-set cut: skip threads whose explored alternatives at an
            // ancestor node have not been woken by a dependent operation.
            let mut base: Vec<Tid> = Vec::with_capacity(ready.len());
            // Continue-first order: exploring the non-preempting schedule
            // first keeps the preemption budget for where it matters.
            if ready.contains(&self.last_executed) {
                base.push(self.last_executed);
            }
            for &t in &ready {
                if t != self.last_executed {
                    base.push(t);
                }
            }
            base.retain(|&t| !self.sleep.iter().any(|e| e.tid == t));
            if base.is_empty() {
                // Every enabled transition is asleep: this subtree only
                // contains interleavings equivalent to already-explored
                // ones. Prune.
                self.abort = true;
                return;
            }

            let continue_possible = base.contains(&self.last_executed);
            let candidates: Vec<Tid> = match self.cfg.preemption_bound {
                Some(bound) if self.preemptions >= bound && continue_possible => {
                    vec![self.last_executed]
                }
                _ => base,
            };

            let chosen_idx = self.branch(candidates.len());
            let chosen = candidates[chosen_idx];
            if continue_possible && chosen != self.last_executed {
                self.preemptions += 1;
            }
            let executed_sig = self.threads[chosen].pending.expect("candidate announced");
            for &t in &candidates[..chosen_idx] {
                let sig = self.threads[t].pending.expect("candidate announced");
                self.sleep.push(SleepEntry { tid: t, sig });
            }
            self.sleep
                .retain(|e| e.tid != chosen && e.sig.independent(&executed_sig));
            self.active = chosen;
            return;
        }
    }

    fn post_effect(&mut self, tid: Tid, desc: String, loc: &'static Location<'static>) {
        self.ops += 1;
        if self.ops > self.cfg.max_ops {
            self.fail(format!(
                "operation budget exceeded ({} ops in one schedule): livelock or oversized model \
                 — shrink thread count / ops, or raise Config::max_ops",
                self.cfg.max_ops
            ));
            return;
        }
        self.trace.push(TraceStep { tid, desc, loc });
        // Any progress by one thread re-arms every spin-yielded thread.
        for (i, t) in self.threads.iter_mut().enumerate() {
            if i != tid && t.status == Status::Yielded {
                t.status = Status::Ready;
            }
        }
        self.last_executed = tid;
        self.threads[tid].pending = None;
    }

    // ---- object registration ------------------------------------------

    fn register(&mut self, obj: Object) -> ObjId {
        self.objects.push(obj);
        self.objects.len() - 1
    }

    pub(crate) fn new_atomic(&mut self, init: u64, tid: Tid) -> ObjId {
        let time = self.threads[tid].vc.get(tid);
        self.register(Object::Atomic {
            stores: vec![StoreRec {
                value: init,
                writer: tid,
                time,
                release: Some(self.threads[tid].vc.clone()),
            }],
        })
    }

    pub(crate) fn new_mutex(&mut self) -> ObjId {
        self.register(Object::Mutex {
            owner: None,
            clock: VClock::default(),
        })
    }

    pub(crate) fn new_cell(&mut self) -> ObjId {
        self.register(Object::Cell {
            last_write: None,
            reads: Vec::new(),
        })
    }

    // ---- atomic semantics ---------------------------------------------

    fn is_acquire(ordering: std::sync::atomic::Ordering) -> bool {
        use std::sync::atomic::Ordering::*;
        matches!(ordering, Acquire | AcqRel | SeqCst)
    }

    fn is_release(ordering: std::sync::atomic::Ordering) -> bool {
        use std::sync::atomic::Ordering::*;
        matches!(ordering, Release | AcqRel | SeqCst)
    }

    /// A load: picks (and branches over) one of the stores this thread may
    /// legally observe, applies coherence and acquire synchronization.
    pub(crate) fn atomic_load(
        &mut self,
        obj: ObjId,
        ordering: std::sync::atomic::Ordering,
        tid: Tid,
    ) -> u64 {
        let front = {
            let Object::Atomic { stores, .. } = &self.objects[obj] else {
                unreachable!("object {obj} is not an atomic")
            };
            let mut front = self.threads[tid].readfront.get(&obj).copied().unwrap_or(0);
            for (pos, s) in stores.iter().enumerate() {
                // A store that happens-before this load supersedes everything
                // older: coherence forbids reading past it.
                if self.threads[tid].vc.get(s.writer) >= s.time {
                    front = front.max(pos);
                }
            }
            // Fairness: after REREAD_BOUND consecutive reads of the same
            // (non-latest) store, force the floor past it so spin loops
            // eventually observe progress.
            if let Some(&(pos, count)) = self.threads[tid].reread.get(&obj) {
                if pos == front && count >= REREAD_BOUND && front + 1 < stores.len() {
                    front += 1;
                }
            }
            front
        };
        let Object::Atomic { stores, .. } = &self.objects[obj] else {
            unreachable!()
        };
        let eligible = stores.len() - front;
        let pick = front + self.branch(eligible);
        let reread = self.threads[tid].reread.entry(obj).or_insert((pick, 0));
        *reread = if reread.0 == pick {
            (pick, reread.1 + 1)
        } else {
            (pick, 1)
        };
        let (value, release) = {
            let Object::Atomic { stores, .. } = &self.objects[obj] else {
                unreachable!()
            };
            let s = &stores[pick];
            (s.value, s.release.clone())
        };
        self.threads[tid].readfront.insert(obj, pick);
        if Self::is_acquire(ordering) {
            if let Some(release) = release {
                self.threads[tid].vc.join(&release);
            }
        }
        value
    }

    /// A plain store: appends to the modification order.
    pub(crate) fn atomic_store(
        &mut self,
        obj: ObjId,
        value: u64,
        ordering: std::sync::atomic::Ordering,
        tid: Tid,
    ) {
        let time = self.threads[tid].vc.get(tid);
        let release = Self::is_release(ordering).then(|| self.threads[tid].vc.clone());
        let Object::Atomic { stores, .. } = &mut self.objects[obj] else {
            unreachable!("object {obj} is not an atomic")
        };
        stores.push(StoreRec {
            value,
            writer: tid,
            time,
            release,
        });
        let pos = stores.len() - 1;
        self.threads[tid].readfront.insert(obj, pos);
    }

    /// A read-modify-write: always reads the latest store (C11 RMW
    /// atomicity), applies `f`, appends the result, and continues the
    /// release sequence it read from.
    pub(crate) fn atomic_rmw(
        &mut self,
        obj: ObjId,
        ordering: std::sync::atomic::Ordering,
        tid: Tid,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let (old, prior_release) = {
            let Object::Atomic { stores, .. } = &self.objects[obj] else {
                unreachable!("object {obj} is not an atomic")
            };
            let s = stores.last().expect("atomic has an initial store");
            (s.value, s.release.clone())
        };
        if Self::is_acquire(ordering) {
            if let Some(release) = &prior_release {
                self.threads[tid].vc.join(release);
            }
        }
        let mut release = prior_release;
        if Self::is_release(ordering) {
            let mut clock = release.take().unwrap_or_default();
            clock.join(&self.threads[tid].vc);
            release = Some(clock);
        }
        let time = self.threads[tid].vc.get(tid);
        let new = f(old);
        let Object::Atomic { stores, .. } = &mut self.objects[obj] else {
            unreachable!()
        };
        stores.push(StoreRec {
            value: new,
            writer: tid,
            time,
            release,
        });
        let pos = stores.len() - 1;
        self.threads[tid].readfront.insert(obj, pos);
        old
    }

    /// A compare-exchange: reads the latest store (RMW atomicity). On a
    /// value match it is an RMW with the success ordering; on a mismatch
    /// it is a load of the latest store with the failure ordering and the
    /// modification order is untouched.
    pub(crate) fn atomic_cas(
        &mut self,
        obj: ObjId,
        current: u64,
        new: u64,
        success: std::sync::atomic::Ordering,
        failure: std::sync::atomic::Ordering,
        tid: Tid,
    ) -> Result<u64, u64> {
        let (old, prior_release, latest) = {
            let Object::Atomic { stores, .. } = &self.objects[obj] else {
                unreachable!("object {obj} is not an atomic")
            };
            let s = stores.last().expect("atomic has an initial store");
            (s.value, s.release.clone(), stores.len() - 1)
        };
        if old != current {
            self.threads[tid].readfront.insert(obj, latest);
            if Self::is_acquire(failure) {
                if let Some(release) = &prior_release {
                    self.threads[tid].vc.join(release);
                }
            }
            return Err(old);
        }
        if Self::is_acquire(success) {
            if let Some(release) = &prior_release {
                self.threads[tid].vc.join(release);
            }
        }
        let mut release = prior_release;
        if Self::is_release(success) {
            let mut clock = release.take().unwrap_or_default();
            clock.join(&self.threads[tid].vc);
            release = Some(clock);
        }
        let time = self.threads[tid].vc.get(tid);
        let Object::Atomic { stores, .. } = &mut self.objects[obj] else {
            unreachable!()
        };
        stores.push(StoreRec {
            value: new,
            writer: tid,
            time,
            release,
        });
        let pos = stores.len() - 1;
        self.threads[tid].readfront.insert(obj, pos);
        Ok(old)
    }

    // ---- mutex semantics ----------------------------------------------

    pub(crate) fn mutex_try_acquire(&mut self, obj: ObjId, tid: Tid) -> bool {
        let clock = {
            let Object::Mutex { owner, clock } = &mut self.objects[obj] else {
                unreachable!("object {obj} is not a mutex")
            };
            if owner.is_some() {
                return false;
            }
            *owner = Some(tid);
            clock.clone()
        };
        self.threads[tid].vc.join(&clock);
        true
    }

    pub(crate) fn mutex_release(&mut self, obj: ObjId, tid: Tid) {
        let vc = self.threads[tid].vc.clone();
        let Object::Mutex { owner, clock } = &mut self.objects[obj] else {
            unreachable!("object {obj} is not a mutex")
        };
        debug_assert_eq!(*owner, Some(tid), "unlock by non-owner");
        *owner = None;
        *clock = vc;
        for t in &mut self.threads {
            if t.status == Status::Blocked(Blocker::Mutex(obj)) {
                t.status = Status::Ready;
            }
        }
    }

    // ---- cell (data race) semantics -----------------------------------

    pub(crate) fn cell_read(&mut self, obj: ObjId, tid: Tid, loc: &'static Location<'static>) {
        let vc = self.threads[tid].vc.clone();
        let time = vc.get(tid);
        let Object::Cell { last_write, reads } = &mut self.objects[obj] else {
            unreachable!("object {obj} is not a cell")
        };
        if let Some((writer, wtime, wloc)) = last_write {
            if *writer != tid && vc.get(*writer) < *wtime {
                let message = format!(
                    "data race: read at {}:{} (thread {tid}) is concurrent with write at {}:{} (thread {writer})",
                    loc.file(),
                    loc.line(),
                    wloc.file(),
                    wloc.line()
                );
                self.fail(message);
                return;
            }
        }
        if reads.len() <= tid {
            reads.resize(tid + 1, (0, Location::caller()));
        }
        reads[tid] = (time, loc);
    }

    pub(crate) fn cell_write(&mut self, obj: ObjId, tid: Tid, loc: &'static Location<'static>) {
        let vc = self.threads[tid].vc.clone();
        let time = vc.get(tid);
        let Object::Cell { last_write, reads } = &mut self.objects[obj] else {
            unreachable!("object {obj} is not a cell")
        };
        if let Some((writer, wtime, wloc)) = last_write {
            if *writer != tid && vc.get(*writer) < *wtime {
                let message = format!(
                    "data race: write at {}:{} (thread {tid}) is concurrent with write at {}:{} (thread {writer})",
                    loc.file(),
                    loc.line(),
                    wloc.file(),
                    wloc.line()
                );
                self.fail(message);
                return;
            }
        }
        for (reader, &(rtime, rloc)) in reads.iter().enumerate() {
            if reader != tid && rtime > 0 && vc.get(reader) < rtime {
                let message = format!(
                    "data race: write at {}:{} (thread {tid}) is concurrent with read at {}:{} (thread {reader})",
                    loc.file(),
                    loc.line(),
                    rloc.file(),
                    rloc.line()
                );
                self.fail(message);
                return;
            }
        }
        *last_write = Some((tid, time, loc));
    }

    // ---- lazy statics --------------------------------------------------

    pub(crate) fn lazy_lookup(&self, key: usize) -> Option<Arc<dyn std::any::Any + Send + Sync>> {
        self.lazies.get(&key).map(Arc::clone)
    }

    /// First insert wins; returns the stored value either way. Split from
    /// lookup so initializers can register model objects (which need the
    /// state lock) without re-entering it.
    pub(crate) fn lazy_insert(
        &mut self,
        key: usize,
        value: Arc<dyn std::any::Any + Send + Sync>,
    ) -> Arc<dyn std::any::Any + Send + Sync> {
        Arc::clone(self.lazies.entry(key).or_insert(value))
    }
}

/// Runs one instrumented operation for the calling model thread: announce,
/// schedule, execute. `effect` may return [`Outcome::Block`]; the op is
/// retried when the blocker clears. `describe` renders the op (with its
/// result) for the failure trace.
pub(crate) fn operate<R>(
    sig: OpSig,
    loc: &'static Location<'static>,
    mut effect: impl FnMut(&mut SchedState, Tid) -> Outcome<R>,
    describe: impl FnOnce(&R) -> String,
) -> R {
    let (exec, tid) = ExecShared::current();
    let mut st = exec.lock();
    if st.abort {
        abort_exit(&exec, st);
    }
    assert_eq!(
        st.active, tid,
        "scheduler invariant: only the active thread reaches an instrumented op"
    );
    st.threads[tid].pending = Some(sig);
    st.decide();
    exec.cv.notify_all();
    loop {
        if st.abort {
            abort_exit(&exec, st);
        }
        if st.done {
            // Can only happen for the root in drain mode; not here.
            unreachable!("execution finished with an op in flight");
        }
        if st.active == tid {
            st.threads[tid].vc.tick(tid);
            match effect(&mut st, tid) {
                Outcome::Done(r) => {
                    if st.abort {
                        // The effect itself flagged a violation.
                        abort_exit(&exec, st);
                    }
                    let desc = describe(&r);
                    st.post_effect(tid, desc, loc);
                    if st.abort {
                        abort_exit(&exec, st);
                    }
                    return r;
                }
                Outcome::Block => {
                    // Undo the speculative tick — the op has not happened.
                    // The effect recorded its Blocked status via
                    // `set_blocked` before returning.
                    st.threads[tid].vc.0[tid] -= 1;
                    st.decide();
                    exec.cv.notify_all();
                }
            }
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Runs `f` against the execution state *without* a scheduling point:
/// used by constructors (object registration is invisible to other
/// threads until the object is shared).
pub(crate) fn with_active_state<R>(f: impl FnOnce(&mut SchedState, Tid) -> R) -> R {
    let (exec, tid) = ExecShared::current();
    let mut st = exec.lock();
    if st.abort {
        abort_exit(&exec, st);
    }
    assert_eq!(st.active, tid, "constructors run on the active thread");
    f(&mut st, tid)
}

/// `operate` with effects that cannot block.
pub(crate) fn operate_infallible<R>(
    sig: OpSig,
    loc: &'static Location<'static>,
    effect: impl FnOnce(&mut SchedState, Tid) -> R,
    describe: impl FnOnce(&R) -> String,
) -> R {
    let mut effect = Some(effect);
    operate(
        sig,
        loc,
        move |st, tid| Outcome::Done((effect.take().expect("effect runs once"))(st, tid)),
        describe,
    )
}

/// Blocks the calling model thread with an explicit blocker status set by
/// the effect (used by `Mutex::lock` and `JoinHandle::join`).
pub(crate) fn set_blocked(
    st: &mut SchedState,
    tid: Tid,
    on_mutex: Option<ObjId>,
    on_join: Option<Tid>,
) {
    let status = match (on_mutex, on_join) {
        (Some(m), _) => Status::Blocked(Blocker::Mutex(m)),
        (_, Some(j)) => Status::Blocked(Blocker::Join(j)),
        _ => Status::Ready,
    };
    st.threads[tid].status = status;
}

/// Marks the calling thread yielded: it is rescheduled only after another
/// thread makes progress (this is what bounds CAS spin loops).
pub(crate) fn yield_now_impl(loc: &'static Location<'static>) {
    let (exec, tid) = ExecShared::current();
    let mut st = exec.lock();
    if st.abort {
        abort_exit(&exec, st);
    }
    assert_eq!(st.active, tid);
    let others_ready = (0..st.threads.len()).any(|t| {
        t != tid && st.threads[t].status == Status::Ready && st.threads[t].pending.is_some()
    });
    if !others_ready {
        // Nothing to yield to; treat as a no-op rather than deadlocking.
        return;
    }
    st.threads[tid].pending = Some(OpSig {
        obj: None,
        access: Access::Thread,
        desc: "Thread.yield",
    });
    st.threads[tid].vc.tick(tid);
    st.post_effect(tid, "yield_now()".to_string(), loc);
    st.threads[tid].status = Status::Yielded;
    // Re-announce a resume op so the scheduler can pick this thread back
    // up once another thread's progress re-arms it.
    st.threads[tid].pending = Some(OpSig {
        obj: None,
        access: Access::Thread,
        desc: "Thread.resume",
    });
    st.decide();
    exec.cv.notify_all();
    loop {
        if st.abort {
            abort_exit(&exec, st);
        }
        if st.active == tid && st.threads[tid].status == Status::Ready {
            st.threads[tid].vc.tick(tid);
            st.post_effect(tid, "resume".to_string(), loc);
            if st.abort {
                abort_exit(&exec, st);
            }
            return;
        }
        st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Spawns a model thread running `f`; returns its tid and result slot.
pub(crate) fn spawn_impl<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
    loc: &'static Location<'static>,
) -> (Tid, Arc<Mutex<Option<T>>>) {
    let (exec, _tid) = ExecShared::current();
    let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
    let slot_clone = Arc::clone(&slot);
    let exec_clone = Arc::clone(&exec);
    let child = operate_infallible(
        OpSig {
            obj: None,
            access: Access::Thread,
            desc: "Thread.spawn",
        },
        loc,
        move |st, tid| {
            let child = st.threads.len();
            assert!(
                child < MAX_THREADS,
                "model thread limit ({MAX_THREADS}) exceeded"
            );
            let mut ts = ThreadState::fresh();
            ts.vc.join(&st.threads[tid].vc);
            ts.vc.tick(child);
            ts.pending = Some(OpSig {
                obj: None,
                access: Access::Thread,
                desc: "Thread.start",
            });
            st.threads.push(ts);
            st.unfinished += 1;
            let handle = std::thread::Builder::new()
                .name(format!("rdht-check-{child}"))
                .spawn(move || child_main(exec_clone, child, f, slot_clone))
                .expect("spawn model OS thread");
            st.os_handles.push(handle);
            child
        },
        |child| format!("spawn() -> thread {child}"),
    );
    (child, slot)
}

fn child_main<T: Send + 'static>(
    exec: Arc<ExecShared>,
    tid: Tid,
    f: impl FnOnce() -> T + Send + 'static,
    slot: Arc<Mutex<Option<T>>>,
) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    // Park until the scheduler runs this thread's Start op.
    {
        let mut st = exec.lock();
        loop {
            if st.abort {
                return;
            }
            if st.active == tid {
                break;
            }
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].vc.tick(tid);
        st.post_effect(tid, "start".to_string(), Location::caller());
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    match result {
        Ok(value) => {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            finish_thread(&exec, tid);
        }
        Err(payload) => {
            if !is_abort(payload.as_ref()) {
                let mut st = exec.lock();
                let message = panic_message(payload.as_ref());
                let trace = st.render_trace();
                st.fail(format!(
                    "thread {tid} panicked: {message}\n--- interleaving ---\n{trace}"
                ));
                exec.cv.notify_all();
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs the Finish op for `tid`, hands the schedule off, and (for the
/// root) waits until every thread finished.
fn finish_thread(exec: &Arc<ExecShared>, tid: Tid) {
    let mut st = exec.lock();
    if st.abort {
        return;
    }
    assert_eq!(st.active, tid, "finishing thread must be active");
    st.threads[tid].pending = Some(OpSig {
        obj: None,
        access: Access::Thread,
        desc: "Thread.finish",
    });
    st.threads[tid].vc.tick(tid);
    st.post_effect(tid, "finish".to_string(), Location::caller());
    st.threads[tid].status = Status::Finished;
    st.unfinished -= 1;
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(Blocker::Join(tid)) {
            t.status = Status::Ready;
        }
    }
    st.decide();
    exec.cv.notify_all();
}

/// Joins a model thread: blocks until it finished, then merges its clock.
pub(crate) fn join_impl<T: Send + 'static>(
    child: Tid,
    slot: &Arc<Mutex<Option<T>>>,
    loc: &'static Location<'static>,
) -> T {
    operate(
        OpSig {
            obj: None,
            access: Access::Thread,
            desc: "Thread.join",
        },
        loc,
        |st, tid| {
            if st.threads[child].status == Status::Finished {
                let child_vc = st.threads[child].vc.clone();
                st.threads[tid].vc.join(&child_vc);
                Outcome::Done(())
            } else {
                set_blocked(st, tid, None, Some(child));
                Outcome::Block
            }
        },
        |_| format!("join(thread {child})"),
    );
    slot.lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .expect("joined thread stored its result")
}

fn advance(path: &mut Vec<PathEntry>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.options {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Drives the full DFS exploration. Returns the report and the first
/// violation (reason + trace), if any.
pub(crate) fn explore(cfg: Config, f: impl Fn()) -> (Report, Option<String>) {
    install_quiet_abort_hook();
    let mut path: Vec<PathEntry> = Vec::new();
    let mut schedules: u64 = 0;
    let mut ops: u64 = 0;
    loop {
        schedules += 1;
        if schedules > cfg.max_schedules {
            panic!(
                "rdht-check: schedule budget exceeded ({} schedules): the model state space is \
                 too large to check exhaustively — shrink the model or raise Config::max_schedules",
                cfg.max_schedules
            );
        }
        let exec = Arc::new(ExecShared {
            state: Mutex::new(SchedState::new(cfg, std::mem::take(&mut path))),
            cv: Condvar::new(),
        });
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), 0)));
        let root_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        match root_result {
            Ok(()) => finish_thread(&exec, 0),
            Err(payload) => {
                if !is_abort(payload.as_ref()) {
                    let mut st = exec.lock();
                    let message = panic_message(payload.as_ref());
                    let trace = st.render_trace();
                    st.fail(format!(
                        "thread 0 panicked: {message}\n--- interleaving ---\n{trace}"
                    ));
                    exec.cv.notify_all();
                }
            }
        }
        // Drain: wait until every model thread finished or the run aborted.
        {
            let mut st = exec.lock();
            while !st.done && !st.abort {
                st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            exec.cv.notify_all();
        }
        CURRENT.with(|c| *c.borrow_mut() = None);
        // Join the worker OS threads outside the state lock.
        let handles = {
            let mut st = exec.lock();
            std::mem::take(&mut st.os_handles)
        };
        for handle in handles {
            let _ = handle.join();
        }
        let mut st = exec.lock();
        ops += st.ops;
        if let Some(reason) = st.failure.take() {
            let trace = if reason.contains("--- interleaving ---") {
                String::new()
            } else {
                format!("\n--- interleaving ---\n{}", st.render_trace())
            };
            let report = Report { schedules, ops };
            return (
                report,
                Some(format!(
                    "model violation after {} schedule(s): {reason}{trace}",
                    report.schedules
                )),
            );
        }
        path = std::mem::take(&mut st.path);
        drop(st);
        if !advance(&mut path) {
            return (Report { schedules, ops }, None);
        }
    }
}
