//! `rdht-check` — correctness tooling for the workspace, in the house
//! shim idiom (stable std, zero external deps). Two engines:
//!
//! 1. **Model checker** ([`model`], [`model_with`], [`model_expect_violation`]):
//!    a loom-style bounded exhaustive scheduler over instrumented
//!    [`sync`]/[`cell`]/[`thread`] types. Consuming crates alias these in
//!    under `cfg(rdht_model)` and write model tests that the scheduler
//!    drives through every interleaving (bounded by a preemption budget,
//!    pruned by a DPOR-lite sleep set), with C11-lite weak-memory
//!    semantics for atomics and vector-clock race detection for
//!    [`cell::UnsafeCell`]. Violations replay deterministically and print
//!    the failing interleaving.
//!
//! 2. **Invariant linter** ([`lint`]): `rdht-check lint` walks the
//!    workspace source line-by-line and enforces project rules clippy
//!    cannot express (logging discipline, blessed blocking sites, virtual
//!    time in the simulator, justified relaxed orderings, wire-tag
//!    exhaustiveness). See `lint::RULES` and the README's "Correctness
//!    tooling" section.

#![deny(missing_docs)]

pub mod cell;
mod exec;
pub mod lazy;
pub mod lint;
pub mod sync;
pub mod thread;

pub use exec::{Config, Report};

/// Exhaustively explores every schedule of `f` under the default
/// [`Config`] (preemption bound 3). Panics — printing the failing
/// interleaving — if any schedule panics, deadlocks, or races.
///
/// `f` runs once per schedule, from scratch, on a fresh model state; it
/// must be deterministic apart from the modeled concurrency (no wall
/// clock, no process-global mutable state outside [`lazy::Lazy`]).
pub fn model(f: impl Fn()) {
    model_with(Config::default(), f);
}

/// [`model`] with an explicit [`Config`]; returns exploration statistics.
pub fn model_with(cfg: Config, f: impl Fn()) -> Report {
    let (report, failure) = exec::explore(cfg, f);
    if let Some(message) = failure {
        panic!("{message}");
    }
    report
}

/// Explores and returns the violation (if any) without panicking either
/// way — for tests probing coverage/bound trade-offs.
pub fn exec_probe(cfg: Config, f: impl Fn()) -> Option<String> {
    exec::explore(cfg, f).1
}

/// Runs the exploration *expecting* a violation and returns its report
/// (reason plus interleaving). Panics if every schedule passes — this is
/// the mutation-test entry point proving the checker can fail.
pub fn model_expect_violation(cfg: Config, f: impl Fn()) -> String {
    let (report, failure) = exec::explore(cfg, f);
    failure.unwrap_or_else(|| {
        panic!(
            "expected a model violation, but all {} schedule(s) ({} ops) passed",
            report.schedules, report.ops
        )
    })
}
