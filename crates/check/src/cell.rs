//! An instrumented `UnsafeCell` in the loom idiom: data is accessed
//! through `with`/`with_mut` closures, and every access is checked for
//! happens-before against concurrent accesses via vector clocks. Two
//! accesses to the same cell with neither ordered before the other — at
//! least one being a write — is a data race, reported with both source
//! locations and the interleaving that produced it.
//!
//! This is the primitive that makes seqlock-style structures checkable:
//! the *atomics* around the cell establish the happens-before edges, and
//! the cell verifies they are strong enough.

use std::panic::Location;

use crate::exec::{operate, with_active_state, Access, ObjId, OpSig, Outcome};

/// Race-checked cell. The model serializes real memory accesses (one
/// thread runs at a time), so the `unsafe` here is sound even for
/// schedules that contain a logical race — the race is *reported*, not
/// executed.
pub struct UnsafeCell<T> {
    obj: ObjId,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: real accesses only happen through `with`/`with_mut` while the
// calling model thread is the single active thread.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Registers a fresh cell holding `data`.
    #[track_caller]
    pub fn new(data: T) -> Self {
        let obj = with_active_state(|st, _tid| st.new_cell());
        UnsafeCell {
            obj,
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Immutable access; a scheduling point and a race-checked read.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let obj = self.obj;
        let loc = Location::caller();
        operate(
            OpSig {
                obj: Some(obj),
                access: Access::Read,
                desc: "UnsafeCell.read",
            },
            loc,
            move |st, tid| {
                st.cell_read(obj, tid, loc);
                Outcome::Done(())
            },
            |_| format!("UnsafeCell(#{obj}).read"),
        );
        f(self.data.get() as *const T)
    }

    /// Mutable access; a scheduling point and a race-checked write.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let obj = self.obj;
        let loc = Location::caller();
        operate(
            OpSig {
                obj: Some(obj),
                access: Access::Write,
                desc: "UnsafeCell.write",
            },
            loc,
            move |st, tid| {
                st.cell_write(obj, tid, loc);
                Outcome::Done(())
            },
            |_| format!("UnsafeCell(#{obj}).write"),
        );
        f(self.data.get())
    }
}
