//! Versioned replica values.

use std::fmt;

/// A BRK version number. Versions are assigned by updating peers (read the
/// current maximum, add one), so unlike KTS timestamps they are **not**
/// guaranteed unique per update: concurrent updaters can mint the same
/// version.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The version of a never-updated key.
    pub const ZERO: Version = Version(0);

    /// The next version number.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Debug for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A replica stored by BRK: the payload plus its version number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionedValue {
    /// Application payload.
    pub data: Vec<u8>,
    /// Version number assigned by the peer that performed the update.
    pub version: Version,
}

impl VersionedValue {
    /// Creates a versioned replica.
    pub fn new(data: Vec<u8>, version: Version) -> Self {
        VersionedValue { data, version }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_order_numerically() {
        assert!(Version(3) < Version(4));
        assert_eq!(Version::ZERO.next(), Version(1));
        assert_eq!(Version::default(), Version::ZERO);
    }

    #[test]
    fn display_shows_number() {
        assert_eq!(Version(7).to_string(), "7");
        assert_eq!(format!("{:?}", Version(7)), "v7");
    }

    #[test]
    fn versioned_value_holds_payload() {
        let v = VersionedValue::new(b"abc".to_vec(), Version(2));
        assert_eq!(v.data, b"abc");
        assert_eq!(v.version, Version(2));
    }
}
