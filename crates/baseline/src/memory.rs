//! In-memory reference implementation of [`BrkAccess`].

use std::collections::{HashMap, HashSet};

use rdht_hashing::{HashFamily, HashId, Key};

use rdht_core::UmsError;

use crate::access::BrkAccess;
use crate::types::VersionedValue;

/// A single-process BRK store, mirroring [`rdht_core::InMemoryDht`] for the
/// baseline: used in unit tests, property tests and examples. Replicas are
/// grouped per key so that lookups borrow the key without cloning it.
#[derive(Clone, Debug)]
pub struct InMemoryBrk {
    family: HashFamily,
    replicas: HashMap<Key, Vec<(HashId, VersionedValue)>>,
    fail_puts_for: HashSet<HashId>,
    fail_gets_for: HashSet<HashId>,
}

impl InMemoryBrk {
    /// Creates a BRK store with `num_replicas` replication hash functions
    /// derived from `seed`.
    pub fn new(num_replicas: usize, seed: u64) -> Self {
        InMemoryBrk {
            family: HashFamily::new(num_replicas, seed),
            replicas: HashMap::new(),
            fail_puts_for: HashSet::new(),
            fail_gets_for: HashSet::new(),
        }
    }

    /// Replication hash ids as a vector (test convenience).
    pub fn replication_ids_vec(&self) -> Vec<HashId> {
        self.family.replication_ids().collect()
    }

    /// Overwrites a replica unconditionally (used to fabricate stale state).
    pub fn overwrite(&mut self, hash: HashId, key: &Key, value: VersionedValue) {
        let slots = self.replicas.entry(key.clone()).or_default();
        match slots.iter_mut().find(|(h, _)| *h == hash) {
            Some((_, stored)) => *stored = value,
            None => slots.push((hash, value)),
        }
    }

    /// Makes writes fail for the given hash functions.
    pub fn fail_puts_for(&mut self, hashes: impl IntoIterator<Item = HashId>) {
        self.fail_puts_for = hashes.into_iter().collect();
    }

    /// Makes reads fail for the given hash functions.
    pub fn fail_gets_for(&mut self, hashes: impl IntoIterator<Item = HashId>) {
        self.fail_gets_for = hashes.into_iter().collect();
    }
}

impl BrkAccess for InMemoryBrk {
    fn put_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &VersionedValue,
    ) -> Result<(), UmsError> {
        if self.fail_puts_for.contains(&hash) {
            return Err(UmsError::lookup("replica holder unreachable (injected)"));
        }
        // A replica holder accepts a write whenever the version is at least
        // as large as what it holds — with equal versions (concurrent
        // updates) arrival order decides, which is exactly the inconsistency
        // the paper points out.
        let slots = self.replicas.entry(key.clone()).or_default();
        match slots.iter_mut().find(|(h, _)| *h == hash) {
            Some((_, stored)) => {
                if value.version >= stored.version {
                    *stored = value.clone();
                }
            }
            None => slots.push((hash, value.clone())),
        }
        Ok(())
    }

    fn get_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
    ) -> Result<Option<VersionedValue>, UmsError> {
        if self.fail_gets_for.contains(&hash) {
            return Err(UmsError::lookup("replica holder unreachable (injected)"));
        }
        Ok(self
            .replicas
            .get(key)
            .and_then(|slots| slots.iter().find(|(h, _)| *h == hash))
            .map(|(_, value)| value.clone()))
    }

    fn replication_count(&self) -> usize {
        self.family.num_replication()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Version;

    #[test]
    fn equal_version_writes_take_arrival_order() {
        let mut dht = InMemoryBrk::new(2, 1);
        let key = Key::new("doc");
        let h = dht.replication_ids_vec()[0];
        let first = VersionedValue::new(b"first".to_vec(), Version(1));
        let second = VersionedValue::new(b"second".to_vec(), Version(1));
        BrkAccess::put_versioned(&mut dht, h, &key, &first).unwrap();
        BrkAccess::put_versioned(&mut dht, h, &key, &second).unwrap();
        let got = BrkAccess::get_versioned(&mut dht, h, &key)
            .unwrap()
            .unwrap();
        assert_eq!(got.data, b"second");
    }

    #[test]
    fn lower_version_writes_are_rejected() {
        let mut dht = InMemoryBrk::new(2, 2);
        let key = Key::new("doc");
        let h = dht.replication_ids_vec()[0];
        BrkAccess::put_versioned(
            &mut dht,
            h,
            &key,
            &VersionedValue::new(b"v2".to_vec(), Version(2)),
        )
        .unwrap();
        BrkAccess::put_versioned(
            &mut dht,
            h,
            &key,
            &VersionedValue::new(b"v1".to_vec(), Version(1)),
        )
        .unwrap();
        let got = BrkAccess::get_versioned(&mut dht, h, &key)
            .unwrap()
            .unwrap();
        assert_eq!(got.data, b"v2");
        assert_eq!(got.version, Version(2));
    }
}
