//! Property-based tests for the BRK baseline, including the comparison
//! properties against UMS that motivate the paper.

use proptest::prelude::*;

use rdht_hashing::Key;

use rdht_core::{ums, InMemoryDht};

use crate::memory::InMemoryBrk;
use crate::{insert, retrieve};

proptest! {
    /// Sequential (non-concurrent) updates behave correctly in BRK: the last
    /// written value is returned, like UMS.
    #[test]
    fn sequential_updates_agree_with_ums(
        num_replicas in 1usize..15,
        seed in any::<u64>(),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..25),
    ) {
        let mut brk = InMemoryBrk::new(num_replicas, seed);
        let mut ums_dht = InMemoryDht::new(num_replicas, seed);
        let key = Key::new("shared");
        for payload in &payloads {
            insert(&mut brk, &key, payload.clone()).unwrap();
            ums::insert(&mut ums_dht, &key, payload.clone()).unwrap();
        }
        let brk_result = retrieve(&mut brk, &key).unwrap();
        let ums_result = ums::retrieve(&mut ums_dht, &key).unwrap();
        prop_assert_eq!(brk_result.data.as_ref(), payloads.last());
        prop_assert_eq!(brk_result.data, ums_result.data);
        // BRK always pays |Hr| probes; UMS finds a current replica on the
        // first probe in this failure-free setting.
        prop_assert_eq!(brk_result.replicas_probed, num_replicas);
        prop_assert_eq!(ums_result.replicas_probed, 1);
    }

    /// BRK's version numbers equal the number of updates applied so far.
    #[test]
    fn versions_count_updates(
        seed in any::<u64>(),
        updates in 1usize..30,
    ) {
        let mut brk = InMemoryBrk::new(5, seed);
        let key = Key::new("doc");
        let mut last_version = 0;
        for i in 0..updates {
            let report = insert(&mut brk, &key, vec![i as u8]).unwrap();
            last_version = report.version.0;
        }
        prop_assert_eq!(last_version, updates as u64);
    }

    /// Unknown keys never return data, regardless of replica count.
    #[test]
    fn unknown_keys_return_nothing(num_replicas in 1usize..30, seed in any::<u64>()) {
        let mut brk = InMemoryBrk::new(num_replicas, seed);
        let got = retrieve(&mut brk, &Key::new("never inserted")).unwrap();
        prop_assert!(got.data.is_none());
        prop_assert_eq!(got.replicas_probed, num_replicas);
    }
}
