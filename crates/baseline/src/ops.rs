//! Client-side BRK operations: version-based insert and fetch-all retrieve.

use rdht_hashing::Key;

use rdht_core::UmsError;

use crate::access::BrkAccess;
use crate::types::{Version, VersionedValue};

/// Outcome of a BRK [`insert`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BrkInsertReport {
    /// The version number assigned to this update (previous max + 1).
    pub version: Version,
    /// Replicas read to discover the previous maximum version.
    pub replicas_read: usize,
    /// Replicas successfully written.
    pub replicas_written: usize,
    /// Replicas whose write failed.
    pub replicas_failed: usize,
}

/// Outcome of a BRK [`retrieve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BrkRetrieveReport {
    /// The payload of (one of) the highest-version replica(s).
    pub data: Option<Vec<u8>>,
    /// The highest version observed.
    pub version: Version,
    /// Replicas probed — always `|Hr|` for BRK, which is exactly the cost the
    /// paper's Figures 9–10 show growing linearly with the replica count.
    pub replicas_probed: usize,
    /// Probes that failed outright.
    pub probes_failed: usize,
    /// Evidence of concurrent-update ambiguity, if any (several distinct
    /// payloads share the highest version).
    pub ambiguity: Option<ConcurrencyAmbiguity>,
}

/// Concurrent updates minted the same version number for different payloads,
/// so "the current replica" is not well defined — the failure mode of
/// version-counter replication that KTS timestamps eliminate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcurrencyAmbiguity {
    /// The contested version number.
    pub version: Version,
    /// The distinct payloads observed under that version.
    pub conflicting_payloads: Vec<Vec<u8>>,
}

/// Updates the data associated with `key` using BRK's versioning protocol:
/// read every replica to learn the current maximum version, then write the
/// new payload with `max + 1` to every replica.
pub fn insert<A: BrkAccess + ?Sized>(
    access: &mut A,
    key: &Key,
    data: Vec<u8>,
) -> Result<BrkInsertReport, UmsError> {
    let ids = access.replication_ids();
    let mut max_version = Version::ZERO;
    let mut replicas_read = 0;
    for hash in ids {
        replicas_read += 1;
        if let Ok(Some(existing)) = access.get_versioned(hash, key) {
            if existing.version > max_version {
                max_version = existing.version;
            }
        }
    }
    let version = max_version.next();
    let value = VersionedValue::new(data, version);
    let mut replicas_written = 0;
    let mut replicas_failed = 0;
    for hash in ids {
        match access.put_versioned(hash, key, &value) {
            Ok(()) => replicas_written += 1,
            Err(_) => replicas_failed += 1,
        }
    }
    if replicas_written == 0 {
        return Err(UmsError::NoReplicaWritten);
    }
    Ok(BrkInsertReport {
        version,
        replicas_read,
        replicas_written,
        replicas_failed,
    })
}

/// Retrieves the data associated with `key`: every replica is read and the
/// one with the highest version number is returned. If several distinct
/// payloads share that highest version (concurrent updates), the first one
/// encountered is returned and the ambiguity is reported.
pub fn retrieve<A: BrkAccess + ?Sized>(
    access: &mut A,
    key: &Key,
) -> Result<BrkRetrieveReport, UmsError> {
    let ids = access.replication_ids();
    let mut best: Option<VersionedValue> = None;
    let mut conflicting: Vec<Vec<u8>> = Vec::new();
    let mut replicas_probed = 0;
    let mut probes_failed = 0;

    for hash in ids {
        replicas_probed += 1;
        match access.get_versioned(hash, key) {
            Ok(Some(replica)) => match &best {
                None => best = Some(replica),
                Some(current_best) => {
                    if replica.version > current_best.version {
                        conflicting.clear();
                        best = Some(replica);
                    } else if replica.version == current_best.version
                        && replica.data != current_best.data
                        && !conflicting.contains(&replica.data)
                    {
                        conflicting.push(replica.data);
                    }
                }
            },
            Ok(None) => {}
            Err(_) => probes_failed += 1,
        }
    }

    let (data, version, ambiguity) = match best {
        Some(best) => {
            let ambiguity = if conflicting.is_empty() {
                None
            } else {
                let mut payloads = vec![best.data.clone()];
                payloads.extend(conflicting);
                Some(ConcurrencyAmbiguity {
                    version: best.version,
                    conflicting_payloads: payloads,
                })
            };
            (Some(best.data), best.version, ambiguity)
        }
        None => (None, Version::ZERO, None),
    };

    Ok(BrkRetrieveReport {
        data,
        version,
        replicas_probed,
        probes_failed,
        ambiguity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryBrk;
    use rdht_hashing::HashId;

    #[test]
    fn insert_then_retrieve_round_trips() {
        let mut dht = InMemoryBrk::new(10, 1);
        let key = Key::new("doc");
        let report = insert(&mut dht, &key, b"v1".to_vec()).unwrap();
        assert_eq!(report.version, Version(1));
        assert_eq!(report.replicas_written, 10);
        let got = retrieve(&mut dht, &key).unwrap();
        assert_eq!(got.data.unwrap(), b"v1");
        assert_eq!(got.version, Version(1));
        assert!(got.ambiguity.is_none());
    }

    #[test]
    fn retrieve_always_probes_all_replicas() {
        // The defining cost difference with UMS: even when every replica is
        // current, BRK cannot stop early.
        let mut dht = InMemoryBrk::new(25, 2);
        let key = Key::new("doc");
        insert(&mut dht, &key, b"v1".to_vec()).unwrap();
        let got = retrieve(&mut dht, &key).unwrap();
        assert_eq!(got.replicas_probed, 25);
    }

    #[test]
    fn versions_increase_across_updates() {
        let mut dht = InMemoryBrk::new(5, 3);
        let key = Key::new("doc");
        for i in 1..=7u64 {
            let report = insert(&mut dht, &key, format!("v{i}").into_bytes()).unwrap();
            assert_eq!(report.version, Version(i));
        }
        let got = retrieve(&mut dht, &key).unwrap();
        assert_eq!(got.data.unwrap(), b"v7");
    }

    #[test]
    fn retrieve_of_unknown_key_is_empty() {
        let mut dht = InMemoryBrk::new(5, 4);
        let got = retrieve(&mut dht, &Key::new("missing")).unwrap();
        assert!(got.data.is_none());
        assert_eq!(got.version, Version::ZERO);
        assert_eq!(got.replicas_probed, 5);
    }

    #[test]
    fn stale_replicas_lose_to_higher_versions() {
        let mut dht = InMemoryBrk::new(6, 5);
        let key = Key::new("doc");
        insert(&mut dht, &key, b"old".to_vec()).unwrap();
        insert(&mut dht, &key, b"new".to_vec()).unwrap();
        // Roll two replicas back to the old version.
        let ids = dht.replication_ids_vec();
        dht.overwrite(
            ids[0],
            &key,
            VersionedValue::new(b"old".to_vec(), Version(1)),
        );
        dht.overwrite(
            ids[1],
            &key,
            VersionedValue::new(b"old".to_vec(), Version(1)),
        );
        let got = retrieve(&mut dht, &key).unwrap();
        assert_eq!(got.data.unwrap(), b"new");
        assert_eq!(got.version, Version(2));
    }

    #[test]
    fn concurrent_updates_produce_ambiguity() {
        // Two peers update concurrently: both observe version 1 and both mint
        // version 2, writing to the replicas in opposite orders.
        let mut dht = InMemoryBrk::new(4, 6);
        let key = Key::new("doc");
        insert(&mut dht, &key, b"base".to_vec()).unwrap();
        let ids = dht.replication_ids_vec();
        let from_a = VersionedValue::new(b"from A".to_vec(), Version(2));
        let from_b = VersionedValue::new(b"from B".to_vec(), Version(2));
        for (i, h) in ids.iter().enumerate() {
            if i % 2 == 0 {
                dht.put_versioned(*h, &key, &from_a).unwrap();
                dht.put_versioned(*h, &key, &from_b).unwrap();
            } else {
                dht.put_versioned(*h, &key, &from_b).unwrap();
                dht.put_versioned(*h, &key, &from_a).unwrap();
            }
        }
        let got = retrieve(&mut dht, &key).unwrap();
        let ambiguity = got.ambiguity.expect("same version, different payloads");
        assert_eq!(ambiguity.version, Version(2));
        assert_eq!(ambiguity.conflicting_payloads.len(), 2);
    }

    #[test]
    fn insert_reports_partial_write_failures() {
        let mut dht = InMemoryBrk::new(6, 7);
        let ids = dht.replication_ids_vec();
        dht.fail_puts_for(vec![ids[2]]);
        let report = insert(&mut dht, &Key::new("doc"), b"x".to_vec()).unwrap();
        assert_eq!(report.replicas_written, 5);
        assert_eq!(report.replicas_failed, 1);
    }

    #[test]
    fn insert_fails_when_nothing_can_be_written() {
        let mut dht = InMemoryBrk::new(3, 8);
        let ids = dht.replication_ids_vec();
        dht.fail_puts_for(ids);
        let err = insert(&mut dht, &Key::new("doc"), b"x".to_vec()).unwrap_err();
        assert_eq!(err, UmsError::NoReplicaWritten);
    }

    #[test]
    fn failed_probes_are_counted() {
        let mut dht = InMemoryBrk::new(4, 9);
        let key = Key::new("doc");
        insert(&mut dht, &key, b"v".to_vec()).unwrap();
        dht.fail_gets_for(vec![HashId(0), HashId(3)]);
        let got = retrieve(&mut dht, &key).unwrap();
        assert_eq!(got.probes_failed, 2);
        assert_eq!(got.data.unwrap(), b"v");
    }
}
