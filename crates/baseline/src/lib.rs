//! **BRK** — the baseline algorithm the paper compares UMS against
//! (Section 5.1 and 6), modelled on the BRICKS project's replication scheme
//! (Knezevic, Wombacher, Risse — GLOBE 2005).
//!
//! BRICKS replicates a data item under multiple correlated keys and attaches
//! a *version number* to each replica, incremented on every update. Because
//! version numbers are assigned by the updating peer (not by a per-key
//! timestamping service), two properties follow — both of which the paper
//! criticizes and fixes with UMS/KTS:
//!
//! 1. **A retrieve must fetch every replica.** A replica cannot prove it is
//!    current on its own, so `retrieve` reads all `|Hr|` replicas and keeps
//!    the one with the highest version — `|Hr|` sequential DHT gets instead
//!    of UMS's expected `< 1/p_t`.
//! 2. **Concurrent updates are ambiguous.** Two peers that update
//!    concurrently read the same current version `v` and both write `v + 1`;
//!    replicas then disagree about what "version v+1" contains and no reader
//!    can tell which is the real latest value ([`ConcurrencyAmbiguity`]).
//!
//! The crate mirrors the structure of `rdht-core`: [`BrkAccess`] abstracts the
//! environment (in-memory, simulator, threaded), [`insert`] / [`retrieve`]
//! are the client-side operations, and [`InMemoryBrk`] is the reference
//! implementation used in tests and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod memory;
mod ops;
mod types;

pub use access::BrkAccess;
pub use memory::InMemoryBrk;
pub use ops::{insert, retrieve, BrkInsertReport, BrkRetrieveReport, ConcurrencyAmbiguity};
pub use types::{Version, VersionedValue};

#[cfg(test)]
mod proptests;
