//! Environment interface for the BRK baseline.

use rdht_hashing::{HashId, Key};

use rdht_core::{ReplicationIds, UmsError};

use crate::types::VersionedValue;

/// Everything BRK needs from the DHT: plain `put_h` / `get_h` over the
/// replication hash functions. There is no timestamping service — that is the
/// point of the baseline.
///
/// Errors reuse [`rdht_core::UmsError`] so that simulator and experiment code
/// can treat both algorithms uniformly.
pub trait BrkAccess {
    /// Stores a versioned replica at `rsp(k, h)`.
    fn put_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &VersionedValue,
    ) -> Result<(), UmsError>;

    /// Reads the replica stored at `rsp(k, h)`.
    fn get_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
    ) -> Result<Option<VersionedValue>, UmsError>;

    /// Number of replication hash functions, `|Hr|`.
    fn replication_count(&self) -> usize;

    /// The replication hash function ids, in probe order
    /// (`HashId(0)..HashId(|Hr|)`). Allocation-free.
    fn replication_ids(&self) -> ReplicationIds {
        ReplicationIds::new(self.replication_count())
    }
}
