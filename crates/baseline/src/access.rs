//! Environment interface for the BRK baseline.

use rdht_hashing::{HashId, Key};

use rdht_core::UmsError;

use crate::types::VersionedValue;

/// Everything BRK needs from the DHT: plain `put_h` / `get_h` over the
/// replication hash functions. There is no timestamping service — that is the
/// point of the baseline.
///
/// Errors reuse [`rdht_core::UmsError`] so that simulator and experiment code
/// can treat both algorithms uniformly.
pub trait BrkAccess {
    /// Stores a versioned replica at `rsp(k, h)`.
    fn put_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &VersionedValue,
    ) -> Result<(), UmsError>;

    /// Reads the replica stored at `rsp(k, h)`.
    fn get_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
    ) -> Result<Option<VersionedValue>, UmsError>;

    /// The replication hash function ids, in probe order.
    fn replication_ids(&self) -> Vec<HashId>;
}
