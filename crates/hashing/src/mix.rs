//! Low-level 64-bit mixing and fingerprinting helpers.
//!
//! These are the building blocks used by [`crate::Key`] to turn an arbitrary
//! byte string into a fixed 64-bit digest, and by the hash family to
//! finalize values. The constants come from the splitmix64 / murmur3
//! finalizers, which are well-studied bijective mixers.

/// A 64-bit finalizer (splitmix64 / murmur3-style).
///
/// The function is a bijection on `u64`, so it never introduces collisions on
/// its own; it only diffuses bits so that structured inputs (sequential ids,
/// ASCII strings) spread over the whole 64-bit space.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Fingerprints an arbitrary byte string into a 64-bit digest.
///
/// This is an FNV-1a core followed by a [`mix64`] finalizer. It is *not*
/// cryptographic; it only needs to behave like a good hash for the purposes
/// of distributing keys over the DHT identifier space, as the paper assumes
/// of its hash functions.
#[inline]
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Mix in the length to distinguish strings that only differ by trailing
    // zero bytes once truncated by FNV's weak avalanche on short inputs.
    mix64(h ^ (bytes.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn mix64_zero_is_not_zero() {
        // A fixed point at zero would make empty keys collide with the zero id.
        assert_eq!(mix64(0), 0); // splitmix64 finalizer maps 0 -> 0 ...
                                 // ... which is why fingerprint64 never feeds a raw 0 into it.
        assert_ne!(fingerprint64(b""), 0);
    }

    #[test]
    fn fingerprint_differs_on_small_changes() {
        let a = fingerprint64(b"agenda:2026-06-14");
        let b = fingerprint64(b"agenda:2026-06-15");
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_lengths() {
        assert_ne!(fingerprint64(b"a"), fingerprint64(b"a\0"));
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let k = b"auction/item/991";
        assert_eq!(fingerprint64(k), fingerprint64(k));
    }
}
