//! Property-based tests for the hashing crate.

use proptest::prelude::*;

use crate::{fingerprint64, HashFamily, HashId, Key};

proptest! {
    /// Fingerprinting is a pure function of the bytes.
    #[test]
    fn fingerprint_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(fingerprint64(&bytes), fingerprint64(&bytes));
    }

    /// Keys constructed from the same bytes are equal and share a digest.
    #[test]
    fn key_equality_follows_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let a = Key::from_bytes(bytes.clone());
        let b = Key::from_bytes(bytes);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.digest(), b.digest());
    }

    /// The digest cached inside a key at construction always equals a fresh
    /// fingerprint of the key bytes, including after clones (the cache can
    /// never drift from the bytes it was derived from).
    #[test]
    fn cached_digest_equals_fresh_fingerprint(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let key = Key::from_bytes(bytes.clone());
        prop_assert_eq!(key.digest().0, fingerprint64(&bytes));
        prop_assert_eq!(key.clone().digest().0, fingerprint64(key.as_bytes()));
    }

    /// Every hash function of a family maps any key into the full u64 range
    /// deterministically, and the family evaluation matches per-function
    /// evaluation.
    #[test]
    fn family_eval_matches_function_eval(
        seed in any::<u64>(),
        nrep in 1usize..20,
        key_bytes in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let family = HashFamily::new(nrep, seed);
        let key = Key::from_bytes(key_bytes);
        for h in family.replication_functions() {
            prop_assert_eq!(family.eval(h.id(), &key), h.eval(&key));
        }
        prop_assert_eq!(
            family.eval_timestamp(&key),
            family.timestamp_function().eval(&key)
        );
    }

    /// Two distinct keys rarely collide under a random family member
    /// (2-universality makes the collision probability ~2^-61; over a proptest
    /// run it should simply never happen).
    #[test]
    fn distinct_keys_do_not_collide(
        seed in any::<u64>(),
        a in proptest::collection::vec(any::<u8>(), 1..64),
        b in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(a != b);
        let family = HashFamily::new(1, seed);
        let ka = Key::from_bytes(a);
        let kb = Key::from_bytes(b);
        prop_assert_ne!(family.eval(HashId(0), &ka), family.eval(HashId(0), &kb));
    }

    /// Growing a family preserves the functions already present.
    #[test]
    fn growing_family_preserves_prefix(
        seed in any::<u64>(),
        small in 1usize..10,
        extra in 0usize..10,
        key_bytes in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let f_small = HashFamily::new(small, seed);
        let f_large = f_small.with_num_replication(small + extra);
        let key = Key::from_bytes(key_bytes);
        for i in 0..small {
            prop_assert_eq!(
                f_small.eval(HashId(i as u32), &key),
                f_large.eval(HashId(i as u32), &key)
            );
        }
    }
}
