//! Pairwise-independent hash function families.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::key::{Key, KeyDigest};
use crate::mix::mix64;

/// The Mersenne prime `2^61 − 1` used as the field modulus of the
/// 2-universal family `h_{a,b}(x) = ((a·x + b) mod p)`.
pub const MERSENNE_PRIME_61: u64 = (1u64 << 61) - 1;

/// Identifies one hash function inside a [`HashFamily`].
///
/// Replication hash functions are numbered `0..num_replication`; the
/// timestamping function `h_ts` has the reserved id
/// [`TIMESTAMP_HASH_ID`]. The paper indexes its set `Hr` the same way and
/// keeps `h_ts` outside of `Hr`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HashId(pub u32);

/// The reserved [`HashId`] of the timestamping hash function `h_ts`.
pub const TIMESTAMP_HASH_ID: HashId = HashId(u32::MAX);

impl HashId {
    /// Whether this id denotes the timestamping function `h_ts`.
    pub fn is_timestamp(self) -> bool {
        self == TIMESTAMP_HASH_ID
    }
}

impl fmt::Debug for HashId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_timestamp() {
            write!(f, "h_ts")
        } else {
            write!(f, "h{}", self.0)
        }
    }
}

impl fmt::Display for HashId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One member of the 2-universal family
/// `h_{a,b}(x) = (a·x + b) mod p`, finalized by a 64-bit mixer to cover the
/// whole identifier space uniformly.
///
/// Pairwise independence of the `(a·x + b) mod p` construction is the
/// property the paper requires of its replication hash functions (Section
/// 3.1, citing Luby): for any two distinct keys the pair of hash values is
/// uniformly distributed, so replicas of a key land on independently chosen
/// peers.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HashFunction {
    id: HashId,
    a: u64,
    b: u64,
}

impl HashFunction {
    /// Creates a hash function with explicit coefficients.
    ///
    /// `a` is forced into `1..p` and `b` into `0..p` so that the function is
    /// a proper member of the family (a = 0 would map every key to `b`).
    pub fn from_coefficients(id: HashId, a: u64, b: u64) -> Self {
        let a = (a % (MERSENNE_PRIME_61 - 1)) + 1;
        let b = b % MERSENNE_PRIME_61;
        HashFunction { id, a, b }
    }

    /// The id of this function within its family.
    pub fn id(&self) -> HashId {
        self.id
    }

    /// Evaluates the function on a key digest, producing a DHT identifier.
    #[inline]
    pub fn eval_digest(&self, digest: KeyDigest) -> u64 {
        let x = (digest.0 % MERSENNE_PRIME_61) as u128;
        let v = (self.a as u128 * x + self.b as u128) % MERSENNE_PRIME_61 as u128;
        // Final mixing spreads the 61-bit field element over the full 64-bit
        // identifier space used by the overlays.
        mix64(v as u64 ^ (u64::from(self.id.0).rotate_left(32)))
    }

    /// Evaluates the function on a [`Key`].
    #[inline]
    pub fn eval(&self, key: &Key) -> u64 {
        self.eval_digest(key.digest())
    }
}

impl fmt::Debug for HashFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HashFunction({:?}, a={}, b={})", self.id, self.a, self.b)
    }
}

/// A deterministic family of pairwise-independent hash functions: the
/// replication functions `Hr` plus the timestamping function `h_ts`.
///
/// Families are constructed from a seed so that every peer (simulated or
/// threaded) derives exactly the same functions, mirroring the paper's
/// assumption that all peers agree on `Hr` and `h_ts`.
#[derive(Clone, Debug)]
pub struct HashFamily {
    replication: Vec<HashFunction>,
    timestamp: HashFunction,
    seed: u64,
}

impl HashFamily {
    /// Builds a family with `num_replication` replication functions
    /// (`|Hr|` in the paper; 10 in Table 1) derived from `seed`.
    pub fn new(num_replication: usize, seed: u64) -> Self {
        assert!(
            num_replication >= 1,
            "at least one replication hash function is required"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed);
        let mut replication = Vec::with_capacity(num_replication);
        for i in 0..num_replication {
            replication.push(HashFunction::from_coefficients(
                HashId(i as u32),
                rng.gen(),
                rng.gen(),
            ));
        }
        let timestamp = HashFunction::from_coefficients(TIMESTAMP_HASH_ID, rng.gen(), rng.gen());
        HashFamily {
            replication,
            timestamp,
            seed,
        }
    }

    /// The seed this family was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of replication hash functions, `|Hr|`.
    pub fn num_replication(&self) -> usize {
        self.replication.len()
    }

    /// The replication hash functions, in id order.
    pub fn replication_functions(&self) -> &[HashFunction] {
        &self.replication
    }

    /// Iterator over the ids of the replication hash functions.
    pub fn replication_ids(&self) -> impl Iterator<Item = HashId> + '_ {
        self.replication.iter().map(|h| h.id())
    }

    /// The timestamping hash function `h_ts`.
    pub fn timestamp_function(&self) -> &HashFunction {
        &self.timestamp
    }

    /// Looks a function up by id (replication id or [`TIMESTAMP_HASH_ID`]).
    pub fn function(&self, id: HashId) -> Option<&HashFunction> {
        if id.is_timestamp() {
            Some(&self.timestamp)
        } else {
            self.replication.get(id.0 as usize)
        }
    }

    /// Evaluates the function `id` on `key`, panicking if the id is unknown.
    pub fn eval(&self, id: HashId, key: &Key) -> u64 {
        self.function(id)
            .unwrap_or_else(|| panic!("unknown hash id {id:?}"))
            .eval(key)
    }

    /// Evaluates `h_ts` on `key`.
    pub fn eval_timestamp(&self, key: &Key) -> u64 {
        self.timestamp.eval(key)
    }

    /// Returns a family identical to this one except for the number of
    /// replication functions (used by the replica-count sweeps of Figures 9
    /// and 10, which vary `|Hr|` with everything else fixed).
    pub fn with_num_replication(&self, num_replication: usize) -> Self {
        HashFamily::new(num_replication, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_is_deterministic_for_seed() {
        let f1 = HashFamily::new(10, 7);
        let f2 = HashFamily::new(10, 7);
        let k = Key::new("some key");
        for (a, b) in f1
            .replication_functions()
            .iter()
            .zip(f2.replication_functions())
        {
            assert_eq!(a.eval(&k), b.eval(&k));
        }
        assert_eq!(f1.eval_timestamp(&k), f2.eval_timestamp(&k));
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let f1 = HashFamily::new(4, 1);
        let f2 = HashFamily::new(4, 2);
        let k = Key::new("key");
        let same = f1
            .replication_functions()
            .iter()
            .zip(f2.replication_functions())
            .filter(|(a, b)| a.eval(&k) == b.eval(&k))
            .count();
        assert!(
            same < 4,
            "independent seeds should not reproduce the family"
        );
    }

    #[test]
    fn replication_functions_are_distinct() {
        let f = HashFamily::new(30, 99);
        let k = Key::new("a shared document");
        let mut values: Vec<u64> = f
            .replication_functions()
            .iter()
            .map(|h| h.eval(&k))
            .collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(
            values.len(),
            30,
            "hash values for one key should be distinct across Hr"
        );
    }

    #[test]
    fn timestamp_function_is_not_a_replication_function() {
        let f = HashFamily::new(10, 5);
        assert!(f.timestamp_function().id().is_timestamp());
        assert!(f.replication_ids().all(|id| !id.is_timestamp()));
    }

    #[test]
    fn function_lookup_by_id() {
        let f = HashFamily::new(3, 11);
        assert!(f.function(HashId(0)).is_some());
        assert!(f.function(HashId(2)).is_some());
        assert!(f.function(HashId(3)).is_none());
        assert!(f.function(TIMESTAMP_HASH_ID).is_some());
    }

    #[test]
    fn with_num_replication_keeps_prefix() {
        // Growing the family keeps the existing functions stable, which means a
        // deployment can raise |Hr| without remapping existing replicas.
        let small = HashFamily::new(5, 3);
        let large = small.with_num_replication(12);
        let k = Key::new("stable prefix");
        for i in 0..5 {
            assert_eq!(small.eval(HashId(i), &k), large.eval(HashId(i), &k));
        }
        assert_eq!(large.num_replication(), 12);
    }

    #[test]
    fn eval_spreads_over_identifier_space() {
        // A crude uniformity check: hash 4k keys with one function and make
        // sure each quarter of the space receives a reasonable share.
        let f = HashFamily::new(1, 17);
        let h = &f.replication_functions()[0];
        let mut buckets = [0usize; 4];
        for i in 0..4096 {
            let k = Key::new(format!("key-{i}"));
            let v = h.eval(&k);
            buckets[(v >> 62) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 700, "bucket too small: {buckets:?}");
            assert!(b < 1400, "bucket too large: {buckets:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one replication hash function")]
    fn zero_replication_functions_is_rejected() {
        let _ = HashFamily::new(0, 1);
    }
}
