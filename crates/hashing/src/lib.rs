//! Key model and pairwise-independent hash function families.
//!
//! The paper replicates each `(k, data)` pair under a set `Hr` of *pairwise
//! independent* hash functions (its "replication hash functions") plus a
//! dedicated hash function `h_ts` that selects the peer responsible for
//! timestamping a key (Section 3.1 and 4.1 of the paper, which cites Luby's
//! construction of 2-universal families).
//!
//! This crate provides:
//!
//! * [`Key`] — an application-level key (an arbitrary byte string, e.g. an
//!   agenda entry id or a file name). Keys never depend on the value stored
//!   under them, matching the paper's implementation note in Section 5.1.
//! * [`HashFunction`] — one member of a 2-universal family
//!   `h(x) = ((a·x + b) mod p) mod 2^64` over the Mersenne prime `p = 2^61 − 1`.
//! * [`HashFamily`] — a deterministic, seedable family containing the
//!   `|Hr|` replication functions and the timestamping function `h_ts`.
//!
//! All hashing is deterministic for a given seed so that simulations and the
//! threaded deployment agree on responsibilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod family;
mod key;
mod mix;

pub use family::{HashFamily, HashFunction, HashId, TIMESTAMP_HASH_ID};
pub use key::{Key, KeyDigest};
pub use mix::{fingerprint64, mix64};

#[cfg(test)]
mod proptests;
