//! Application-level keys.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::mix::fingerprint64;

/// An application-level key accepted by the DHT (the set `K` in the paper's
/// DHT model, Definition 1).
///
/// A key is an arbitrary byte string chosen by the application — for example
/// `"agenda:room-42"` or `"auction:item-991"`. Keys are independent of the
/// values stored under them (Section 5.1: "the keys do not depend on the data
/// values, so changing the value of a data does not change its key").
///
/// The bytes are reference-counted (`Arc<[u8]>`) and the 64-bit
/// [`KeyDigest`] is computed once at construction, so cloning a key is a
/// refcount bump and evaluating all `|Hr| + 1` hash functions on it never
/// re-reads the byte string. This is what makes the per-operation probe path
/// allocation-free: every layer passes `&Key` (or a cheap clone) around and
/// hashing costs constant time.
#[derive(Clone)]
pub struct Key {
    bytes: Arc<[u8]>,
    digest: KeyDigest,
}

impl Key {
    /// Creates a key from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        let bytes: Arc<[u8]> = bytes.into().into();
        let digest = KeyDigest(fingerprint64(&bytes));
        Key { bytes, digest }
    }

    /// Creates a key from a string.
    pub fn new(s: impl AsRef<str>) -> Self {
        Key::from_bytes(s.as_ref().as_bytes().to_vec())
    }

    /// The raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The 64-bit digest of the key, used as the input `x` of every hash
    /// function in the family. Cached at construction — calling this is free.
    #[inline]
    pub fn digest(&self) -> KeyDigest {
        self.digest
    }

    /// Lossy UTF-8 rendering, for logs and examples.
    pub fn display_lossy(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }
}

// Equality, ordering and hashing are defined on the key bytes alone; the
// cached digest is a pure function of the bytes, so it can never disagree,
// but it must not contribute to `Hash` (the `Borrow<[u8]>` impl promises
// that a `Key` hashes exactly like its byte slice).
impl PartialEq for Key {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // The digest comparison rejects almost all non-equal keys in one
        // word comparison before touching the byte strings.
        self.digest == other.digest && self.bytes == other.bytes
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.bytes.hash(state);
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bytes.cmp(&other.bytes)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:?})", self.display_lossy())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_lossy())
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::from_bytes(s.into_bytes())
    }
}

impl Borrow<[u8]> for Key {
    fn borrow(&self) -> &[u8] {
        &self.bytes
    }
}

/// The 64-bit fingerprint of a [`Key`].
///
/// All hash functions in a [`crate::HashFamily`] consume this digest rather
/// than the raw bytes. The digest is computed once when the key is built and
/// cached inside it, so evaluating `|Hr| + 1` functions on a key costs
/// `|Hr| + 1` constant-time arithmetic evaluations and zero byte-string
/// passes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyDigest(pub u64);

impl fmt::Debug for KeyDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyDigest({:#018x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_from_str_and_string_agree() {
        let a = Key::new("meeting:standup");
        let b: Key = "meeting:standup".into();
        let c: Key = String::from("meeting:standup").into();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn digest_is_stable() {
        let k = Key::new("file:report.pdf");
        assert_eq!(k.digest(), k.digest());
    }

    #[test]
    fn cached_digest_matches_fresh_fingerprint() {
        let k = Key::new("agenda:room-42");
        assert_eq!(k.digest().0, fingerprint64(k.as_bytes()));
        let clone = k.clone();
        assert_eq!(clone.digest(), k.digest());
    }

    #[test]
    fn clone_shares_bytes_without_allocating() {
        let k = Key::new("shared");
        let c = k.clone();
        assert!(std::ptr::eq(k.as_bytes(), c.as_bytes()));
    }

    #[test]
    fn different_keys_have_different_digests() {
        let a = Key::new("a");
        let b = Key::new("b");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn display_is_lossy_utf8() {
        let k = Key::from_bytes(vec![0x66, 0x6f, 0x6f]);
        assert_eq!(k.to_string(), "foo");
        assert_eq!(format!("{k:?}"), "Key(\"foo\")");
    }

    #[test]
    fn ordering_is_lexicographic_on_bytes() {
        let a = Key::new("aaa");
        let b = Key::new("aab");
        assert!(a < b);
    }

    #[test]
    fn hash_matches_borrowed_slice_hash() {
        use std::collections::hash_map::DefaultHasher;
        let k = Key::new("doc");
        let mut h1 = DefaultHasher::new();
        k.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        <[u8] as Hash>::hash(k.as_bytes(), &mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
