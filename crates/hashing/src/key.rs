//! Application-level keys.

use std::borrow::Borrow;
use std::fmt;

use crate::mix::fingerprint64;

/// An application-level key accepted by the DHT (the set `K` in the paper's
/// DHT model, Definition 1).
///
/// A key is an arbitrary byte string chosen by the application — for example
/// `"agenda:room-42"` or `"auction:item-991"`. Keys are independent of the
/// values stored under them (Section 5.1: "the keys do not depend on the data
/// values, so changing the value of a data does not change its key").
///
/// `Key` is cheap to clone (it stores the bytes in an `Arc`-free boxed slice,
/// typically short) and hashable so it can index per-peer stores and counter
/// sets.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    bytes: Box<[u8]>,
}

impl Key {
    /// Creates a key from raw bytes.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Key {
            bytes: bytes.into().into_boxed_slice(),
        }
    }

    /// Creates a key from a string.
    pub fn new(s: impl AsRef<str>) -> Self {
        Key::from_bytes(s.as_ref().as_bytes().to_vec())
    }

    /// The raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The 64-bit digest of the key, used as the input `x` of every hash
    /// function in the family.
    pub fn digest(&self) -> KeyDigest {
        KeyDigest(fingerprint64(&self.bytes))
    }

    /// Lossy UTF-8 rendering, for logs and examples.
    pub fn display_lossy(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:?})", self.display_lossy())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_lossy())
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::from_bytes(s.into_bytes())
    }
}

impl Borrow<[u8]> for Key {
    fn borrow(&self) -> &[u8] {
        &self.bytes
    }
}

/// The 64-bit fingerprint of a [`Key`].
///
/// All hash functions in a [`crate::HashFamily`] consume this digest rather
/// than the raw bytes, so that evaluating `|Hr| + 1` functions on a key costs
/// one byte-string pass plus `|Hr| + 1` constant-time arithmetic evaluations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyDigest(pub u64);

impl fmt::Debug for KeyDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyDigest({:#018x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_from_str_and_string_agree() {
        let a = Key::new("meeting:standup");
        let b: Key = "meeting:standup".into();
        let c: Key = String::from("meeting:standup").into();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn digest_is_stable() {
        let k = Key::new("file:report.pdf");
        assert_eq!(k.digest(), k.digest());
    }

    #[test]
    fn different_keys_have_different_digests() {
        let a = Key::new("a");
        let b = Key::new("b");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn display_is_lossy_utf8() {
        let k = Key::from_bytes(vec![0x66, 0x6f, 0x6f]);
        assert_eq!(k.to_string(), "foo");
        assert_eq!(format!("{k:?}"), "Key(\"foo\")");
    }

    #[test]
    fn ordering_is_lexicographic_on_bytes() {
        let a = Key::new("aaa");
        let b = Key::new("aab");
        assert!(a < b);
    }
}
