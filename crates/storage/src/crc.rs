//! CRC-32 (IEEE 802.3 polynomial, the one used by gzip/zlib/ethernet) for
//! record framing. Table-driven, with the table built at compile time — no
//! external dependency, no runtime initialization.

const POLYNOMIAL: u32 = 0xedb8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                POLYNOMIAL ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let a = crc32(b"hello world");
        let mut flipped = b"hello world".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
