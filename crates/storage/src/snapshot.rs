//! Snapshot files: compacted images of a peer's full durable state.
//!
//! A snapshot uses the same CRC framing as the WAL. Its records are:
//!
//! 1. a header (`"RDHTSNAP"` magic, format version, generation number);
//! 2. one [`StorageOp`] per replica and per counter, rebuilding the state
//!    from empty;
//! 3. a footer carrying the op count.
//!
//! A snapshot is *valid* only if every frame checks out, the header and
//! footer are present, and the footer count matches — so a snapshot that was
//! torn mid-write (the crash-during-compaction case) is rejected as a whole
//! and recovery falls back to the previous generation, which is only deleted
//! after the new snapshot is fully on disk.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use crate::frame::{append_frame, read_frames};
use crate::op::StorageOp;
use crate::state::MemoryState;

const MAGIC: &[u8; 8] = b"RDHTSNAP";
const VERSION: u32 = 1;
const TAG_HEADER: u8 = 0xF0;
const TAG_FOOTER: u8 = 0xF1;
const TAG_OP: u8 = 0x01;

/// Writes a snapshot of `state` to `tmp_path`, fsyncs it, then renames it
/// into place at `final_path` (rename is the atomic commit point).
pub fn write_snapshot(
    tmp_path: &Path,
    final_path: &Path,
    generation: u64,
    state: &MemoryState,
) -> io::Result<()> {
    let ops = state.to_ops();
    let mut buf = Vec::new();

    let mut header = Vec::with_capacity(21);
    header.push(TAG_HEADER);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&generation.to_le_bytes());
    append_frame(&mut buf, &header);

    let mut scratch = Vec::new();
    for op in &ops {
        scratch.clear();
        scratch.push(TAG_OP);
        op.encode(&mut scratch);
        append_frame(&mut buf, &scratch);
    }

    let mut footer = Vec::with_capacity(9);
    footer.push(TAG_FOOTER);
    footer.extend_from_slice(&(ops.len() as u64).to_le_bytes());
    append_frame(&mut buf, &footer);

    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(tmp_path)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(tmp_path, final_path)?;
    Ok(())
}

/// Loads the snapshot at `path`. Returns `Ok(None)` when the file is absent
/// or fails validation (torn, truncated, wrong magic/version, bad count) —
/// the caller falls back to an older generation or an empty state.
pub fn load_snapshot(path: &Path) -> io::Result<Option<MemoryState>> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut buf)?;
        }
        Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(error) => return Err(error),
    }
    let (payloads, _, torn) = read_frames(&buf);
    if torn || payloads.len() < 2 {
        return Ok(None);
    }

    let header = payloads[0];
    if header.len() != 21
        || header[0] != TAG_HEADER
        || &header[1..9] != MAGIC
        || u32::from_le_bytes(header[9..13].try_into().expect("4 bytes")) != VERSION
    {
        return Ok(None);
    }

    let footer = payloads[payloads.len() - 1];
    if footer.len() != 9 || footer[0] != TAG_FOOTER {
        return Ok(None);
    }
    let declared = u64::from_le_bytes(footer[1..9].try_into().expect("8 bytes"));
    let op_payloads = &payloads[1..payloads.len() - 1];
    if declared != op_payloads.len() as u64 {
        return Ok(None);
    }

    let mut state = MemoryState::new();
    for payload in op_payloads {
        if payload.first() != Some(&TAG_OP) {
            return Ok(None);
        }
        match StorageOp::decode(&payload[1..]) {
            Some(op) => state.apply(&op),
            None => return Ok(None),
        }
    }
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdht_core::Timestamp;
    use rdht_hashing::{HashId, Key};
    use std::path::PathBuf;

    fn temp_pair(tag: &str) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        (
            dir.join(format!("rdht-snap-test-{pid}-{tag}.tmp")),
            dir.join(format!("rdht-snap-test-{pid}-{tag}.snap")),
        )
    }

    fn sample_state() -> MemoryState {
        let mut state = MemoryState::new();
        for i in 0..25u64 {
            state.apply(&StorageOp::PutReplica {
                hash: HashId((i % 4) as u32),
                key: Key::new(format!("key-{}", i / 4)),
                payload: vec![i as u8; 16],
                stamp: Timestamp(i + 1),
                position: i * 999,
            });
        }
        state.apply(&StorageOp::SetCounter {
            key: Key::new("key-0"),
            value: Timestamp(21),
        });
        state
    }

    #[test]
    fn snapshot_round_trips() {
        let (tmp, fin) = temp_pair("round-trip");
        let state = sample_state();
        write_snapshot(&tmp, &fin, 3, &state).unwrap();
        assert!(!tmp.exists(), "tmp file renamed away");
        let loaded = load_snapshot(&fin).unwrap().expect("valid snapshot");
        assert_eq!(loaded, state);
        std::fs::remove_file(&fin).unwrap();
    }

    #[test]
    fn empty_state_snapshot_round_trips() {
        let (tmp, fin) = temp_pair("empty");
        write_snapshot(&tmp, &fin, 0, &MemoryState::new()).unwrap();
        let loaded = load_snapshot(&fin).unwrap().expect("valid snapshot");
        assert_eq!(loaded, MemoryState::new());
        std::fs::remove_file(&fin).unwrap();
    }

    #[test]
    fn torn_snapshot_is_rejected_whole() {
        let (tmp, fin) = temp_pair("torn");
        let state = sample_state();
        write_snapshot(&tmp, &fin, 1, &state).unwrap();
        let len = std::fs::metadata(&fin).unwrap().len();
        // Chop off the footer (and a bit more): the snapshot must be
        // rejected entirely, not loaded as a partial state.
        let file = OpenOptions::new().write(true).open(&fin).unwrap();
        file.set_len(len - 12).unwrap();
        drop(file);
        assert_eq!(load_snapshot(&fin).unwrap(), None);
        std::fs::remove_file(&fin).unwrap();
    }

    #[test]
    fn missing_snapshot_loads_as_none() {
        assert_eq!(
            load_snapshot(Path::new("/nonexistent/none.snap")).unwrap(),
            None
        );
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let (tmp, fin) = temp_pair("magic");
        write_snapshot(&tmp, &fin, 1, &MemoryState::new()).unwrap();
        let mut bytes = std::fs::read(&fin).unwrap();
        // Corrupt the magic *and* fix up the frame CRC so only the magic
        // check can reject it.
        bytes[crate::frame::FRAME_HEADER_LEN + 1] = b'X';
        let payload_len = 21usize;
        let crc = crate::crc::crc32(
            &bytes[crate::frame::FRAME_HEADER_LEN..crate::frame::FRAME_HEADER_LEN + payload_len],
        );
        bytes[4..8].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&fin, &bytes).unwrap();
        assert_eq!(load_snapshot(&fin).unwrap(), None);
        std::fs::remove_file(&fin).unwrap();
    }
}
