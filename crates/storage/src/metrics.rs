//! The engine's registry instruments.
//!
//! [`StorageMetrics`] is a bundle of `rdht-metrics` handles the engine
//! publishes into after every journaled operation. The *storage locations*
//! are the engine's own monotonic counters (and the live WAL writer's): the
//! instruments mirror those totals via `Counter::record_absolute`, so
//! [`crate::StorageStats`] and the registry exposition always agree — one
//! count, one canonical name.

use rdht_metrics::{exponential_buckets, Counter, Histogram, Registry};

/// Canonical instrument names, also listed in the README's catalog.
pub mod names {
    /// `sync_data` calls issued by the WAL — the fsync count of ROADMAP
    /// item 5.
    pub const WAL_SYNCS: &str = "storage_wal_syncs_total";
    /// Ops journaled to the WAL.
    pub const OPS_APPENDED: &str = "storage_ops_appended_total";
    /// Framed bytes appended to the WAL.
    pub const WAL_BYTES: &str = "storage_wal_bytes_total";
    /// Snapshot compactions performed.
    pub const COMPACTIONS: &str = "storage_compactions_total";
    /// Ops per journaled batch — the group-commit batch depth.
    pub const BATCH_OPS: &str = "storage_batch_ops";
    /// Time spent recovering the directory at open, in nanoseconds.
    pub const RECOVERY_NS: &str = "storage_recovery_duration_ns";
}

/// Instrument handles for one engine. Create with
/// [`StorageMetrics::register`]; attach with
/// [`crate::StorageEngine::attach_metrics`].
#[derive(Clone, Debug)]
pub struct StorageMetrics {
    /// Mirrors [`crate::StorageStats::wal_syncs`].
    pub wal_syncs: Counter,
    /// Mirrors [`crate::StorageStats::ops_appended`].
    pub ops_appended: Counter,
    /// Mirrors [`crate::StorageStats::wal_bytes_appended`].
    pub wal_bytes: Counter,
    /// Mirrors [`crate::StorageStats::snapshots_written`].
    pub compactions: Counter,
    /// Distribution of [`crate::StorageEngine::apply_batch`] sizes.
    pub batch_ops: Histogram,
    /// Recovery wall time observed once at attach.
    pub recovery_ns: Histogram,
}

impl StorageMetrics {
    /// Registers (get-or-create) the engine instruments into `registry`
    /// under `labels`.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        StorageMetrics {
            wal_syncs: registry.counter(
                names::WAL_SYNCS,
                "sync_data calls issued by the write-ahead log",
                labels,
            ),
            ops_appended: registry.counter(
                names::OPS_APPENDED,
                "ops journaled to the write-ahead log",
                labels,
            ),
            wal_bytes: registry.counter(
                names::WAL_BYTES,
                "framed bytes appended to the write-ahead log",
                labels,
            ),
            compactions: registry.counter(
                names::COMPACTIONS,
                "snapshot compactions performed",
                labels,
            ),
            batch_ops: registry.histogram_with_buckets(
                names::BATCH_OPS,
                "ops per journaled group-commit batch",
                labels,
                exponential_buckets(1, 2, 11),
            ),
            recovery_ns: registry.histogram(
                names::RECOVERY_NS,
                "directory recovery wall time at engine open, nanoseconds",
                labels,
            ),
        }
    }
}
