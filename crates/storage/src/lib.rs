//! **rdht-storage** — a durable peer-state engine for the replicated-DHT
//! currency stack: an append-only, CRC-framed write-ahead log of storage
//! operations, periodic compaction into snapshot files, and a recovery path
//! that rebuilds a peer's replicas and KTS counters after a crash.
//!
//! # Why
//!
//! The paper's central failure story (Section 4.2.2) is that after the
//! responsible of timestamping fails, the *new* responsible rebuilds the
//! key's counter **indirectly** from the surviving replicas. Every other
//! crate in this workspace keeps peer state purely in memory, so that story
//! could only be exercised by flipping alive-flags. This crate makes peer
//! state real: a peer's replicas and counters live in a directory, a crash
//! genuinely loses what was not yet journaled, and a restarted peer
//! re-enters the system with exactly the state the log proves it had.
//!
//! One correctness point deserves emphasis: the counters *are* journaled
//! ([`StorageOp::SetCounter`]) and recovered ([`StorageEngine::recover`]),
//! but a **rejoining peer must not resurrect them into its live Valid
//! Counter Set**. While the peer was down another peer took over
//! timestamping and may have generated newer timestamps than the durable
//! counter value — trusting the disk would break monotonicity (Definition 2).
//! Rule 1 (the VCS starts empty on rejoin) stays in force; the recovered
//! counters are reporting/diagnostic state, and the live counters are
//! re-initialized indirectly from the (durable) replicas.
//!
//! # On-disk format
//!
//! * **Record framing** ([`frame`]): every record is
//!   `len: u32 LE | crc32: u32 LE | payload`. Readers stop at the first
//!   frame that fails — everything before is a valid prefix, a torn final
//!   record is tolerated and truncated away.
//! * **WAL** ([`wal`]): `wal-<generation:016x>.log`, a sequence of framed
//!   [`StorageOp`] records in apply order. [`FsyncPolicy`] controls when
//!   appends reach stable storage (`Always` / `EveryN(n)` /
//!   `GroupCommit { max_batch, max_delay }` / `Never`). Group commit is the
//!   production-fast durable path: many concurrently pending ops are framed
//!   and written together ([`WalWriter::append_batch`],
//!   [`StorageEngine::apply_batch`]) and made durable by a **single**
//!   covering `sync_data` at the batch boundary — each op is acknowledged
//!   only after the sync that covers it, so the durability guarantee is
//!   `Always`-grade at a fraction of the fsync count.
//! * **Snapshots** ([`snapshot`]): `snapshot-<generation:016x>.snap`, a
//!   framed header (magic `RDHTSNAP`, version, generation), one op per
//!   replica/counter, and a footer with the op count; rejected as a whole
//!   unless complete. Compaction writes the next generation to a `.tmp`
//!   file, fsyncs, atomically renames, starts a fresh WAL, then deletes the
//!   previous generation.
//!
//! # Crash/restart walkthrough
//!
//! ```
//! use rdht_core::{ums, InMemoryDht};
//! use rdht_hashing::Key;
//! use rdht_storage::{FsyncPolicy, StorageEngine, StorageOptions};
//!
//! let dir = std::env::temp_dir().join(format!("rdht-doc-walkthrough-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // A DHT journaling every accepted mutation to a storage engine.
//! let engine = StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Always)).unwrap();
//! let mut dht = InMemoryDht::with_durability(10, 42, engine);
//! let key = Key::new("agenda:room-42");
//! ums::insert(&mut dht, &key, b"meeting at 10:00".to_vec()).unwrap();
//! ums::insert(&mut dht, &key, b"meeting moved to 11:00".to_vec()).unwrap();
//!
//! // CRASH: drop the whole DHT. In-memory state is gone.
//! drop(dht);
//!
//! // RESTART: recover the durable state from the directory.
//! let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
//! assert_eq!(replicas.len(), 10);                       // every replica survived
//! assert_eq!(counters.value(&key).unwrap().0, 2);       // the counter image too
//!
//! // Rebuild a peer from the recovered replicas. Rule 1: the live counter
//! // set starts EMPTY — the first request re-initializes indirectly from
//! // the recovered replicas (Section 4.2.2), never from the on-disk counter.
//! let mut restarted = InMemoryDht::new(10, 42);
//! for (hash, k, replica) in replicas.iter() {
//!     restarted.load_recovered_replica(hash, k, replica.to_replica_value());
//! }
//! let got = ums::retrieve(&mut restarted, &key).unwrap();
//! assert!(got.is_current);
//! assert_eq!(got.data.unwrap(), b"meeting moved to 11:00".to_vec());
//! assert_eq!(restarted.kts().stats().indirect_initializations, 1);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! The threaded deployment (`rdht-net`) wires this up end to end:
//! `Cluster::crash_peer` tears a peer thread down, `Cluster::restart_peer`
//! respawns it from its on-disk directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
pub mod frame;
pub mod metrics;
mod op;
mod snapshot;
mod state;
mod wal;

mod engine;

pub use engine::{RecoveredState, StorageEngine, StorageOptions, StorageStats, SyncObserver};
pub use metrics::StorageMetrics;
pub use op::StorageOp;
pub use state::{CounterSet, MemoryState, ReplicaStore, StoredReplica};
pub use wal::{replay, FsyncPolicy, WalReplay, WalWriter};

#[cfg(test)]
mod proptests;
