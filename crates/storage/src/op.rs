//! The logged operations and their binary codec.
//!
//! A [`StorageOp`] is one accepted mutation of a peer's durable state — the
//! unit both the write-ahead log and the snapshot files are made of. The
//! codec is a fixed little-endian layout (1-byte tag, `u32`/`u64` scalars,
//! `u32`-length-prefixed byte strings); it has no self-description because
//! every record is already CRC-framed by [`crate::frame`] and versioned by
//! the snapshot header.

use rdht_core::Timestamp;
use rdht_hashing::{HashId, Key};

/// One journaled mutation of a peer's replica store or counter set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageOp {
    /// An accepted replica write: `(hash, key)` now stores `payload` stamped
    /// `stamp`, at ring position `position`.
    PutReplica {
        /// Replication hash function the replica is stored under.
        hash: HashId,
        /// The application key.
        key: Key,
        /// Replica payload.
        payload: Vec<u8>,
        /// Ordering stamp (a KTS timestamp).
        stamp: Timestamp,
        /// Ring position of the key under `hash`.
        position: u64,
    },
    /// The replica under `(hash, key)` was removed.
    RemoveReplica {
        /// Replication hash function.
        hash: HashId,
        /// The application key.
        key: Key,
    },
    /// The valid counter for `key` now holds `value`.
    SetCounter {
        /// The application key.
        key: Key,
        /// Resulting counter value.
        value: Timestamp,
    },
    /// The counter for `key` left the valid set.
    RemoveCounter {
        /// The application key.
        key: Key,
    },
    /// Every counter left the valid set (Rule 1: the peer re-joined).
    ClearCounters,
    /// Responsibility for the ring interval `(start, end]` was handed away;
    /// every replica whose position falls in it was transferred out.
    TransferRange {
        /// Exclusive interval start.
        start: u64,
        /// Inclusive interval end. `start == end` denotes the whole ring
        /// (the single-node degenerate case, matching
        /// `rdht_overlay::PeerStore::drain_range`).
        end: u64,
    },
}

const TAG_PUT_REPLICA: u8 = 1;
const TAG_REMOVE_REPLICA: u8 = 2;
const TAG_SET_COUNTER: u8 = 3;
const TAG_REMOVE_COUNTER: u8 = 4;
const TAG_CLEAR_COUNTERS: u8 = 5;
const TAG_TRANSFER_RANGE: u8 = 6;

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Little-endian, bounds-checked cursor over an encoded op.
struct Cursor<'a> {
    buf: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.offset)?;
        self.offset += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.offset.checked_add(4)?;
        let v = u32::from_le_bytes(self.buf.get(self.offset..end)?.try_into().ok()?);
        self.offset = end;
        Some(v)
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.offset.checked_add(8)?;
        let v = u64::from_le_bytes(self.buf.get(self.offset..end)?.try_into().ok()?);
        self.offset = end;
        Some(v)
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let end = self.offset.checked_add(len)?;
        let v = self.buf.get(self.offset..end)?;
        self.offset = end;
        Some(v)
    }

    fn key(&mut self) -> Option<Key> {
        Some(Key::from_bytes(self.bytes()?.to_vec()))
    }

    fn finish(self) -> bool {
        self.offset == self.buf.len()
    }
}

impl StorageOp {
    /// Appends the encoded op to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            StorageOp::PutReplica {
                hash,
                key,
                payload,
                stamp,
                position,
            } => {
                out.push(TAG_PUT_REPLICA);
                out.extend_from_slice(&hash.0.to_le_bytes());
                out.extend_from_slice(&stamp.0.to_le_bytes());
                out.extend_from_slice(&position.to_le_bytes());
                put_bytes(out, key.as_bytes());
                put_bytes(out, payload);
            }
            StorageOp::RemoveReplica { hash, key } => {
                out.push(TAG_REMOVE_REPLICA);
                out.extend_from_slice(&hash.0.to_le_bytes());
                put_bytes(out, key.as_bytes());
            }
            StorageOp::SetCounter { key, value } => {
                out.push(TAG_SET_COUNTER);
                out.extend_from_slice(&value.0.to_le_bytes());
                put_bytes(out, key.as_bytes());
            }
            StorageOp::RemoveCounter { key } => {
                out.push(TAG_REMOVE_COUNTER);
                put_bytes(out, key.as_bytes());
            }
            StorageOp::ClearCounters => out.push(TAG_CLEAR_COUNTERS),
            StorageOp::TransferRange { start, end } => {
                out.push(TAG_TRANSFER_RANGE);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&end.to_le_bytes());
            }
        }
    }

    /// The encoded form as an owned buffer.
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one op from `buf`. `None` means the payload is malformed
    /// (unknown tag, short read, trailing garbage) — callers treat that as
    /// corruption and stop replaying.
    pub fn decode(buf: &[u8]) -> Option<StorageOp> {
        let mut cursor = Cursor { buf, offset: 0 };
        let op = match cursor.u8()? {
            TAG_PUT_REPLICA => {
                let hash = HashId(cursor.u32()?);
                let stamp = Timestamp(cursor.u64()?);
                let position = cursor.u64()?;
                let key = cursor.key()?;
                let payload = cursor.bytes()?.to_vec();
                StorageOp::PutReplica {
                    hash,
                    key,
                    payload,
                    stamp,
                    position,
                }
            }
            TAG_REMOVE_REPLICA => {
                let hash = HashId(cursor.u32()?);
                let key = cursor.key()?;
                StorageOp::RemoveReplica { hash, key }
            }
            TAG_SET_COUNTER => {
                let value = Timestamp(cursor.u64()?);
                let key = cursor.key()?;
                StorageOp::SetCounter { key, value }
            }
            TAG_REMOVE_COUNTER => StorageOp::RemoveCounter { key: cursor.key()? },
            TAG_CLEAR_COUNTERS => StorageOp::ClearCounters,
            TAG_TRANSFER_RANGE => StorageOp::TransferRange {
                start: cursor.u64()?,
                end: cursor.u64()?,
            },
            _ => return None,
        };
        cursor.finish().then_some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(op: StorageOp) {
        let encoded = op.encode_to_vec();
        assert_eq!(StorageOp::decode(&encoded), Some(op));
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(StorageOp::PutReplica {
            hash: HashId(3),
            key: Key::new("doc"),
            payload: b"payload bytes".to_vec(),
            stamp: Timestamp(42),
            position: 0xdead_beef_cafe_f00d,
        });
        round_trip(StorageOp::PutReplica {
            hash: HashId(u32::MAX),
            key: Key::from_bytes(vec![]),
            payload: vec![],
            stamp: Timestamp(u64::MAX),
            position: 0,
        });
        round_trip(StorageOp::RemoveReplica {
            hash: HashId(7),
            key: Key::new("gone"),
        });
        round_trip(StorageOp::SetCounter {
            key: Key::new("k"),
            value: Timestamp(17),
        });
        round_trip(StorageOp::RemoveCounter { key: Key::new("k") });
        round_trip(StorageOp::ClearCounters);
        round_trip(StorageOp::TransferRange {
            start: 5,
            end: u64::MAX,
        });
    }

    #[test]
    fn unknown_tag_and_trailing_garbage_are_rejected() {
        assert_eq!(StorageOp::decode(&[99]), None);
        assert_eq!(StorageOp::decode(&[]), None);
        let mut encoded = StorageOp::ClearCounters.encode_to_vec();
        encoded.push(0);
        assert_eq!(StorageOp::decode(&encoded), None);
    }

    #[test]
    fn truncated_encodings_are_rejected() {
        let encoded = StorageOp::PutReplica {
            hash: HashId(3),
            key: Key::new("doc"),
            payload: b"xyz".to_vec(),
            stamp: Timestamp(1),
            position: 9,
        }
        .encode_to_vec();
        for cut in 0..encoded.len() {
            assert_eq!(StorageOp::decode(&encoded[..cut]), None, "cut at {cut}");
        }
    }
}
