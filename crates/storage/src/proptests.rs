//! WAL robustness properties (the ISSUE 3 satellite):
//!
//! 1. for any random op sequence, `recover()` after a clean close equals the
//!    in-memory state built by applying the same ops;
//! 2. after truncating the log at *any* byte boundary, recovery still
//!    succeeds and yields a prefix of the op sequence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use rdht_core::Timestamp;
use rdht_hashing::{HashId, Key};

use crate::op::StorageOp;
use crate::state::MemoryState;
use crate::wal::{replay, FsyncPolicy, WalWriter};
use crate::{StorageEngine, StorageOptions};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rdht-storage-proptest-{}-{}-{tag}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Decodes one generated tuple into a `StorageOp`. Keys are drawn from a
/// small pool so removes/overwrites actually hit existing entries.
fn make_op(selector: u8, key_id: u8, hash: u8, a: u64, b: u64) -> StorageOp {
    let key = Key::new(format!("key-{}", key_id % 13));
    let hash = HashId(u32::from(hash % 6));
    match selector % 10 {
        // Puts dominate, as in a real workload.
        0..=4 => StorageOp::PutReplica {
            hash,
            key,
            payload: a.to_le_bytes()[..(b % 9) as usize].to_vec(),
            stamp: Timestamp(a % 1000),
            position: b,
        },
        5 => StorageOp::RemoveReplica { hash, key },
        6 => StorageOp::SetCounter {
            key,
            value: Timestamp(a % 1000),
        },
        7 => StorageOp::RemoveCounter { key },
        8 => StorageOp::TransferRange { start: a, end: b },
        _ => StorageOp::ClearCounters,
    }
}

fn ops_from(raw: &[(u8, u8, u8, u64, u64)]) -> Vec<StorageOp> {
    raw.iter()
        .map(|&(s, k, h, a, b)| make_op(s, k, h, a, b))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: clean close ≡ in-memory apply, through the full engine
    /// (WAL + auto-compaction), for any op sequence.
    #[test]
    fn recover_after_clean_close_equals_in_memory_state(
        raw in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()), 0..120),
        snapshot_every in 0u64..40,
    ) {
        let ops = ops_from(&raw);
        let dir = fresh_dir("clean-close");
        let mut expected = MemoryState::new();
        {
            let mut options = StorageOptions::with_fsync(FsyncPolicy::Never);
            options.snapshot_every = snapshot_every;
            let mut engine = StorageEngine::open(&dir, options).unwrap();
            for op in &ops {
                expected.apply(op);
                engine.apply(op).unwrap();
            }
            engine.sync().unwrap();
        }
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        prop_assert_eq!(&replicas, &expected.replicas);
        prop_assert_eq!(&counters, &expected.counters);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Property 2: truncating the WAL at any byte boundary still recovers,
    /// and yields exactly a prefix of the op sequence.
    #[test]
    fn truncated_wal_recovers_a_prefix(
        raw in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()), 1..40),
        cut_seed in any::<u64>(),
    ) {
        let ops = ops_from(&raw);
        let dir = fresh_dir("truncate");
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal-0000000000000000.log");
        {
            let mut wal = WalWriter::create(wal_path.clone(), FsyncPolicy::Never).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        let full_len = std::fs::metadata(&wal_path).unwrap().len();
        let cut = cut_seed % (full_len + 1);
        {
            let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
            file.set_len(cut).unwrap();
        }

        // Raw replay yields a prefix…
        let replayed = replay(&wal_path).unwrap();
        prop_assert!(replayed.ops.len() <= ops.len());
        prop_assert_eq!(&replayed.ops[..], &ops[..replayed.ops.len()]);
        prop_assert!(replayed.valid_len <= cut);
        prop_assert_eq!(replayed.torn_tail, replayed.valid_len != cut);

        // …and full recovery applies exactly that prefix.
        let mut expected = MemoryState::new();
        for op in &ops[..replayed.ops.len()] {
            expected.apply(op);
        }
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        prop_assert_eq!(&replicas, &expected.replicas);
        prop_assert_eq!(&counters, &expected.counters);

        // The engine reopens over the truncated log and keeps working.
        let mut engine = StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
        engine.apply(&StorageOp::ClearCounters).unwrap();
        engine.sync().unwrap();
        let recovered = StorageEngine::recover_state(&dir).unwrap();
        prop_assert_eq!(recovered.wal_ops, replayed.ops.len() as u64 + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
