//! WAL robustness properties (the ISSUE 3 satellite):
//!
//! 1. for any random op sequence, `recover()` after a clean close equals the
//!    in-memory state built by applying the same ops;
//! 2. after truncating the log at *any* byte boundary, recovery still
//!    succeeds and yields a prefix of the op sequence.
//!
//! Group-commit properties (the ISSUE 5 satellite):
//!
//! 3. a random op sequence journaled through group-commit batches (any
//!    partition into batches) recovers to exactly the state of the per-op
//!    path;
//! 4. a crash *between* a batch's buffered write and its covering fsync —
//!    modelled as truncation at any byte of the log — loses at most a
//!    suffix of the op sequence: replay yields a valid prefix, never a torn
//!    interior record.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;
use rdht_core::Timestamp;
use rdht_hashing::{HashId, Key};

use crate::op::StorageOp;
use crate::state::MemoryState;
use crate::wal::{replay, FsyncPolicy, WalWriter};
use crate::{StorageEngine, StorageOptions};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rdht-storage-proptest-{}-{}-{tag}",
        std::process::id(),
        // relaxed: uniqueness needs only RMW atomicity, no ordering.
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Decodes one generated tuple into a `StorageOp`. Keys are drawn from a
/// small pool so removes/overwrites actually hit existing entries.
fn make_op(selector: u8, key_id: u8, hash: u8, a: u64, b: u64) -> StorageOp {
    let key = Key::new(format!("key-{}", key_id % 13));
    let hash = HashId(u32::from(hash % 6));
    match selector % 10 {
        // Puts dominate, as in a real workload.
        0..=4 => StorageOp::PutReplica {
            hash,
            key,
            payload: a.to_le_bytes()[..(b % 9) as usize].to_vec(),
            stamp: Timestamp(a % 1000),
            position: b,
        },
        5 => StorageOp::RemoveReplica { hash, key },
        6 => StorageOp::SetCounter {
            key,
            value: Timestamp(a % 1000),
        },
        7 => StorageOp::RemoveCounter { key },
        8 => StorageOp::TransferRange { start: a, end: b },
        _ => StorageOp::ClearCounters,
    }
}

fn ops_from(raw: &[(u8, u8, u8, u64, u64)]) -> Vec<StorageOp> {
    raw.iter()
        .map(|&(s, k, h, a, b)| make_op(s, k, h, a, b))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: clean close ≡ in-memory apply, through the full engine
    /// (WAL + auto-compaction), for any op sequence.
    #[test]
    fn recover_after_clean_close_equals_in_memory_state(
        raw in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()), 0..120),
        snapshot_every in 0u64..40,
    ) {
        let ops = ops_from(&raw);
        let dir = fresh_dir("clean-close");
        let mut expected = MemoryState::new();
        {
            let mut options = StorageOptions::with_fsync(FsyncPolicy::Never);
            options.snapshot_every = snapshot_every;
            let mut engine = StorageEngine::open(&dir, options).unwrap();
            for op in &ops {
                expected.apply(op);
                engine.apply(op).unwrap();
            }
            engine.sync().unwrap();
        }
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        prop_assert_eq!(&replicas, &expected.replicas);
        prop_assert_eq!(&counters, &expected.counters);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Property 2: truncating the WAL at any byte boundary still recovers,
    /// and yields exactly a prefix of the op sequence.
    #[test]
    fn truncated_wal_recovers_a_prefix(
        raw in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()), 1..40),
        cut_seed in any::<u64>(),
    ) {
        let ops = ops_from(&raw);
        let dir = fresh_dir("truncate");
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal-0000000000000000.log");
        {
            let mut wal = WalWriter::create(wal_path.clone(), FsyncPolicy::Never).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        let full_len = std::fs::metadata(&wal_path).unwrap().len();
        let cut = cut_seed % (full_len + 1);
        {
            let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
            file.set_len(cut).unwrap();
        }

        // Raw replay yields a prefix…
        let replayed = replay(&wal_path).unwrap();
        prop_assert!(replayed.ops.len() <= ops.len());
        prop_assert_eq!(&replayed.ops[..], &ops[..replayed.ops.len()]);
        prop_assert!(replayed.valid_len <= cut);
        prop_assert_eq!(replayed.torn_tail, replayed.valid_len != cut);

        // …and full recovery applies exactly that prefix.
        let mut expected = MemoryState::new();
        for op in &ops[..replayed.ops.len()] {
            expected.apply(op);
        }
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        prop_assert_eq!(&replicas, &expected.replicas);
        prop_assert_eq!(&counters, &expected.counters);

        // The engine reopens over the truncated log and keeps working.
        let mut engine = StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
        engine.apply(&StorageOp::ClearCounters).unwrap();
        engine.sync().unwrap();
        let recovered = StorageEngine::recover_state(&dir).unwrap();
        prop_assert_eq!(recovered.wal_ops, replayed.ops.len() as u64 + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Property 3: group-commit batching is invisible to recovery. The same
    /// op sequence journaled per-op and journaled through `apply_batch` under
    /// any random batch partition recovers to identical replica and counter
    /// state (and the batched log replays op-for-op identical).
    #[test]
    fn group_commit_partition_recovers_identically_to_per_op_path(
        raw in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()), 0..120),
        cuts in vec(1usize..16, 0..24),
        snapshot_every in 0u64..40,
    ) {
        let ops = ops_from(&raw);
        let per_op_dir = fresh_dir("group-per-op");
        let batched_dir = fresh_dir("group-batched");
        {
            let mut options = StorageOptions::with_fsync(FsyncPolicy::Never);
            options.snapshot_every = snapshot_every;
            let mut engine = StorageEngine::open(&per_op_dir, options).unwrap();
            for op in &ops {
                engine.apply(op).unwrap();
            }
            engine.sync().unwrap();
        }
        {
            let mut options = StorageOptions::with_fsync(
                FsyncPolicy::group_commit(1 << 20, std::time::Duration::ZERO),
            );
            options.snapshot_every = snapshot_every;
            let mut engine = StorageEngine::open(&batched_dir, options).unwrap();
            // Partition the sequence into batches at the generated cut sizes
            // (whatever remains past the last cut is the final batch).
            let mut rest: &[crate::op::StorageOp] = &ops;
            for &cut in &cuts {
                let take = cut.min(rest.len());
                let (batch, tail) = rest.split_at(take);
                engine.apply_batch(batch.to_vec()).unwrap();
                rest = tail;
            }
            engine.apply_batch(rest.to_vec()).unwrap();
            engine.sync().unwrap();
        }
        let (expected_replicas, expected_counters) = StorageEngine::recover(&per_op_dir).unwrap();
        let (replicas, counters) = StorageEngine::recover(&batched_dir).unwrap();
        prop_assert_eq!(&replicas, &expected_replicas);
        prop_assert_eq!(&counters, &expected_counters);
        std::fs::remove_dir_all(&per_op_dir).unwrap();
        std::fs::remove_dir_all(&batched_dir).unwrap();
    }

    /// Property 4: a crash between a batch's buffered write and its covering
    /// fsync loses at most a suffix. The batch is written through
    /// `append_batch` but the file is then cut at an arbitrary byte (what a
    /// power loss may leave of the un-fsynced write); replay must yield a
    /// valid prefix of the full sequence — never a torn interior — and the
    /// engine must reopen over it and keep appending.
    #[test]
    fn crash_between_batch_write_and_fsync_loses_only_a_suffix(
        raw in vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>(), any::<u64>()), 1..60),
        synced_prefix in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let ops = ops_from(&raw);
        let dir = fresh_dir("batch-crash");
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal-0000000000000000.log");
        // A durable prefix (synced batches), then one final batch whose
        // covering fsync never happens.
        let split = (synced_prefix % (ops.len() as u64 + 1)) as usize;
        let synced_len;
        {
            let mut wal = WalWriter::create(
                wal_path.clone(),
                FsyncPolicy::group_commit(1 << 20, std::time::Duration::ZERO),
            ).unwrap();
            wal.append_batch(&ops[..split]).unwrap();
            synced_len = std::fs::metadata(&wal_path).unwrap().len();
            // The doomed batch: written, never explicitly synced again.
            for op in &ops[split..] {
                wal.append(op).unwrap();
            }
        }
        // Power loss: anything past what the covering sync made durable may
        // be gone — cut at an arbitrary byte at or beyond the synced prefix.
        let full_len = std::fs::metadata(&wal_path).unwrap().len();
        let cut = synced_len + cut_seed % (full_len - synced_len + 1);
        {
            let file = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
            file.set_len(cut).unwrap();
        }

        let replayed = replay(&wal_path).unwrap();
        // At least the synced batches survive; at most a suffix is lost.
        prop_assert!(replayed.ops.len() >= split);
        prop_assert!(replayed.ops.len() <= ops.len());
        prop_assert_eq!(&replayed.ops[..], &ops[..replayed.ops.len()]);

        // Recovery applies exactly that prefix, and the engine reopens.
        let mut expected = MemoryState::new();
        for op in &ops[..replayed.ops.len()] {
            expected.apply(op);
        }
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        prop_assert_eq!(&replicas, &expected.replicas);
        prop_assert_eq!(&counters, &expected.counters);
        let mut engine = StorageEngine::open(
            &dir,
            StorageOptions::with_fsync(FsyncPolicy::group_commit(64, std::time::Duration::ZERO)),
        ).unwrap();
        engine.apply_batch(vec![crate::op::StorageOp::ClearCounters]).unwrap();
        engine.sync().unwrap();
        let recovered = StorageEngine::recover_state(&dir).unwrap();
        prop_assert_eq!(recovered.wal_ops, replayed.ops.len() as u64 + 1);
        prop_assert!(!recovered.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
