//! The log-structured storage engine: WAL + snapshot generations + recovery.
//!
//! On-disk layout of a peer directory (all numbers are a hex *generation*):
//!
//! ```text
//! peer-dir/
//!   snapshot-0000000000000002.snap   # state image opening generation 2
//!   wal-0000000000000002.log         # ops appended since that snapshot
//!   snapshot-0000000000000003.tmp    # in-progress compaction (ignored)
//! ```
//!
//! Generation `g` means: *state = snapshot-`g` replayed, then wal-`g`
//! replayed on top*. Generation 0 has no snapshot (a fresh peer starts with
//! just `wal-0…0.log`). Compaction writes `snapshot-(g+1)` to a `.tmp` file,
//! fsyncs, renames (the atomic commit point), starts an empty `wal-(g+1)`,
//! and only then deletes generation `g` — so a crash at any point leaves
//! either generation fully recoverable.
//!
//! Recovery ([`StorageEngine::recover`] / [`StorageEngine::open`]) picks the
//! newest generation with a *valid* snapshot (generation 0 if none), replays
//! its WAL tolerating a torn final record, and reports what it found.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rdht_core::durability::DurableState;
use rdht_core::{ReplicaValue, Timestamp};
use rdht_hashing::{HashId, Key};

use crate::metrics::StorageMetrics;
use crate::op::StorageOp;
use crate::snapshot::{load_snapshot, write_snapshot};
use crate::state::{CounterSet, MemoryState, ReplicaStore};
use crate::wal::{replay, FsyncPolicy, WalWriter};

/// Tunables of a [`StorageEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageOptions {
    /// When appended WAL records are fsynced ([`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Compact (write a snapshot, start a fresh WAL) after this many ops
    /// have been appended to the current WAL. `0` disables automatic
    /// compaction ([`StorageEngine::compact`] can still be called manually).
    pub snapshot_every: u64,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            fsync: FsyncPolicy::Always,
            snapshot_every: 4096,
        }
    }
}

impl StorageOptions {
    /// Options with the given fsync policy and default compaction cadence.
    pub fn with_fsync(fsync: FsyncPolicy) -> Self {
        StorageOptions {
            fsync,
            ..StorageOptions::default()
        }
    }
}

/// A callback the engine invokes with the wall-clock duration of every
/// covering [`StorageEngine::sync`] that actually reached the WAL — the
/// hook distributed tracing hangs its `fsync` spans on without the engine
/// knowing anything about spans. Cheap to clone; invoked synchronously on
/// the syncing thread, so observers must be fast and non-blocking.
#[derive(Clone)]
pub struct SyncObserver(Arc<dyn Fn(Duration) + Send + Sync>);

impl SyncObserver {
    /// Wraps a callback.
    pub fn new(callback: impl Fn(Duration) + Send + Sync + 'static) -> Self {
        SyncObserver(Arc::new(callback))
    }

    /// Invokes the callback with one observed sync duration.
    pub fn observe(&self, elapsed: Duration) {
        (self.0)(elapsed);
    }
}

impl std::fmt::Debug for SyncObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SyncObserver(..)")
    }
}

/// Counters describing what an engine has done — used by tests, the
/// crash/restart walkthrough and the `storage` bench target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Ops appended to the WAL over this engine's lifetime.
    pub ops_appended: u64,
    /// Snapshots written by compaction.
    pub snapshots_written: u64,
    /// `sync_data` calls the WAL issued over this engine's lifetime. Under
    /// group commit this grows far slower than `ops_appended` — the ratio is
    /// the measured amortization.
    pub wal_syncs: u64,
    /// Framed bytes appended to the WAL over this engine's lifetime.
    pub wal_bytes_appended: u64,
    /// Wall time the open spent recovering the directory, in nanoseconds.
    pub recovery_duration_ns: u64,
    /// Ops replayed from the WAL at open.
    pub recovered_wal_ops: u64,
    /// Whether open had to discard a torn WAL tail.
    pub recovered_torn_tail: bool,
    /// Whether open loaded a snapshot (vs replaying from empty).
    pub recovered_from_snapshot: bool,
}

/// What [`StorageEngine::recover`] found in a peer directory.
#[derive(Clone, Debug, Default)]
pub struct RecoveredState {
    /// The recovered replica table.
    pub replicas: ReplicaStore,
    /// The recovered counter set (the durable image of the peer's VCS as of
    /// the crash; per the paper's Rule 1 a *rejoining* peer must still
    /// re-initialize its live counters indirectly, because another peer may
    /// have generated newer timestamps while this one was down).
    pub counters: CounterSet,
    /// Generation the state was recovered from.
    pub generation: u64,
    /// Ops replayed from the generation's WAL.
    pub wal_ops: u64,
    /// Whether a torn WAL tail was discarded.
    pub torn_tail: bool,
}

/// A durable peer-state engine.
///
/// Holds the materialized state (replicas + counters) and, when opened on a
/// directory, journals every applied op to a CRC-framed WAL with periodic
/// snapshot compaction. The [`DurableState`] implementation lets `rdht-core`
/// paths (replica writes, KTS counter mutations) journal through it without
/// knowing anything about files.
#[derive(Debug)]
pub struct StorageEngine {
    dir: Option<PathBuf>,
    wal: Option<WalWriter>,
    generation: u64,
    ops_in_wal: u64,
    state: MemoryState,
    options: StorageOptions,
    stats: StorageStats,
    metrics: Option<StorageMetrics>,
    sync_observer: Option<SyncObserver>,
    poison: Option<io::Error>,
}

fn generation_file(dir: &Path, prefix: &str, generation: u64, ext: &str) -> PathBuf {
    dir.join(format!("{prefix}-{generation:016x}.{ext}"))
}

/// Parses `prefix-<hex>.<ext>` names back to a generation number.
fn parse_generation(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_prefix('-')?;
    let hex = rest.strip_suffix(ext)?.strip_suffix('.')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Everything found while scanning a peer directory.
struct DirScan {
    snapshots: Vec<u64>,
    wals: Vec<u64>,
    tmp_files: Vec<PathBuf>,
}

fn scan_dir(dir: &Path) -> io::Result<DirScan> {
    let mut scan = DirScan {
        snapshots: Vec::new(),
        wals: Vec::new(),
        tmp_files: Vec::new(),
    };
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            scan.tmp_files.push(entry.path());
        } else if let Some(generation) = parse_generation(name, "snapshot", "snap") {
            scan.snapshots.push(generation);
        } else if let Some(generation) = parse_generation(name, "wal", "log") {
            scan.wals.push(generation);
        }
    }
    scan.snapshots.sort_unstable();
    scan.wals.sort_unstable();
    Ok(scan)
}

/// What [`discover`] rebuilt from a peer directory.
struct Discovered {
    state: MemoryState,
    generation: u64,
    wal_ops: u64,
    wal_valid_len: u64,
    torn_tail: bool,
    from_snapshot: bool,
}

/// Picks the newest recoverable generation and rebuilds its state.
fn discover(dir: &Path) -> io::Result<Discovered> {
    let scan = scan_dir(dir)?;
    // Try snapshots newest-first; an invalid one (torn compaction) falls
    // back to the previous generation, whose files are only deleted after a
    // newer snapshot is fully durable.
    let mut state = MemoryState::new();
    let mut generation = 0u64;
    let mut from_snapshot = false;
    for &candidate in scan.snapshots.iter().rev() {
        if let Some(loaded) = load_snapshot(&generation_file(dir, "snapshot", candidate, "snap"))? {
            state = loaded;
            generation = candidate;
            from_snapshot = true;
            break;
        }
    }
    if !from_snapshot {
        // No (valid) snapshot: the only recoverable generation is the oldest
        // WAL on disk, which for an uncompacted engine is generation 0.
        generation = scan.wals.first().copied().unwrap_or(0);
    }
    let wal_replay = replay(&generation_file(dir, "wal", generation, "log"))?;
    let wal_ops = wal_replay.ops.len() as u64;
    let wal_valid_len = wal_replay.valid_len;
    let torn_tail = wal_replay.torn_tail;
    for op in wal_replay.ops {
        state.apply_owned(op);
    }
    Ok(Discovered {
        state,
        generation,
        wal_ops,
        wal_valid_len,
        torn_tail,
        from_snapshot,
    })
}

/// Fsyncs a directory so the renames, creates and unlinks inside it are
/// durable — without this, `FsyncPolicy::Always`'s power-loss guarantee
/// would silently stop at each file's *contents*.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        // Directories cannot be opened for syncing on this platform; the
        // metadata flush is left to the OS.
        let _ = dir;
    }
    Ok(())
}

impl StorageEngine {
    /// An engine with no backing directory: state is memory-only and every
    /// journaling hook is a cheap in-memory apply. Used for peers configured
    /// without durability.
    pub fn ephemeral() -> Self {
        StorageEngine {
            dir: None,
            wal: None,
            generation: 0,
            ops_in_wal: 0,
            state: MemoryState::new(),
            options: StorageOptions::default(),
            stats: StorageStats::default(),
            metrics: None,
            sync_observer: None,
            poison: None,
        }
    }

    /// Opens (creating if needed) the engine over `dir`: recovers the newest
    /// generation, truncates any torn WAL tail, removes leftovers of older
    /// generations and interrupted compactions, and readies the WAL for
    /// appending.
    pub fn open(dir: impl Into<PathBuf>, options: StorageOptions) -> io::Result<Self> {
        let dir = dir.into();
        let recovery_started = std::time::Instant::now();
        fs::create_dir_all(&dir)?;
        let discovered = discover(&dir)?;
        let generation = discovered.generation;

        // Garbage-collect: interrupted compactions and superseded generations.
        let scan = scan_dir(&dir)?;
        for tmp in scan.tmp_files {
            let _ = fs::remove_file(tmp);
        }
        for other in scan.snapshots.into_iter().filter(|&g| g != generation) {
            let _ = fs::remove_file(generation_file(&dir, "snapshot", other, "snap"));
        }
        for other in scan.wals.into_iter().filter(|&g| g != generation) {
            let _ = fs::remove_file(generation_file(&dir, "wal", other, "log"));
        }

        let wal = WalWriter::open_after_replay(
            generation_file(&dir, "wal", generation, "log"),
            options.fsync,
            discovered.wal_valid_len,
        )?;
        // Make the WAL's directory entry (and the GC unlinks) durable before
        // acknowledging any append against this generation.
        sync_dir(&dir)?;
        let stats = StorageStats {
            recovered_wal_ops: discovered.wal_ops,
            recovered_torn_tail: discovered.torn_tail,
            recovered_from_snapshot: discovered.from_snapshot,
            recovery_duration_ns: u64::try_from(recovery_started.elapsed().as_nanos())
                .unwrap_or(u64::MAX),
            ..StorageStats::default()
        };
        Ok(StorageEngine {
            dir: Some(dir),
            wal: Some(wal),
            generation,
            ops_in_wal: discovered.wal_ops,
            state: discovered.state,
            options,
            stats,
            metrics: None,
            sync_observer: None,
            poison: None,
        })
    }

    /// Read-only recovery: rebuilds the durable state of `dir` without
    /// opening it for writing or garbage-collecting anything.
    pub fn recover_state(dir: &Path) -> io::Result<RecoveredState> {
        let discovered = discover(dir)?;
        Ok(RecoveredState {
            replicas: discovered.state.replicas,
            counters: discovered.state.counters,
            generation: discovered.generation,
            wal_ops: discovered.wal_ops,
            torn_tail: discovered.torn_tail,
        })
    }

    /// Read-only recovery returning just the two stores — the
    /// `recover(dir) -> (ReplicaStore, CounterSet)` entry point.
    pub fn recover(dir: &Path) -> io::Result<(ReplicaStore, CounterSet)> {
        let recovered = StorageEngine::recover_state(dir)?;
        Ok((recovered.replicas, recovered.counters))
    }

    /// The backing directory, if the engine is durable.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The materialized replica table.
    pub fn replicas(&self) -> &ReplicaStore {
        &self.state.replicas
    }

    /// The materialized counter set.
    pub fn counters(&self) -> &CounterSet {
        &self.state.counters
    }

    /// Work counters. `wal_syncs` and `wal_bytes_appended` fold in the live
    /// WAL's counts, so the values are current even before the next
    /// compaction rolls the writer.
    pub fn stats(&self) -> StorageStats {
        let mut stats = self.stats;
        if let Some(wal) = &self.wal {
            stats.wal_syncs += wal.syncs();
            stats.wal_bytes_appended += wal.bytes_appended();
        }
        stats
    }

    /// Attaches registry instruments: from now on every journaled operation
    /// publishes the engine's work counters into `metrics` (see
    /// [`StorageMetrics`] — the instruments mirror [`StorageEngine::stats`],
    /// they do not count separately). The recovery duration of the open that
    /// built this engine is observed once, here.
    pub fn attach_metrics(&mut self, metrics: StorageMetrics) {
        if self.stats.recovery_duration_ns > 0 {
            metrics.recovery_ns.observe(self.stats.recovery_duration_ns);
        }
        self.metrics = Some(metrics);
        self.publish_metrics();
    }

    /// The attached instruments, if any.
    pub fn metrics(&self) -> Option<&StorageMetrics> {
        self.metrics.as_ref()
    }

    /// Mirrors the current work counters into the attached instruments.
    /// Monotonic (`record_absolute`), so re-publishing is idempotent.
    fn publish_metrics(&self) {
        let Some(metrics) = &self.metrics else { return };
        let stats = self.stats();
        metrics.wal_syncs.record_absolute(stats.wal_syncs);
        metrics.ops_appended.record_absolute(stats.ops_appended);
        metrics.wal_bytes.record_absolute(stats.wal_bytes_appended);
        metrics.compactions.record_absolute(stats.snapshots_written);
    }

    /// The options this engine was opened with (normalized fsync policy).
    pub fn options(&self) -> StorageOptions {
        StorageOptions {
            fsync: self.options.fsync.normalized(),
            ..self.options
        }
    }

    /// The first I/O error a journaling hook swallowed, if any. A poisoned
    /// engine keeps serving its in-memory state but stops appending;
    /// [`StorageEngine::take_poison`] surfaces the error.
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    /// Takes the latched hook error, clearing the poison flag.
    pub fn take_poison(&mut self) -> Option<io::Error> {
        self.poison.take()
    }

    /// The latched hook error, if any, without clearing it.
    pub fn poison_error(&self) -> Option<&io::Error> {
        self.poison.as_ref()
    }

    /// Applies one op to the in-memory state and journals it. Errors from
    /// the journal leave the in-memory state applied (serving continues) —
    /// the caller decides whether to surface or latch them.
    pub fn apply(&mut self, op: &StorageOp) -> io::Result<()> {
        self.apply_owned(op.clone())
    }

    /// [`StorageEngine::apply`] for callers that own the op: the journal
    /// encodes from a borrow, then the payload moves straight into the
    /// in-memory store — no clone on the write hot path.
    pub fn apply_owned(&mut self, op: StorageOp) -> io::Result<()> {
        let mut journal = Ok(());
        if let Some(wal) = self.wal.as_mut() {
            journal = wal.append(&op);
            if journal.is_ok() {
                self.stats.ops_appended += 1;
                self.ops_in_wal += 1;
            }
        }
        self.state.apply_owned(op);
        journal?;
        if self.wal.is_some()
            && self.options.snapshot_every > 0
            && self.ops_in_wal >= self.options.snapshot_every
        {
            self.compact()?;
        }
        self.publish_metrics();
        Ok(())
    }

    /// [`StorageEngine::apply_owned`] for a whole batch: every op is framed
    /// and journaled through one buffered write ([`WalWriter::append_batch`])
    /// and — under [`FsyncPolicy::Always`] / [`FsyncPolicy::GroupCommit`] —
    /// made durable by a single covering `sync_data` before any of them is
    /// applied to the in-memory state. This is the engine half of group
    /// commit: N logical writers' ops, one fsync.
    pub fn apply_batch(&mut self, ops: Vec<StorageOp>) -> io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        if let Some(metrics) = &self.metrics {
            metrics.batch_ops.observe(ops.len() as u64);
        }
        let mut journal = Ok(());
        if let Some(wal) = self.wal.as_mut() {
            journal = wal.append_batch(&ops);
            if journal.is_ok() {
                self.stats.ops_appended += ops.len() as u64;
                self.ops_in_wal += ops.len() as u64;
            }
        }
        for op in ops {
            self.state.apply_owned(op);
        }
        journal?;
        if self.wal.is_some()
            && self.options.snapshot_every > 0
            && self.ops_in_wal >= self.options.snapshot_every
        {
            self.compact()?;
        }
        self.publish_metrics();
        Ok(())
    }

    /// Installs the callback [`sync`](StorageEngine::sync) reports its
    /// duration to — how the tracing layer hangs a covering-fsync span on
    /// the engine without the engine depending on any span machinery.
    pub fn set_sync_observer(&mut self, observer: SyncObserver) {
        self.sync_observer = Some(observer);
    }

    /// Forces everything journaled so far to stable storage — the covering
    /// sync of a group-commit batch boundary. Free when nothing is pending.
    pub fn sync(&mut self) -> io::Result<()> {
        let result = match self.wal.as_mut() {
            Some(wal) => {
                let started = std::time::Instant::now();
                let result = wal.sync();
                if let Some(observer) = &self.sync_observer {
                    observer.observe(started.elapsed());
                }
                result
            }
            None => Ok(()),
        };
        self.publish_metrics();
        result
    }

    /// Writes a snapshot of the current state as generation `g+1`, starts a
    /// fresh WAL for it, and deletes generation `g`.
    pub fn compact(&mut self) -> io::Result<()> {
        let Some(dir) = self.dir.clone() else {
            return Ok(());
        };
        let next = self.generation + 1;
        let tmp = generation_file(&dir, "snapshot", next, "tmp");
        let fin = generation_file(&dir, "snapshot", next, "snap");
        write_snapshot(&tmp, &fin, next, &self.state)?;
        let wal = WalWriter::create(
            generation_file(&dir, "wal", next, "log"),
            self.options.fsync,
        )?;
        // Persist the snapshot rename and the WAL creation *before* deleting
        // the old generation — otherwise a power loss could surface a
        // directory where only the unlinks survived.
        sync_dir(&dir)?;
        if let Some(old) = self.wal.take() {
            // The retiring writer's counts would vanish with it.
            self.stats.wal_syncs += old.syncs();
            self.stats.wal_bytes_appended += old.bytes_appended();
        }
        self.wal = Some(wal);
        // The new generation is durable; the old one can go.
        let _ = fs::remove_file(generation_file(&dir, "wal", self.generation, "log"));
        let _ = fs::remove_file(generation_file(&dir, "snapshot", self.generation, "snap"));
        self.generation = next;
        self.ops_in_wal = 0;
        self.stats.snapshots_written += 1;
        self.publish_metrics();
        Ok(())
    }

    fn apply_latching(&mut self, op: StorageOp) {
        if self.poison.is_some() {
            // Already poisoned: keep the in-memory state correct, skip the
            // journal (it is in an unknown state).
            self.state.apply_owned(op);
            return;
        }
        if let Err(error) = self.apply_owned(op) {
            self.poison = Some(error);
        }
    }
}

impl DurableState for StorageEngine {
    fn record_replica_put(&mut self, hash: HashId, key: &Key, value: &ReplicaValue, position: u64) {
        self.apply_latching(StorageOp::PutReplica {
            hash,
            key: key.clone(),
            payload: value.data.clone(),
            stamp: value.timestamp,
            position,
        });
    }

    fn record_replica_remove(&mut self, hash: HashId, key: &Key) {
        self.apply_latching(StorageOp::RemoveReplica {
            hash,
            key: key.clone(),
        });
    }

    fn record_counter_set(&mut self, key: &Key, value: Timestamp) {
        self.apply_latching(StorageOp::SetCounter {
            key: key.clone(),
            value,
        });
    }

    fn record_counter_remove(&mut self, key: &Key) {
        self.apply_latching(StorageOp::RemoveCounter { key: key.clone() });
    }

    fn record_counters_cleared(&mut self) {
        self.apply_latching(StorageOp::ClearCounters);
    }

    fn record_range_transfer(&mut self, start: u64, end: u64) {
        self.apply_latching(StorageOp::TransferRange { start, end });
    }

    fn sync_to_durable(&mut self) {
        if self.poison.is_none() {
            if let Err(error) = self.sync() {
                self.poison = Some(error);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rdht-engine-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn put(i: u64) -> StorageOp {
        StorageOp::PutReplica {
            hash: HashId((i % 3) as u32),
            key: Key::new(format!("key-{}", i % 17)),
            payload: vec![i as u8; 24],
            stamp: Timestamp(i + 1),
            position: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    #[test]
    fn sync_observer_sees_every_wal_sync_and_nothing_ephemeral() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let dir = temp_dir("sync-observer");
        let observed = Arc::new(AtomicU64::new(0));
        {
            let mut engine =
                StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
            let count = Arc::clone(&observed);
            engine.set_sync_observer(SyncObserver::new(move |_| {
                // relaxed: single-threaded test; counted, not ordered.
                count.fetch_add(1, Ordering::Relaxed);
            }));
            engine.apply(&put(0)).unwrap();
            engine.sync().unwrap();
            engine.sync().unwrap();
        }
        // relaxed: single-threaded test; counted, not ordered.
        assert_eq!(observed.load(Ordering::Relaxed), 2);

        // An ephemeral engine has no WAL, so its syncs observe nothing.
        let mut ephemeral = StorageEngine::ephemeral();
        let count = Arc::clone(&observed);
        ephemeral.set_sync_observer(SyncObserver::new(move |_| {
            // relaxed: single-threaded test; counted, not ordered.
            count.fetch_add(1, Ordering::Relaxed);
        }));
        ephemeral.sync().unwrap();
        // relaxed: single-threaded test; counted, not ordered.
        assert_eq!(observed.load(Ordering::Relaxed), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_apply_reopen_recovers_identical_state() {
        let dir = temp_dir("reopen");
        let expected = {
            let mut engine =
                StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
            for i in 0..200 {
                engine.apply(&put(i)).unwrap();
            }
            engine
                .apply(&StorageOp::SetCounter {
                    key: Key::new("key-3"),
                    value: Timestamp(55),
                })
                .unwrap();
            engine.sync().unwrap();
            engine.state.clone()
        };
        let engine = StorageEngine::open(&dir, StorageOptions::default()).unwrap();
        assert_eq!(engine.state, expected);
        assert_eq!(engine.stats().recovered_wal_ops, 201);
        assert!(!engine.stats().recovered_torn_tail);

        // Read-only recovery agrees.
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        assert_eq!(replicas, expected.replicas);
        assert_eq!(counters, expected.counters);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_state_and_prunes_old_generation() {
        let dir = temp_dir("compact");
        let mut options = StorageOptions::with_fsync(FsyncPolicy::Never);
        options.snapshot_every = 64;
        let expected = {
            let mut engine = StorageEngine::open(&dir, options).unwrap();
            for i in 0..300 {
                engine.apply(&put(i)).unwrap();
            }
            assert!(engine.stats().snapshots_written >= 4);
            engine.sync().unwrap();
            engine.state.clone()
        };
        // Only one generation remains on disk.
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.snapshots.len(), 1);
        assert_eq!(scan.wals.len(), 1);
        assert!(scan.tmp_files.is_empty());

        let engine = StorageEngine::open(&dir, StorageOptions::default()).unwrap();
        assert_eq!(engine.state, expected);
        assert!(engine.stats().recovered_from_snapshot);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_recovers_the_prefix() {
        let dir = temp_dir("torn-tail");
        {
            let mut engine =
                StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
            for i in 0..50 {
                engine.apply(&put(i)).unwrap();
            }
            engine.sync().unwrap();
        }
        // Tear the last record.
        let wal_path = generation_file(&dir, "wal", 0, "log");
        let len = fs::metadata(&wal_path).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let engine = StorageEngine::open(&dir, StorageOptions::default()).unwrap();
        assert_eq!(engine.stats().recovered_wal_ops, 49);
        assert!(engine.stats().recovered_torn_tail);

        // The engine is usable after the truncation: append and re-recover.
        let mut engine = engine;
        engine.apply(&put(1000)).unwrap();
        engine.sync().unwrap();
        let recovered = StorageEngine::recover_state(&dir).unwrap();
        assert_eq!(recovered.wal_ops, 50);
        assert!(!recovered.torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_compaction_falls_back_to_previous_generation() {
        let dir = temp_dir("interrupted-compaction");
        let expected = {
            let mut engine =
                StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
            for i in 0..40 {
                engine.apply(&put(i)).unwrap();
            }
            engine.sync().unwrap();
            engine.state.clone()
        };
        // Fake a crash mid-compaction: a *torn* snapshot for generation 1
        // renamed into place, but no wal-1 and generation 0 not yet deleted.
        let tmp = generation_file(&dir, "snapshot", 1, "tmp");
        let fin = generation_file(&dir, "snapshot", 1, "snap");
        write_snapshot(&tmp, &fin, 1, &expected).unwrap();
        let len = fs::metadata(&fin).unwrap().len();
        let file = fs::OpenOptions::new().write(true).open(&fin).unwrap();
        file.set_len(len / 2).unwrap();
        drop(file);

        let engine = StorageEngine::open(&dir, StorageOptions::default()).unwrap();
        assert_eq!(engine.state, expected, "fell back to generation 0");
        assert_eq!(engine.generation(), 0);
        // The torn snapshot was garbage-collected.
        assert!(!fin.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Group commit through the engine: batches recover to the same state as
    /// per-op application, and the sync counter proves the amortization (one
    /// covering `sync_data` per batch, not per op).
    #[test]
    fn group_commit_batches_recover_identically_and_amortize_syncs() {
        let per_op_dir = temp_dir("group-commit-per-op");
        let batched_dir = temp_dir("group-commit-batched");
        let ops: Vec<StorageOp> = (0..96).map(put).collect();

        let expected = {
            let mut options = StorageOptions::with_fsync(FsyncPolicy::Always);
            options.snapshot_every = 0;
            let mut engine = StorageEngine::open(&per_op_dir, options).unwrap();
            for op in &ops {
                engine.apply(op).unwrap();
            }
            assert_eq!(engine.stats().wal_syncs, 96, "Always pays a sync per op");
            engine.state.clone()
        };
        {
            let mut options = StorageOptions::with_fsync(FsyncPolicy::group_commit(
                64,
                std::time::Duration::from_micros(100),
            ));
            options.snapshot_every = 0;
            let mut engine = StorageEngine::open(&batched_dir, options).unwrap();
            for batch in ops.chunks(8) {
                engine.apply_batch(batch.to_vec()).unwrap();
            }
            assert_eq!(engine.state, expected);
            assert_eq!(engine.stats().ops_appended, 96);
            assert_eq!(
                engine.stats().wal_syncs,
                12,
                "one covering sync per 8-op batch"
            );
        }
        let (replicas, counters) = StorageEngine::recover(&batched_dir).unwrap();
        assert_eq!(replicas, expected.replicas);
        assert_eq!(counters, expected.counters);
        fs::remove_dir_all(&per_op_dir).unwrap();
        fs::remove_dir_all(&batched_dir).unwrap();
    }

    /// Compaction mid-batch keeps every op of the batch durable: the ops
    /// already applied land in the fsynced snapshot, the rest in the fresh
    /// WAL, and the retiring writer's sync count is not lost.
    #[test]
    fn group_commit_batch_across_a_compaction_boundary_stays_durable() {
        let dir = temp_dir("group-commit-compaction");
        let ops: Vec<StorageOp> = (0..50).map(put).collect();
        let mut expected = MemoryState::new();
        for op in &ops {
            expected.apply(op);
        }
        {
            let mut options = StorageOptions::with_fsync(FsyncPolicy::group_commit(
                256,
                std::time::Duration::ZERO,
            ));
            options.snapshot_every = 16; // several compactions inside batches
            let mut engine = StorageEngine::open(&dir, options).unwrap();
            for batch in ops.chunks(12) {
                engine.apply_batch(batch.to_vec()).unwrap();
                engine.sync().unwrap();
            }
            assert!(engine.stats().snapshots_written >= 2);
        }
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        assert_eq!(replicas, expected.replicas);
        assert_eq!(counters, expected.counters);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ephemeral_engine_applies_without_files() {
        let mut engine = StorageEngine::ephemeral();
        engine.apply(&put(1)).unwrap();
        engine.apply(&put(2)).unwrap();
        assert_eq!(engine.replicas().len(), 2);
        assert_eq!(engine.stats().ops_appended, 0);
        assert!(engine.dir().is_none());
        engine.sync().unwrap();
    }

    #[test]
    fn durable_state_hooks_journal_through_the_engine() {
        let dir = temp_dir("hooks");
        {
            let mut engine =
                StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
            let key = Key::new("doc");
            let value = ReplicaValue::new(b"payload".to_vec(), Timestamp(7));
            engine.record_replica_put(HashId(2), &key, &value, 12345);
            engine.record_counter_set(&key, Timestamp(7));
            engine.sync_to_durable();
            assert!(!engine.is_poisoned());
        }
        let (replicas, counters) = StorageEngine::recover(&dir).unwrap();
        let key = Key::new("doc");
        let stored = replicas.get(HashId(2), &key).expect("replica recovered");
        assert_eq!(stored.payload, b"payload");
        assert_eq!(stored.stamp, Timestamp(7));
        assert_eq!(stored.position, 12345);
        assert_eq!(counters.value(&key), Some(Timestamp(7)));
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The attached registry instruments always agree with `stats()` — the
    /// satellite-1 unification: one count, one canonical name.
    #[test]
    fn attached_metrics_mirror_stats() {
        let dir = temp_dir("metrics");
        let registry = rdht_metrics::Registry::new();
        let mut options =
            StorageOptions::with_fsync(FsyncPolicy::group_commit(64, std::time::Duration::ZERO));
        options.snapshot_every = 32; // force compactions mid-run
        let mut engine = StorageEngine::open(&dir, options).unwrap();
        engine.attach_metrics(crate::metrics::StorageMetrics::register(
            &registry,
            &[("peer", "7")],
        ));
        let ops: Vec<StorageOp> = (0..80).map(put).collect();
        for batch in ops.chunks(8) {
            engine.apply_batch(batch.to_vec()).unwrap();
            engine.sync().unwrap();
        }
        let stats = engine.stats();
        let metrics = engine.metrics().unwrap();
        assert!(stats.snapshots_written >= 2);
        assert_eq!(metrics.wal_syncs.get(), stats.wal_syncs);
        assert_eq!(metrics.ops_appended.get(), stats.ops_appended);
        assert_eq!(metrics.wal_bytes.get(), stats.wal_bytes_appended);
        assert_eq!(metrics.compactions.get(), stats.snapshots_written);
        assert_eq!(metrics.batch_ops.count(), 10, "one observation per batch");
        let text = rdht_metrics::encode(&registry);
        assert!(
            text.contains("storage_wal_syncs_total{peer=\"7\"}"),
            "{text}"
        );
        assert!(
            text.contains("storage_batch_ops_bucket{peer=\"7\",le=\"8\"} 10"),
            "{text}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transfer_range_is_journaled_and_replayed() {
        let dir = temp_dir("transfer");
        {
            let mut engine =
                StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap();
            engine
                .apply(&StorageOp::PutReplica {
                    hash: HashId(0),
                    key: Key::new("stays"),
                    payload: b"a".to_vec(),
                    stamp: Timestamp(1),
                    position: 100,
                })
                .unwrap();
            engine
                .apply(&StorageOp::PutReplica {
                    hash: HashId(0),
                    key: Key::new("moves"),
                    payload: b"b".to_vec(),
                    stamp: Timestamp(2),
                    position: 5000,
                })
                .unwrap();
            engine.record_range_transfer(4000, 6000);
            engine.sync().unwrap();
        }
        let (replicas, _) = StorageEngine::recover(&dir).unwrap();
        assert_eq!(replicas.len(), 1);
        assert!(replicas.get(HashId(0), &Key::new("stays")).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }
}
