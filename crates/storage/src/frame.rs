//! Record framing shared by the write-ahead log and the snapshot files.
//!
//! Every record is laid out as
//!
//! ```text
//! +----------------+----------------+------------------+
//! | len: u32 LE    | crc: u32 LE    | payload (len B)  |
//! +----------------+----------------+------------------+
//! ```
//!
//! where `crc` is the CRC-32 of the payload. A reader walks records from the
//! start of the file and stops at the first frame that does not check out —
//! a short header, a length running past the end of the file, an absurd
//! length, or a checksum mismatch. Everything before the stop point is a
//! *valid prefix*; everything after is a torn tail (the crash interrupted an
//! append) or corruption, and is discarded by truncating the file back to
//! the prefix before appending again.

use crate::crc::crc32;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single record's payload. Anything larger than this in a
/// length field is treated as corruption rather than attempted as an
/// allocation (a torn header can otherwise claim a 4 GiB record).
pub const MAX_PAYLOAD_LEN: u32 = 1 << 26; // 64 MiB

/// Appends one framed record to `out`.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_PAYLOAD_LEN as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Seals a frame encoded in place: the caller reserved
/// [`FRAME_HEADER_LEN`] zero bytes at the front of `buf` and encoded the
/// payload after them; this backfills `len` and `crc` over the reservation.
/// Same bytes as [`append_frame`], without the intermediate copy.
pub fn seal_frame(buf: &mut [u8]) {
    debug_assert!(buf.len() >= FRAME_HEADER_LEN);
    let payload_len = buf.len() - FRAME_HEADER_LEN;
    debug_assert!(payload_len <= MAX_PAYLOAD_LEN as usize);
    let crc = crc32(&buf[FRAME_HEADER_LEN..]);
    buf[..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
}

/// Walks the framed records of `buf` from the front.
///
/// Returns the payload slices of every valid record, the byte length of the
/// valid prefix, and whether anything (a torn tail or corruption) was found
/// after it.
pub fn read_frames(buf: &[u8]) -> (Vec<&[u8]>, usize, bool) {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    while buf.len() - offset >= FRAME_HEADER_LEN {
        let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_LEN {
            return (payloads, offset, true);
        }
        let body_start = offset + FRAME_HEADER_LEN;
        let body_end = match body_start.checked_add(len as usize) {
            Some(end) if end <= buf.len() => end,
            _ => return (payloads, offset, true),
        };
        let payload = &buf[body_start..body_end];
        if crc32(payload) != crc {
            return (payloads, offset, true);
        }
        payloads.push(payload);
        offset = body_end;
    }
    let torn = offset != buf.len();
    (payloads, offset, torn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_of_several_records() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"third record");
        let (payloads, valid, torn) = read_frames(&buf);
        assert_eq!(
            payloads,
            vec![&b"first"[..], &b""[..], &b"third record"[..]]
        );
        assert_eq!(valid, buf.len());
        assert!(!torn);
    }

    #[test]
    fn seal_frame_matches_append_frame() {
        let payload = b"some payload bytes";
        let mut appended = Vec::new();
        append_frame(&mut appended, payload);
        let mut sealed = vec![0u8; FRAME_HEADER_LEN];
        sealed.extend_from_slice(payload);
        seal_frame(&mut sealed);
        assert_eq!(sealed, appended);
    }

    #[test]
    fn truncation_anywhere_yields_a_prefix() {
        let mut buf = Vec::new();
        for i in 0..10u8 {
            append_frame(&mut buf, &[i; 7]);
        }
        let record_len = FRAME_HEADER_LEN + 7;
        for cut in 0..buf.len() {
            let (payloads, valid, torn) = read_frames(&buf[..cut]);
            assert_eq!(payloads.len(), cut / record_len);
            assert_eq!(valid, (cut / record_len) * record_len);
            assert_eq!(torn, cut % record_len != 0);
        }
    }

    #[test]
    fn corrupt_byte_stops_the_walk_at_the_previous_record() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"good");
        append_frame(&mut buf, b"bad");
        let record_one_len = FRAME_HEADER_LEN + 4;
        buf[record_one_len + FRAME_HEADER_LEN] ^= 0xff; // flip a payload byte of record 2
        let (payloads, valid, torn) = read_frames(&buf);
        assert_eq!(payloads, vec![&b"good"[..]]);
        assert_eq!(valid, record_one_len);
        assert!(torn);
    }

    #[test]
    fn absurd_length_field_is_corruption_not_an_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let (payloads, valid, torn) = read_frames(&buf);
        assert!(payloads.is_empty());
        assert_eq!(valid, 0);
        assert!(torn);
    }
}
