//! The materialized peer state a journal rebuilds: replicas and counters.
//!
//! [`MemoryState::apply`] is the single definition of what each
//! [`StorageOp`] *means*. The engine routes every accepted mutation through
//! it before journaling, and recovery routes every replayed op through it —
//! so the in-memory state and the recovered state can only agree.

use std::collections::BTreeMap;

use rdht_core::{ReplicaValue, Timestamp};
use rdht_hashing::{HashId, Key};

use crate::op::StorageOp;

/// One durable replica: payload, stamp and ring position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredReplica {
    /// Application payload.
    pub payload: Vec<u8>,
    /// Ordering stamp (a KTS timestamp).
    pub stamp: Timestamp,
    /// Ring position of the key under the hash function the replica is
    /// stored with; drives [`StorageOp::TransferRange`] replay.
    pub position: u64,
}

impl StoredReplica {
    /// View as the core [`ReplicaValue`] (clones the payload).
    pub fn to_replica_value(&self) -> ReplicaValue {
        ReplicaValue::new(self.payload.clone(), self.stamp)
    }
}

/// The durable replica table of one peer: `(hash, key) -> replica`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplicaStore {
    map: BTreeMap<(HashId, Key), StoredReplica>,
}

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Number of stored replicas.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no replicas.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The replica stored under `(hash, key)`, if any. (The key clone is an
    /// `Arc` refcount bump, not a byte copy.)
    pub fn get(&self, hash: HashId, key: &Key) -> Option<&StoredReplica> {
        self.map.get(&(hash, key.clone()))
    }

    /// Stores a replica unconditionally (the journal records *accepted*
    /// writes, so replay never needs to re-run the stamp comparison).
    pub fn put(&mut self, hash: HashId, key: Key, replica: StoredReplica) {
        self.map.insert((hash, key), replica);
    }

    /// Removes the replica under `(hash, key)`, returning it.
    pub fn remove(&mut self, hash: HashId, key: &Key) -> Option<StoredReplica> {
        self.map.remove(&(hash, key.clone()))
    }

    /// The greatest stamp stored for `key` under any hash function — the
    /// local contribution to an indirect counter initialization.
    pub fn max_stamp_for_key(&self, key: &Key) -> Option<Timestamp> {
        self.map
            .iter()
            .filter(|((_, k), _)| k == key)
            .map(|(_, replica)| replica.stamp)
            .max()
    }

    /// Iterates over every stored replica.
    pub fn iter(&self) -> impl Iterator<Item = (HashId, &Key, &StoredReplica)> {
        self.map
            .iter()
            .map(|((hash, key), replica)| (*hash, key, replica))
    }

    /// Removes every replica whose position falls in the half-open ring
    /// interval `(start, end]`; `start == end` denotes the whole ring. The
    /// semantics mirror `rdht_overlay::PeerStore::drain_range`, so a
    /// journaled drain replays to the same surviving set.
    pub fn remove_range(&mut self, start: u64, end: u64) -> usize {
        let covered = |position: u64| {
            if start == end {
                true
            } else if start < end {
                position > start && position <= end
            } else {
                position > start || position <= end
            }
        };
        let before = self.map.len();
        self.map.retain(|_, replica| !covered(replica.position));
        before - self.map.len()
    }
}

/// The durable per-key counters of one peer (the persistent image of its
/// Valid Counter Set).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    map: BTreeMap<Key, Timestamp>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set holds no counters.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The counter value for `key`, if present.
    pub fn value(&self, key: &Key) -> Option<Timestamp> {
        self.map.get(key).copied()
    }

    /// Sets the counter for `key` to `value`.
    pub fn set(&mut self, key: Key, value: Timestamp) {
        self.map.insert(key, value);
    }

    /// Removes the counter for `key`.
    pub fn remove(&mut self, key: &Key) -> Option<Timestamp> {
        self.map.remove(key)
    }

    /// Removes every counter.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterates over the counters.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, Timestamp)> {
        self.map.iter().map(|(k, v)| (k, *v))
    }
}

/// A peer's full durable state: replicas + counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryState {
    /// The replica table.
    pub replicas: ReplicaStore,
    /// The counter set.
    pub counters: CounterSet,
}

impl MemoryState {
    /// An empty state.
    pub fn new() -> Self {
        MemoryState::default()
    }

    /// Applies one op by value, moving its payload straight into the store —
    /// the allocation-free path for callers that own the op (the engine's
    /// journaling hooks, WAL replay). Semantics identical to
    /// [`MemoryState::apply`].
    pub fn apply_owned(&mut self, op: StorageOp) {
        match op {
            StorageOp::PutReplica {
                hash,
                key,
                payload,
                stamp,
                position,
            } => self.replicas.put(
                hash,
                key,
                StoredReplica {
                    payload,
                    stamp,
                    position,
                },
            ),
            StorageOp::SetCounter { key, value } => self.counters.set(key, value),
            // The remaining variants carry no bulk data (keys are Arc-backed,
            // cloning is a refcount bump): share the borrowed path.
            other => self.apply(&other),
        }
    }

    /// Applies one op — the shared semantics of journaling and replay.
    pub fn apply(&mut self, op: &StorageOp) {
        match op {
            StorageOp::PutReplica {
                hash,
                key,
                payload,
                stamp,
                position,
            } => self.replicas.put(
                *hash,
                key.clone(),
                StoredReplica {
                    payload: payload.clone(),
                    stamp: *stamp,
                    position: *position,
                },
            ),
            StorageOp::RemoveReplica { hash, key } => {
                self.replicas.remove(*hash, key);
            }
            StorageOp::SetCounter { key, value } => self.counters.set(key.clone(), *value),
            StorageOp::RemoveCounter { key } => {
                self.counters.remove(key);
            }
            StorageOp::ClearCounters => self.counters.clear(),
            StorageOp::TransferRange { start, end } => {
                self.replicas.remove_range(*start, *end);
            }
        }
    }

    /// The ops that rebuild this state from empty, in a deterministic order
    /// — the body of a snapshot.
    pub fn to_ops(&self) -> Vec<StorageOp> {
        let mut ops = Vec::with_capacity(self.replicas.len() + self.counters.len());
        for (hash, key, replica) in self.replicas.iter() {
            ops.push(StorageOp::PutReplica {
                hash,
                key: key.clone(),
                payload: replica.payload.clone(),
                stamp: replica.stamp,
                position: replica.position,
            });
        }
        for (key, value) in self.counters.iter() {
            ops.push(StorageOp::SetCounter {
                key: key.clone(),
                value,
            });
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(stamp: u64, position: u64) -> StoredReplica {
        StoredReplica {
            payload: vec![stamp as u8],
            stamp: Timestamp(stamp),
            position,
        }
    }

    #[test]
    fn apply_put_remove_and_counters() {
        let mut state = MemoryState::new();
        let k = Key::new("doc");
        state.apply(&StorageOp::PutReplica {
            hash: HashId(0),
            key: k.clone(),
            payload: b"v1".to_vec(),
            stamp: Timestamp(1),
            position: 10,
        });
        state.apply(&StorageOp::SetCounter {
            key: k.clone(),
            value: Timestamp(1),
        });
        assert_eq!(state.replicas.len(), 1);
        assert_eq!(state.counters.value(&k), Some(Timestamp(1)));
        state.apply(&StorageOp::RemoveReplica {
            hash: HashId(0),
            key: k.clone(),
        });
        state.apply(&StorageOp::RemoveCounter { key: k.clone() });
        assert!(state.replicas.is_empty());
        assert!(state.counters.is_empty());
    }

    #[test]
    fn transfer_range_matches_drain_semantics() {
        let mut store = ReplicaStore::new();
        store.put(HashId(0), Key::new("a"), replica(1, 100));
        store.put(HashId(0), Key::new("b"), replica(2, 200));
        store.put(HashId(0), Key::new("c"), replica(3, 300));
        assert_eq!(store.clone().remove_range(150, 250), 1);
        // Wrapped interval.
        assert_eq!(store.clone().remove_range(250, 150), 2);
        // Degenerate interval drains everything.
        assert_eq!(store.clone().remove_range(7, 7), 3);
        // Exclusive start, inclusive end.
        assert_eq!(store.clone().remove_range(100, 200), 1);
    }

    #[test]
    fn max_stamp_spans_hash_functions() {
        let mut store = ReplicaStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), replica(5, 1));
        store.put(HashId(3), k.clone(), replica(12, 2));
        store.put(HashId(0), Key::new("other"), replica(99, 3));
        assert_eq!(store.max_stamp_for_key(&k), Some(Timestamp(12)));
        assert_eq!(store.max_stamp_for_key(&Key::new("missing")), None);
    }

    #[test]
    fn to_ops_rebuilds_the_state() {
        let mut state = MemoryState::new();
        let ops = vec![
            StorageOp::PutReplica {
                hash: HashId(1),
                key: Key::new("x"),
                payload: b"one".to_vec(),
                stamp: Timestamp(4),
                position: 77,
            },
            StorageOp::SetCounter {
                key: Key::new("x"),
                value: Timestamp(4),
            },
            StorageOp::PutReplica {
                hash: HashId(2),
                key: Key::new("y"),
                payload: b"two".to_vec(),
                stamp: Timestamp(9),
                position: 12,
            },
        ];
        for op in &ops {
            state.apply(op);
        }
        let mut rebuilt = MemoryState::new();
        for op in state.to_ops() {
            rebuilt.apply(&op);
        }
        assert_eq!(rebuilt, state);
    }
}
