//! The append-only write-ahead log.
//!
//! A WAL file is a sequence of CRC-framed [`StorageOp`] records
//! ([`crate::frame`]). Appending is buffered through a scratch `Vec` (one
//! `write_all` per op, no intermediate allocation per field) and flushed to
//! stable storage according to the [`FsyncPolicy`].
//!
//! Replay walks the frames from the front and stops at the first record that
//! fails its checksum or decodes to garbage: everything before it is the
//! recovered prefix, everything after is a torn tail from an interrupted
//! append (or corruption) and is truncated away before the log is appended
//! to again.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::frame::{read_frames, seal_frame, FRAME_HEADER_LEN};
use crate::op::StorageOp;

/// When appended records are `fsync`ed to stable storage.
///
/// The knob exists so the durability *tax* can be quantified (see the
/// `storage` bench target): `Always` survives power loss at every op,
/// `EveryN` bounds the loss window to `n` ops, `Never` leaves flushing to
/// the OS page cache (process-crash-safe, power-loss-unsafe).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended op.
    #[default]
    Always,
    /// `fsync` after every `n` appended ops (and on explicit `sync`).
    EveryN(u64),
    /// Never `fsync`; the OS flushes when it pleases.
    Never,
}

/// Result of replaying one WAL file.
#[derive(Clone, Debug, Default)]
pub struct WalReplay {
    /// The decoded ops of the valid prefix, in append order.
    pub ops: Vec<StorageOp>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Whether bytes after the valid prefix had to be discarded (torn final
    /// record or corruption).
    pub torn_tail: bool,
}

/// Replays `path`. A missing file replays as empty (a fresh peer).
pub fn replay(path: &Path) -> io::Result<WalReplay> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut buf)?;
        }
        Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(error) => return Err(error),
    }
    let (payloads, mut valid_len, mut torn) = read_frames(&buf);
    let mut ops = Vec::with_capacity(payloads.len());
    for payload in payloads {
        match StorageOp::decode(payload) {
            Some(op) => ops.push(op),
            None => {
                // A frame that checksums but does not decode: corruption (or
                // a future op tag). Keep the prefix before it.
                torn = true;
                valid_len = ops
                    .iter()
                    .map(|op| op.encode_to_vec().len() + crate::frame::FRAME_HEADER_LEN)
                    .sum();
                break;
            }
        }
    }
    Ok(WalReplay {
        ops,
        valid_len: valid_len as u64,
        torn_tail: torn,
    })
}

/// The appending half of a WAL.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    appends_since_sync: u64,
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Creates a fresh, empty WAL at `path` (truncating anything there).
    pub fn create(path: PathBuf, policy: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path,
            policy,
            appends_since_sync: 0,
            scratch: Vec::new(),
        })
    }

    /// Opens an existing WAL for appending after a replay: the file is
    /// truncated to `valid_len` first, discarding any torn tail, so the next
    /// append starts at a record boundary.
    pub fn open_after_replay(
        path: PathBuf,
        policy: FsyncPolicy,
        valid_len: u64,
    ) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        // In append mode every write lands at the (truncated) end of file.
        file.set_len(valid_len)?;
        Ok(WalWriter {
            file,
            path,
            policy,
            appends_since_sync: 0,
            scratch: Vec::new(),
        })
    }

    /// The file path of this WAL.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one framed op and applies the fsync policy. The record is
    /// framed in place in the reused scratch buffer (header reserved up
    /// front, sealed after encoding) — no per-append allocation.
    pub fn append(&mut self, op: &StorageOp) -> io::Result<()> {
        self.scratch.clear();
        self.scratch.resize(FRAME_HEADER_LEN, 0);
        op.encode(&mut self.scratch);
        seal_frame(&mut self.scratch);
        self.file.write_all(&self.scratch)?;
        self.appends_since_sync += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if n > 0 && self.appends_since_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdht_core::Timestamp;
    use rdht_hashing::{HashId, Key};

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("rdht-wal-test-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_ops(n: u64) -> Vec<StorageOp> {
        (0..n)
            .map(|i| StorageOp::PutReplica {
                hash: HashId((i % 5) as u32),
                key: Key::new(format!("key-{i}")),
                payload: vec![i as u8; 9],
                stamp: Timestamp(i + 1),
                position: i * 1000,
            })
            .collect()
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("round-trip");
        let ops = sample_ops(20);
        {
            let mut wal = WalWriter::create(path.clone(), FsyncPolicy::EveryN(4)).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops, ops);
        assert!(!replayed.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_wal_replays_empty() {
        let replayed = replay(Path::new("/nonexistent/definitely/missing.log")).unwrap();
        assert!(replayed.ops.is_empty());
        assert!(!replayed.torn_tail);
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_reopen() {
        let path = temp_path("torn");
        let ops = sample_ops(10);
        {
            let mut wal = WalWriter::create(path.clone(), FsyncPolicy::Never).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the final record: chop 3 bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops, ops[..9].to_vec());
        assert!(replayed.torn_tail);

        // Re-open for append: the torn bytes are discarded and a fresh
        // append lands on a record boundary.
        {
            let mut wal =
                WalWriter::open_after_replay(path.clone(), FsyncPolicy::Always, replayed.valid_len)
                    .unwrap();
            wal.append(&StorageOp::ClearCounters).unwrap();
        }
        let after = replay(&path).unwrap();
        assert_eq!(after.ops.len(), 10);
        assert_eq!(after.ops[9], StorageOp::ClearCounters);
        assert!(!after.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }
}
