//! The append-only write-ahead log.
//!
//! A WAL file is a sequence of CRC-framed [`StorageOp`] records
//! ([`crate::frame`]). Appending is buffered through a scratch `Vec` (one
//! `write_all` per op, no intermediate allocation per field) and flushed to
//! stable storage according to the [`FsyncPolicy`]. [`WalWriter::append_batch`]
//! frames a whole group of ops into one `write_all` and covers them with a
//! single `sync_data` — the group-commit write path.
//!
//! Replay walks the frames from the front and stops at the first record that
//! fails its checksum or decodes to garbage: everything before it is the
//! recovered prefix, everything after is a torn tail from an interrupted
//! append (or corruption) and is truncated away before the log is appended
//! to again.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::frame::{read_frames, seal_frame, FRAME_HEADER_LEN};
use crate::op::StorageOp;

/// When appended records are `fsync`ed to stable storage.
///
/// The knob exists so the durability *tax* can be quantified (see the
/// `storage` bench target): `Always` survives power loss at every op,
/// `EveryN` bounds the loss window to `n` ops, `GroupCommit` amortizes one
/// fsync over every op of a batch while still acknowledging each op only
/// after its covering sync, `Never` leaves flushing to the OS page cache
/// (process-crash-safe, power-loss-unsafe).
///
/// # Invariants
///
/// `EveryN(0)` and `GroupCommit { max_batch: 0, .. }` are degenerate — taken
/// literally they would never trigger a sync, silently downgrading the
/// policy to `Never`. Both are **normalized to `Always`** wherever a policy
/// enters the write path ([`FsyncPolicy::normalized`], applied by
/// [`WalWriter::create`] / [`WalWriter::open_after_replay`]): the zero case
/// reads as "no batching", and the safe meaning of "no batching" is a sync
/// per op, never no sync at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended op.
    #[default]
    Always,
    /// `fsync` after every `n` appended ops (and on explicit `sync`).
    /// `n == 0` is normalized to [`FsyncPolicy::Always`].
    EveryN(u64),
    /// Group commit: individual appends are *not* synced — the caller
    /// assembles batches and issues one covering [`WalWriter::sync`] at each
    /// batch boundary (a batched append through
    /// [`WalWriter::append_batch`] syncs itself once at its end). Durability
    /// must be acknowledged per op only after the covering sync.
    ///
    /// `max_batch` is a safety bound: should more than `max_batch` appends
    /// accumulate without an explicit sync, the writer forces one.
    /// `max_delay` is advisory to the batching layer (how long a commit
    /// leader may wait for followers to arrive); the writer itself never
    /// sleeps. `max_batch == 0` is normalized to [`FsyncPolicy::Always`].
    GroupCommit {
        /// Most appends one covering sync may span.
        max_batch: u64,
        /// Longest a batching layer should wait to fill a batch.
        max_delay: Duration,
    },
    /// Never `fsync`; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// A group-commit policy, normalized (`max_batch == 0` becomes
    /// [`FsyncPolicy::Always`]).
    pub fn group_commit(max_batch: u64, max_delay: Duration) -> Self {
        FsyncPolicy::GroupCommit {
            max_batch,
            max_delay,
        }
        .normalized()
    }

    /// Replaces the degenerate zero-bound variants (`EveryN(0)`,
    /// `GroupCommit { max_batch: 0, .. }`) with [`FsyncPolicy::Always`] —
    /// taken literally they would never sync, which is a silent `Never`.
    pub fn normalized(self) -> Self {
        match self {
            FsyncPolicy::EveryN(0) | FsyncPolicy::GroupCommit { max_batch: 0, .. } => {
                FsyncPolicy::Always
            }
            other => other,
        }
    }

    /// The batching parameters when this policy is group commit: the caller
    /// should assemble batches up to `max_batch` ops / `max_delay` of
    /// waiting, and issue one covering sync per batch.
    pub fn batching(self) -> Option<(u64, Duration)> {
        match self.normalized() {
            FsyncPolicy::GroupCommit {
                max_batch,
                max_delay,
            } => Some((max_batch, max_delay)),
            _ => None,
        }
    }
}

/// Result of replaying one WAL file.
#[derive(Clone, Debug, Default)]
pub struct WalReplay {
    /// The decoded ops of the valid prefix, in append order.
    pub ops: Vec<StorageOp>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Whether bytes after the valid prefix had to be discarded (torn final
    /// record or corruption).
    pub torn_tail: bool,
}

/// Replays `path`. A missing file replays as empty (a fresh peer).
pub fn replay(path: &Path) -> io::Result<WalReplay> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut file) => {
            file.read_to_end(&mut buf)?;
        }
        Err(error) if error.kind() == io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(error) => return Err(error),
    }
    let (payloads, mut valid_len, mut torn) = read_frames(&buf);
    let mut ops = Vec::with_capacity(payloads.len());
    for payload in payloads {
        match StorageOp::decode(payload) {
            Some(op) => ops.push(op),
            None => {
                // A frame that checksums but does not decode: corruption (or
                // a future op tag). Keep the prefix before it.
                torn = true;
                valid_len = ops
                    .iter()
                    .map(|op| op.encode_to_vec().len() + crate::frame::FRAME_HEADER_LEN)
                    .sum();
                break;
            }
        }
    }
    Ok(WalReplay {
        ops,
        valid_len: valid_len as u64,
        torn_tail: torn,
    })
}

/// Fsyncs the directory containing `path`, making its directory entries
/// (creates, renames, truncations) durable on platforms where that matters.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                File::open(parent)?.sync_all()?;
            }
        }
    }
    #[cfg(not(unix))]
    {
        // Directories cannot be opened for syncing on this platform; the
        // metadata flush is left to the OS.
        let _ = path;
    }
    Ok(())
}

/// The appending half of a WAL.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    appends_since_sync: u64,
    syncs: u64,
    bytes_appended: u64,
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Creates a fresh, empty WAL at `path` (truncating anything there).
    pub fn create(path: PathBuf, policy: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path,
            policy: policy.normalized(),
            appends_since_sync: 0,
            syncs: 0,
            bytes_appended: 0,
            scratch: Vec::new(),
        })
    }

    /// Opens an existing WAL for appending after a replay: the file is
    /// truncated to `valid_len` first, discarding any torn tail, so the next
    /// append starts at a record boundary.
    ///
    /// The truncation is fsynced (file *and* parent directory) before this
    /// returns: a truncate that only reached the page cache can be undone by
    /// a power loss, resurrecting the discarded tail bytes underneath the
    /// next append and corrupting its framing.
    pub fn open_after_replay(
        path: PathBuf,
        policy: FsyncPolicy,
        valid_len: u64,
    ) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() != valid_len {
            // In append mode every write lands at the (truncated) end of file.
            file.set_len(valid_len)?;
            file.sync_all()?;
            sync_parent_dir(&path)?;
        }
        Ok(WalWriter {
            file,
            path,
            policy: policy.normalized(),
            appends_since_sync: 0,
            syncs: 0,
            bytes_appended: 0,
            scratch: Vec::new(),
        })
    }

    /// The file path of this WAL.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The (normalized) fsync policy this writer applies.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Ops appended but not yet covered by a sync.
    pub fn pending_appends(&self) -> u64 {
        self.appends_since_sync
    }

    /// Number of `sync_data` calls this writer has issued — the denominator
    /// of the group-commit amortization.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Framed bytes this writer has appended (headers included) — the
    /// numerator of the write-amplification story.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Appends one framed op and applies the fsync policy. The record is
    /// framed in place in the reused scratch buffer (header reserved up
    /// front, sealed after encoding) — no per-append allocation.
    ///
    /// Under [`FsyncPolicy::GroupCommit`] the append is **not** durable when
    /// this returns (unless the `max_batch` safety bound forced a sync): the
    /// caller owns the batch boundary and must call [`WalWriter::sync`]
    /// before acknowledging the op.
    pub fn append(&mut self, op: &StorageOp) -> io::Result<()> {
        self.scratch.clear();
        self.scratch.resize(FRAME_HEADER_LEN, 0);
        op.encode(&mut self.scratch);
        seal_frame(&mut self.scratch);
        self.file.write_all(&self.scratch)?;
        self.appends_since_sync += 1;
        self.bytes_appended += self.scratch.len() as u64;
        self.apply_policy()
    }

    /// Appends a batch of ops as one buffered write — every record framed
    /// into the scratch buffer, a single `write_all` — then applies the
    /// fsync policy *once*. Under [`FsyncPolicy::Always`] and
    /// [`FsyncPolicy::GroupCommit`] the whole batch is made durable by a
    /// single covering `sync_data` before this returns: this is the
    /// group-commit write path, one fsync amortized over `ops.len()`
    /// appends.
    pub fn append_batch(&mut self, ops: &[StorageOp]) -> io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        for op in ops {
            let frame_start = self.scratch.len();
            self.scratch.resize(frame_start + FRAME_HEADER_LEN, 0);
            op.encode(&mut self.scratch);
            seal_frame(&mut self.scratch[frame_start..]);
        }
        self.file.write_all(&self.scratch)?;
        self.appends_since_sync += ops.len() as u64;
        self.bytes_appended += self.scratch.len() as u64;
        match self.policy {
            // The batch boundary is the covering sync point.
            FsyncPolicy::Always | FsyncPolicy::GroupCommit { .. } => self.sync(),
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Applies the per-append half of the policy after one appended op.
    fn apply_policy(&mut self) -> io::Result<()> {
        match self.policy {
            FsyncPolicy::Always => self.sync(),
            FsyncPolicy::EveryN(n) => {
                if self.appends_since_sync >= n {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::GroupCommit { max_batch, .. } => {
                // Deferred: the batching layer syncs at the batch boundary;
                // the bound only backstops a caller that never does.
                if self.appends_since_sync >= max_batch {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    /// Forces everything appended so far to stable storage. A no-op when no
    /// append happened since the last sync, so issuing a covering sync at a
    /// batch boundary that turned out to be read-only costs nothing.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.appends_since_sync == 0 {
            return Ok(());
        }
        self.file.sync_data()?;
        self.syncs += 1;
        self.appends_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdht_core::Timestamp;
    use rdht_hashing::{HashId, Key};

    fn temp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("rdht-wal-test-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_ops(n: u64) -> Vec<StorageOp> {
        (0..n)
            .map(|i| StorageOp::PutReplica {
                hash: HashId((i % 5) as u32),
                key: Key::new(format!("key-{i}")),
                payload: vec![i as u8; 9],
                stamp: Timestamp(i + 1),
                position: i * 1000,
            })
            .collect()
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_path("round-trip");
        let ops = sample_ops(20);
        {
            let mut wal = WalWriter::create(path.clone(), FsyncPolicy::EveryN(4)).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops, ops);
        assert!(!replayed.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_wal_replays_empty() {
        let replayed = replay(Path::new("/nonexistent/definitely/missing.log")).unwrap();
        assert!(replayed.ops.is_empty());
        assert!(!replayed.torn_tail);
    }

    #[test]
    fn append_batch_replays_identically_to_per_op_appends() {
        let ops = sample_ops(17);
        let per_op = temp_path("batch-vs-per-op-a");
        let batched = temp_path("batch-vs-per-op-b");
        {
            let mut wal = WalWriter::create(per_op.clone(), FsyncPolicy::Never).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        {
            let mut wal = WalWriter::create(
                batched.clone(),
                FsyncPolicy::group_commit(64, Duration::ZERO),
            )
            .unwrap();
            // Uneven partition on purpose: 5 + 11 + 1.
            wal.append_batch(&ops[..5]).unwrap();
            wal.append_batch(&ops[5..16]).unwrap();
            wal.append_batch(&ops[16..]).unwrap();
            assert_eq!(wal.syncs(), 3, "one covering sync per batch");
            assert_eq!(wal.pending_appends(), 0);
        }
        // Byte-identical logs: the batch path changes syscalls, not format.
        assert_eq!(
            std::fs::read(&per_op).unwrap(),
            std::fs::read(&batched).unwrap()
        );
        let replayed = replay(&batched).unwrap();
        assert_eq!(replayed.ops, ops);
        assert!(!replayed.torn_tail);
        std::fs::remove_file(&per_op).unwrap();
        std::fs::remove_file(&batched).unwrap();
    }

    #[test]
    fn group_commit_defers_syncs_to_the_batch_boundary() {
        let path = temp_path("group-defer");
        let ops = sample_ops(10);
        let mut wal = WalWriter::create(
            path.clone(),
            FsyncPolicy::group_commit(64, Duration::from_micros(100)),
        )
        .unwrap();
        for op in &ops {
            wal.append(op).unwrap();
        }
        assert_eq!(wal.syncs(), 0, "appends below max_batch never sync");
        assert_eq!(wal.pending_appends(), 10);
        wal.sync().unwrap();
        assert_eq!(wal.syncs(), 1, "one covering sync for the whole batch");
        // A second sync at an empty boundary is free.
        wal.sync().unwrap();
        assert_eq!(wal.syncs(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_max_batch_bound_forces_a_sync() {
        let path = temp_path("group-bound");
        let ops = sample_ops(9);
        let mut wal =
            WalWriter::create(path.clone(), FsyncPolicy::group_commit(4, Duration::ZERO)).unwrap();
        for op in &ops {
            wal.append(op).unwrap();
        }
        // 9 appends against a bound of 4: forced syncs at 4 and 8.
        assert_eq!(wal.syncs(), 2);
        assert_eq!(wal.pending_appends(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn degenerate_zero_bound_policies_normalize_to_always() {
        assert_eq!(FsyncPolicy::EveryN(0).normalized(), FsyncPolicy::Always);
        assert_eq!(
            FsyncPolicy::group_commit(0, Duration::from_millis(1)),
            FsyncPolicy::Always
        );
        assert_eq!(FsyncPolicy::EveryN(3).normalized(), FsyncPolicy::EveryN(3));
        assert_eq!(FsyncPolicy::Always.batching(), None);
        assert_eq!(
            FsyncPolicy::group_commit(8, Duration::from_micros(50)).batching(),
            Some((8, Duration::from_micros(50)))
        );

        // EveryN(0) used to degrade to Never (appends never hit the `>= n`
        // threshold); normalized it syncs every op, like Always.
        let path = temp_path("every0");
        let mut wal = WalWriter::create(path.clone(), FsyncPolicy::EveryN(0)).unwrap();
        assert_eq!(wal.policy(), FsyncPolicy::Always);
        wal.append(&sample_ops(1)[0]).unwrap();
        assert_eq!(wal.syncs(), 1, "EveryN(0) must sync per op, not never");
        assert_eq!(wal.pending_appends(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_on_reopen() {
        let path = temp_path("torn");
        let ops = sample_ops(10);
        {
            let mut wal = WalWriter::create(path.clone(), FsyncPolicy::Never).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the final record: chop 3 bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops, ops[..9].to_vec());
        assert!(replayed.torn_tail);

        // Re-open for append: the torn bytes are discarded and a fresh
        // append lands on a record boundary.
        {
            let mut wal =
                WalWriter::open_after_replay(path.clone(), FsyncPolicy::Always, replayed.valid_len)
                    .unwrap();
            wal.append(&StorageOp::ClearCounters).unwrap();
        }
        let after = replay(&path).unwrap();
        assert_eq!(after.ops.len(), 10);
        assert_eq!(after.ops[9], StorageOp::ClearCounters);
        assert!(!after.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    /// The replay-truncate itself must be durable: reopen over a torn tail,
    /// then crash immediately (writer dropped, nothing appended, no sync
    /// beyond the one `open_after_replay` issues). The tail must stay gone —
    /// before the fix the `set_len` lived only in the page cache and a power
    /// loss could resurrect the discarded bytes under the next append.
    #[test]
    fn reopen_truncation_survives_an_immediate_crash() {
        let path = temp_path("truncate-crash");
        let ops = sample_ops(6);
        {
            let mut wal = WalWriter::create(path.clone(), FsyncPolicy::Never).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.sync().unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full_len - 2).unwrap();
        drop(file);

        let replayed = replay(&path).unwrap();
        assert!(replayed.torn_tail);
        {
            // Crash-at-truncate: the writer opens (truncating + fsyncing the
            // file and its directory) and is dropped without appending.
            let wal =
                WalWriter::open_after_replay(path.clone(), FsyncPolicy::Always, replayed.valid_len)
                    .unwrap();
            drop(wal);
        }
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            replayed.valid_len,
            "the torn tail must be gone from the file itself"
        );
        let after = replay(&path).unwrap();
        assert_eq!(after.ops, ops[..5].to_vec());
        assert!(!after.torn_tail, "no resurrected tail bytes");

        // A reopen with a clean tail must not pay the truncate-sync path
        // (the length already matches) and must append correctly.
        {
            let mut wal =
                WalWriter::open_after_replay(path.clone(), FsyncPolicy::Always, after.valid_len)
                    .unwrap();
            wal.append(&StorageOp::ClearCounters).unwrap();
        }
        let last = replay(&path).unwrap();
        assert_eq!(last.ops.len(), 6);
        assert!(!last.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }
}
