//! Ring membership for the replicated-DHT currency stack: **live joins** and
//! **graceful leaves** as an explicit, crash-recoverable transfer protocol.
//!
//! The paper's availability analysis (Section 4.2) distinguishes two ways a
//! timestamping responsible can stop serving a key:
//!
//! * a **graceful departure** runs the *direct* algorithm of Section 4.2.1 —
//!   the leaving peer hands the counters of the keys it is responsible for
//!   straight to its successor, so the successor keeps generating monotonic
//!   timestamps with **zero** indirect re-initializations;
//! * a **crash** loses the in-memory counters and forces the expensive
//!   *indirect* re-initialization of Section 4.2.2 (`|Hr|` replica reads per
//!   key) the next time each key is touched.
//!
//! This crate implements the machinery that makes the cheap path real in a
//! running deployment:
//!
//! * [`plan`] — pure ring arithmetic: who is the successor/predecessor of an
//!   identifier among the live peers, and which `(start, end]` interval of
//!   the ring changes hands on a join ([`JoinPlan`]) or a graceful leave
//!   ([`LeavePlan`]). Built on `rdht-overlay`'s interval helpers
//!   (`split_range` / `merge_ranges`).
//! * [`transfer`] — the hand-off itself, modelled as an explicit state
//!   machine ([`RangeTransfer`]): `Planned → Exported → Installed →
//!   Committed`, with every phase journaled through `rdht-storage` so that a
//!   crash at **any** point either rolls the transfer back (the source still
//!   holds every replica; the invalidated counters re-initialize indirectly,
//!   which is always safe) or completes it (the destination's journal already
//!   holds the state). [`CrashOutcome`] names which of the two applies at
//!   each phase.
//!
//! The crate is transport-agnostic: `rdht-net` drives the same
//! [`export_handoff`] / [`install_handoff`] / [`commit_handoff`] functions
//! from two peer threads exchanging messages, and tests drive them against
//! two [`rdht_storage::StorageEngine`]s in one thread. Either way the
//! journaled op sequence — counter removes at the source, replica puts and
//! counter sets at the destination, one `TransferRange` commit record at the
//! source — is identical, which is what the crash-recovery property tests
//! exercise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod metrics;
pub mod plan;
pub mod transfer;

pub use error::MembershipError;
pub use metrics::TransferMetrics;
pub use plan::{plan_join, plan_leave, predecessor_of, successor_of, JoinPlan, LeavePlan};
pub use transfer::{
    commit_handoff, export_handoff, install_handoff, CrashOutcome, HandoffBundle, InstallReport,
    RangeTransfer, TransferPhase,
};

#[cfg(test)]
mod proptests;
