//! The range hand-off: an explicit, journaled transfer state machine.
//!
//! One transfer moves responsibility for a ring interval `(start, end]` from
//! a *source* peer to a *target* peer — the join and the graceful leave are
//! the same protocol with different plans. The phases, and what each one
//! journals:
//!
//! | Phase | Action | Journaled where |
//! |---|---|---|
//! | `Planned` | plan computed, nothing moved | — |
//! | `Exported` | [`export_handoff`]: replicas in range *copied* (not removed), counters in range drained from the source's VCS | counter removes on the **source** |
//! | `Installed` | [`install_handoff`]: the bundle applied at the target | replica puts + counter sets on the **target** |
//! | `Committed` | [`commit_handoff`]: one `TransferRange` record prunes the moved replicas from the source | `TransferRange` on the **source** |
//!
//! The ordering is what makes a crash at any point safe
//! ([`RangeTransfer::crash_outcome`]):
//!
//! * **before `Installed`** the transfer *rolls back*: the source's journal
//!   still holds every replica (they were only copied), so recovery serves
//!   them unchanged; the exported counters are durably gone, but a missing
//!   counter only costs an indirect re-initialization (Section 4.2.2), which
//!   is always safe — replicas, not counters, are the currency ground truth.
//! * **from `Installed` on** the transfer *completes*: the target's journal
//!   holds every moved replica and counter, so re-running the remaining
//!   phases (or simply re-driving the whole protocol — every step is
//!   idempotent) converges to the committed state. Until the source commits,
//!   both sides hold the moved replicas; duplicates are harmless because
//!   replicas are immutable `(payload, stamp)` pairs and responsibility is
//!   resolved by the ring, not by who stores what.

use rdht_core::kts::KtsNode;
use rdht_core::{DurableState, ReplicaValue, Timestamp};
use rdht_hashing::{HashFamily, HashId, Key};
use rdht_overlay::in_open_closed_interval;
use rdht_storage::{StorageEngine, StoredReplica};

use crate::error::MembershipError;

/// Everything a range transfer ships from source to target: the replicas
/// stored in the moved interval and the KTS counters of the keys whose
/// *timestamping* position falls in it (the direct algorithm's payload).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HandoffBundle {
    /// Replicas whose ring position lies in the moved interval.
    pub replicas: Vec<(HashId, Key, StoredReplica)>,
    /// Counters handed over directly (Section 4.2.1), with their current
    /// values.
    pub counters: Vec<(Key, Timestamp)>,
    /// Pending *recovery floors* of moved keys (recovered durable counter
    /// values not yet consumed by an initialization at the source). Not
    /// valid counters — they re-seed as floors at the target, so its first
    /// indirect initialization still takes `max(observed, recovered)`.
    pub floors: Vec<(Key, Timestamp)>,
}

impl HandoffBundle {
    /// Whether nothing at all moves.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty() && self.counters.is_empty() && self.floors.is_empty()
    }
}

/// What [`install_handoff`] applied at the target.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstallReport {
    /// Replicas installed (stale duplicates already superseded at the target
    /// are skipped, mirroring UMS `put_h` semantics).
    pub replicas_installed: usize,
    /// Counters received through the direct transfer.
    pub counters_received: usize,
}

/// The phase a [`RangeTransfer`] has reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TransferPhase {
    /// Plan computed; no state has moved.
    Planned,
    /// The source exported the bundle (its counters are drained and the
    /// removals journaled; its replicas are still in place).
    Exported,
    /// The target installed the bundle (puts and counter sets journaled).
    Installed,
    /// The source pruned the moved replicas with a journaled
    /// `TransferRange`; the transfer is durable on both sides.
    Committed,
}

/// What recovery yields if a participant crashes while the transfer is in a
/// given phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashOutcome {
    /// The source still journals every replica: recovery serves them
    /// unchanged and the (durably invalidated) counters re-initialize
    /// indirectly. The target installed nothing that matters yet.
    RollsBack,
    /// The target's journal holds the moved state: re-driving the protocol
    /// (or just the commit) converges to the completed transfer.
    Completes,
}

/// One range transfer, tracked through its phases. The struct does not own
/// the engines — the deployment drives the phase functions from wherever the
/// two peers actually live (two threads in `rdht-net`, one test body here)
/// and advances the machine as each side acknowledges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeTransfer {
    /// Ring position of the peer state moves *from*.
    pub source: u64,
    /// Ring position of the peer state moves *to*.
    pub target: u64,
    /// Exclusive start of the moved interval.
    pub range_start: u64,
    /// Inclusive end of the moved interval.
    pub range_end: u64,
    phase: TransferPhase,
}

impl RangeTransfer {
    /// A freshly planned transfer.
    pub fn new(source: u64, target: u64, range_start: u64, range_end: u64) -> Self {
        RangeTransfer {
            source,
            target,
            range_start,
            range_end,
            phase: TransferPhase::Planned,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> TransferPhase {
        self.phase
    }

    /// What a crash right now would leave behind after recovery.
    pub fn crash_outcome(&self) -> CrashOutcome {
        if self.phase < TransferPhase::Installed {
            CrashOutcome::RollsBack
        } else {
            CrashOutcome::Completes
        }
    }

    fn advance(&mut self, to: TransferPhase) -> Result<(), MembershipError> {
        let legal = matches!(
            (self.phase, to),
            (TransferPhase::Planned, TransferPhase::Exported)
                | (TransferPhase::Exported, TransferPhase::Installed)
                | (TransferPhase::Installed, TransferPhase::Committed)
        );
        if !legal {
            return Err(MembershipError::InvalidTransition {
                from: self.phase,
                to,
            });
        }
        self.phase = to;
        Ok(())
    }

    /// Records that the source exported the bundle.
    pub fn mark_exported(&mut self) -> Result<(), MembershipError> {
        self.advance(TransferPhase::Exported)
    }

    /// Records that the target installed the bundle.
    pub fn mark_installed(&mut self) -> Result<(), MembershipError> {
        self.advance(TransferPhase::Installed)
    }

    /// Records that the source pruned the moved replicas.
    pub fn mark_committed(&mut self) -> Result<(), MembershipError> {
        self.advance(TransferPhase::Committed)
    }
}

/// Source side, phase `Exported`: copies every replica whose position falls
/// in `(range_start, range_end]` out of the engine (the originals stay until
/// [`commit_handoff`]) and drains the counters of every key whose
/// *timestamping* position falls in the range — each drained counter is
/// journaled as removed on the source, enforcing Rule 3 durably.
pub fn export_handoff(
    engine: &mut StorageEngine,
    kts: &mut KtsNode,
    family: &HashFamily,
    range_start: u64,
    range_end: u64,
) -> HandoffBundle {
    let replicas: Vec<(HashId, Key, StoredReplica)> = engine
        .replicas()
        .iter()
        .filter(|(_, _, replica)| in_open_closed_interval(range_start, range_end, replica.position))
        .map(|(hash, key, replica)| (hash, key.clone(), replica.clone()))
        .collect();
    let counters = kts.export_counters_in_range_with(
        |key| in_open_closed_interval(range_start, range_end, family.eval_timestamp(key)),
        engine,
    );
    // Unconsumed recovery floors of moved keys travel too: the takeover
    // peer inherits the "resume at least here" guarantee, or a crash-then-
    // hand-off sequence would reopen the counter-regression corner.
    let floors = kts.drain_recovery_floors(|key| {
        in_open_closed_interval(range_start, range_end, family.eval_timestamp(key))
    });
    HandoffBundle {
        replicas,
        counters,
        floors,
    }
}

/// Target side, phase `Installed`: applies the bundle. Replicas install with
/// keep-newest semantics (a stale duplicate never overwrites a fresher local
/// record) and every accepted put is journaled; counters install through the
/// direct-transfer receive path, which journals each installed value and
/// never downgrades a larger local counter.
pub fn install_handoff(
    engine: &mut StorageEngine,
    kts: &mut KtsNode,
    bundle: HandoffBundle,
) -> InstallReport {
    let mut report = InstallReport {
        counters_received: bundle.counters.len(),
        ..InstallReport::default()
    };
    for (hash, key, replica) in bundle.replicas {
        let accepted = match engine.replicas().get(hash, &key) {
            Some(existing) => replica.stamp > existing.stamp,
            None => true,
        };
        if accepted {
            let value = ReplicaValue::new(replica.payload, replica.stamp);
            engine.record_replica_put(hash, &key, &value, replica.position);
            report.replicas_installed += 1;
        }
    }
    // Floors first, so a transferred counter that lost against a floor at
    // the source cannot sneak in below it here either.
    kts.seed_recovery_floors(bundle.floors);
    kts.receive_transferred_counters_with(bundle.counters, engine);
    report
}

/// Source side, phase `Committed`: prunes every replica in the moved range
/// with a single journaled `TransferRange` record — the durable commit point
/// of the transfer. Returns how many replicas were pruned.
pub fn commit_handoff(engine: &mut StorageEngine, range_start: u64, range_end: u64) -> usize {
    let before = engine.replicas().len();
    engine.record_range_transfer(range_start, range_end);
    before - engine.replicas().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdht_core::kts::IndirectObservation;
    use rdht_storage::{FsyncPolicy, StorageOptions};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rdht-membership-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &PathBuf) -> StorageEngine {
        StorageEngine::open(dir, StorageOptions::with_fsync(FsyncPolicy::Never)).unwrap()
    }

    /// Populates a source engine + KTS with `n` keys: one replica per
    /// replication function and one generated counter per key.
    fn populate(engine: &mut StorageEngine, kts: &mut KtsNode, family: &HashFamily, n: usize) {
        for i in 0..n {
            let key = Key::new(format!("doc-{i}"));
            for _ in 0..3 {
                kts.gen_ts_with(&key, IndirectObservation::nothing, engine);
            }
            let stamp = kts.counter_value(&key).unwrap();
            for hash in (0..family.num_replication()).map(|h| HashId(h as u32)) {
                let value = ReplicaValue::new(format!("payload-{i}").into_bytes(), stamp);
                let position = family.eval(hash, &key);
                engine.record_replica_put(hash, &key, &value, position);
            }
        }
    }

    #[test]
    fn full_handoff_moves_range_and_counters() {
        let family = HashFamily::new(4, 7);
        let src_dir = temp_dir("full-src");
        let dst_dir = temp_dir("full-dst");
        let mut src = open(&src_dir);
        let mut src_kts = KtsNode::new(false);
        let mut dst = open(&dst_dir);
        let mut dst_kts = KtsNode::new(false);
        populate(&mut src, &mut src_kts, &family, 8);
        let total = src.replicas().len();

        // Move half the ring.
        let (start, end) = (0u64, u64::MAX / 2);
        let mut transfer = RangeTransfer::new(1, 2, start, end);
        let bundle = export_handoff(&mut src, &mut src_kts, &family, start, end);
        transfer.mark_exported().unwrap();
        assert_eq!(transfer.crash_outcome(), CrashOutcome::RollsBack);
        let moved_replicas = bundle.replicas.len();
        let moved_counters = bundle.counters.len();
        assert!(moved_replicas > 0 && moved_replicas < total);
        // Every exported counter left the source's VCS (Rule 3).
        for (key, _) in &bundle.counters {
            assert!(!src_kts.has_counter(key));
        }

        let report = install_handoff(&mut dst, &mut dst_kts, bundle);
        transfer.mark_installed().unwrap();
        assert_eq!(transfer.crash_outcome(), CrashOutcome::Completes);
        assert_eq!(report.replicas_installed, moved_replicas);
        assert_eq!(report.counters_received, moved_counters);

        let pruned = commit_handoff(&mut src, start, end);
        transfer.mark_committed().unwrap();
        assert_eq!(pruned, moved_replicas);
        assert_eq!(src.replicas().len(), total - moved_replicas);
        assert_eq!(dst.replicas().len(), moved_replicas);

        // The target generates the next timestamp for a moved key without an
        // indirect initialization, continuing the source's sequence.
        let first_counter: Option<(Key, Timestamp)> =
            dst_kts.vcs().iter().map(|(k, v)| (k.clone(), v)).next();
        if let Some((key, value)) = first_counter {
            let out = dst_kts.gen_ts_with(
                &key,
                || panic!("direct transfer must make the counter valid"),
                &mut dst,
            );
            assert_eq!(out.timestamp, Timestamp(value.0 + 1));
        }

        // Both journals replay to the post-transfer state.
        drop(src);
        drop(dst);
        let (src_replicas, _) = StorageEngine::recover(&src_dir).unwrap();
        let (dst_replicas, dst_counters) = StorageEngine::recover(&dst_dir).unwrap();
        assert_eq!(src_replicas.len(), total - moved_replicas);
        assert_eq!(dst_replicas.len(), moved_replicas);
        assert_eq!(dst_counters.len(), moved_counters);
        let _ = std::fs::remove_dir_all(&src_dir);
        let _ = std::fs::remove_dir_all(&dst_dir);
    }

    #[test]
    fn install_keeps_newest_on_duplicate_records() {
        let family = HashFamily::new(2, 1);
        let mut dst = StorageEngine::ephemeral();
        let mut dst_kts = KtsNode::new(false);
        let key = Key::new("doc");
        let hash = HashId(0);
        let position = family.eval(hash, &key);
        // The target already holds a fresher record.
        dst.record_replica_put(
            hash,
            &key,
            &ReplicaValue::new(b"fresh".to_vec(), Timestamp(9)),
            position,
        );
        let bundle = HandoffBundle {
            replicas: vec![(
                hash,
                key.clone(),
                StoredReplica {
                    payload: b"stale".to_vec(),
                    stamp: Timestamp(3),
                    position,
                },
            )],
            counters: Vec::new(),
            floors: Vec::new(),
        };
        let report = install_handoff(&mut dst, &mut dst_kts, bundle);
        assert_eq!(report.replicas_installed, 0);
        assert_eq!(dst.replicas().get(hash, &key).unwrap().payload, b"fresh");
    }

    #[test]
    fn pending_recovery_floors_travel_with_the_handoff() {
        // The source recovered from a crash (floor seeded, VCS empty) and
        // then hands its range away before any request consumed the floor:
        // the floor must re-seed at the target, or the target's first
        // indirect initialization could restart the counter below 5.
        let family = HashFamily::new(2, 9);
        let mut src = StorageEngine::ephemeral();
        let mut src_kts = KtsNode::new(false);
        let mut dst = StorageEngine::ephemeral();
        let mut dst_kts = KtsNode::new(false);
        let key = Key::new("resumed doc");
        src_kts.seed_recovery_floors(vec![(key.clone(), Timestamp(5))]);

        // Full-ring hand-off so the key's timestamp position is covered.
        let bundle = export_handoff(&mut src, &mut src_kts, &family, 7, 7);
        assert_eq!(bundle.counters.len(), 0, "a floor is not a valid counter");
        assert_eq!(bundle.floors.len(), 1);
        assert_eq!(src_kts.recovery_floor(&key), None, "drained at the source");

        install_handoff(&mut dst, &mut dst_kts, bundle);
        assert!(
            !dst_kts.has_counter(&key),
            "the floor must not resurrect into the VCS (Rule 1)"
        );
        // An empty observation at the target still resumes after the floor.
        let out = dst_kts.gen_ts_with(&key, IndirectObservation::nothing, &mut dst);
        assert_eq!(out.timestamp, Timestamp(6));
    }

    #[test]
    fn phase_machine_rejects_illegal_transitions() {
        let mut transfer = RangeTransfer::new(1, 2, 0, 100);
        assert_eq!(transfer.phase(), TransferPhase::Planned);
        assert!(transfer.mark_installed().is_err(), "cannot skip export");
        assert!(transfer.mark_committed().is_err());
        transfer.mark_exported().unwrap();
        assert!(transfer.mark_exported().is_err(), "no double export");
        assert!(transfer.mark_committed().is_err(), "cannot skip install");
        transfer.mark_installed().unwrap();
        transfer.mark_committed().unwrap();
        assert_eq!(transfer.phase(), TransferPhase::Committed);
        assert!(transfer.mark_exported().is_err(), "terminal phase");
    }

    #[test]
    fn crash_before_install_rolls_back_without_losing_replicas() {
        let family = HashFamily::new(3, 11);
        let src_dir = temp_dir("rollback-src");
        let mut src = open(&src_dir);
        let mut src_kts = KtsNode::new(false);
        populate(&mut src, &mut src_kts, &family, 6);
        let total = src.replicas().len();

        // Export, then "crash" both sides before the target installs: the
        // bundle is lost in flight.
        let bundle = export_handoff(&mut src, &mut src_kts, &family, 0, u64::MAX / 2);
        let exported_counters = bundle.counters.len();
        drop(bundle);
        drop(src);

        let (replicas, counters) = StorageEngine::recover(&src_dir).unwrap();
        assert_eq!(replicas.len(), total, "no replica was lost");
        // The exported counters are durably gone from the source; the
        // remaining durable counter images are only the unexported ones.
        assert_eq!(counters.len(), 6 - exported_counters);
        // Indirect re-initialization from the intact replicas reproduces a
        // safe counter for a moved key: the max stored stamp is the last
        // generated timestamp (3 per key in populate()).
        for (hash, key, replica) in replicas.iter() {
            assert_eq!(replica.stamp, Timestamp(3), "{hash:?}/{key:?}");
        }
        let _ = std::fs::remove_dir_all(&src_dir);
    }

    #[test]
    fn empty_range_handoff_is_a_no_op() {
        let family = HashFamily::new(2, 3);
        let mut src = StorageEngine::ephemeral();
        let mut src_kts = KtsNode::new(false);
        // A range covering no stored position moves nothing. Positions of
        // "doc-0" under 2 hash functions are essentially random; use an
        // empty engine instead for determinism.
        let bundle = export_handoff(&mut src, &mut src_kts, &family, 5, 6);
        assert!(bundle.is_empty());
        assert_eq!(commit_handoff(&mut src, 5, 6), 0);
    }
}
