//! Hand-off phase instruments.
//!
//! [`TransferMetrics`] bundles one latency histogram per phase of the
//! journaled transfer state machine (`Exported → Installed → Committed`).
//! The crate itself never observes into them — it is transport-agnostic and
//! has no clock of the exchange — the *driver* does: `rdht-net`'s peer loop
//! times [`crate::export_handoff`], the install round trips, and
//! [`crate::commit_handoff`] around its calls and observes the wall time
//! here, so a scrape shows where a slow membership change spent its time.

use rdht_metrics::{Histogram, Registry};

/// Canonical instrument names, also listed in the README's catalog.
pub mod names {
    /// Wall time of the export phase (copying replicas, draining counters,
    /// syncing the removals), in nanoseconds.
    pub const EXPORT_NS: &str = "membership_handoff_export_ns";
    /// Wall time of the install phase — shipping the bundle and waiting for
    /// the target's durable ack, including re-sends — in nanoseconds.
    pub const INSTALL_NS: &str = "membership_handoff_install_ns";
    /// Wall time of the commit phase (directory flip, journal prune, commit
    /// sync), in nanoseconds.
    pub const COMMIT_NS: &str = "membership_handoff_commit_ns";
}

/// Per-phase duration histograms of one peer's hand-offs. Create with
/// [`TransferMetrics::register`]; the driver observes a duration into each
/// phase's histogram as the transfer passes through it.
#[derive(Clone, Debug)]
pub struct TransferMetrics {
    /// Export-phase wall time, nanoseconds.
    pub export_ns: Histogram,
    /// Install-phase wall time (ship + durable ack, with re-sends),
    /// nanoseconds.
    pub install_ns: Histogram,
    /// Commit-phase wall time, nanoseconds.
    pub commit_ns: Histogram,
}

impl TransferMetrics {
    /// Registers (get-or-create) the phase histograms into `registry` under
    /// `labels`.
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> Self {
        TransferMetrics {
            export_ns: registry.histogram(
                names::EXPORT_NS,
                "hand-off export phase wall time, nanoseconds",
                labels,
            ),
            install_ns: registry.histogram(
                names::INSTALL_NS,
                "hand-off install phase wall time (ship + durable ack), nanoseconds",
                labels,
            ),
            commit_ns: registry.histogram(
                names::COMMIT_NS,
                "hand-off commit phase wall time, nanoseconds",
                labels,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_register_and_expose() {
        let registry = Registry::new();
        let metrics = TransferMetrics::register(&registry, &[("peer", "3")]);
        metrics.export_ns.observe(1_000);
        metrics.install_ns.observe(2_000_000);
        metrics.commit_ns.observe(500);
        let text = rdht_metrics::encode(&registry);
        assert!(text.contains("membership_handoff_export_ns_count{peer=\"3\"} 1"));
        assert!(text.contains("membership_handoff_install_ns_sum{peer=\"3\"} 2000000"));
        assert!(text.contains("membership_handoff_commit_ns_count{peer=\"3\"} 1"));
    }
}
