//! Errors surfaced by membership operations.

use crate::transfer::TransferPhase;

/// Why a membership operation (join, leave, crash, restart or a phase of the
/// underlying range transfer) could not proceed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// The peer id is not a member of the ring at all.
    UnknownPeer(u64),
    /// A join was requested for an id that is already a member (alive or
    /// crashed — a crashed member's identity is reserved for restart).
    AlreadyMember(u64),
    /// A lifecycle operation targeted a peer that is already dead.
    AlreadyDead(u64),
    /// A graceful leave was requested for the only live peer; there is nobody
    /// to hand state over to.
    LastPeer,
    /// The ring has no live members to compute a plan against.
    EmptyRing,
    /// The hand-off itself failed mid-flight (a participant crashed or never
    /// answered); the message describes the phase reached.
    TransferFailed(String),
    /// The coordinator's bounded retry budget for a hand-off expired without
    /// a definitive answer: the peer driving the transfer stayed silent
    /// through every re-send. The transfer may still be rolled back or
    /// completed by the participants; the coordinator just stopped waiting.
    CoordinationTimeout {
        /// The peer the coordinator was waiting on.
        peer: u64,
        /// How many bounded waits were attempted before giving up.
        attempts: u32,
    },
    /// An illegal phase transition was attempted on a [`crate::RangeTransfer`].
    InvalidTransition {
        /// Phase the transfer was in.
        from: TransferPhase,
        /// Phase the caller tried to move to.
        to: TransferPhase,
    },
}

impl std::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MembershipError::UnknownPeer(id) => {
                write!(f, "peer {id:#018x} is not a member of the ring")
            }
            MembershipError::AlreadyMember(id) => {
                write!(f, "peer {id:#018x} is already a member of the ring")
            }
            MembershipError::AlreadyDead(id) => {
                write!(f, "peer {id:#018x} is already dead")
            }
            MembershipError::LastPeer => {
                write!(f, "the last live peer cannot leave gracefully")
            }
            MembershipError::EmptyRing => write!(f, "the ring has no live members"),
            MembershipError::TransferFailed(reason) => {
                write!(f, "range transfer failed: {reason}")
            }
            MembershipError::CoordinationTimeout { peer, attempts } => {
                write!(
                    f,
                    "peer {peer:#018x} answered none of {attempts} bounded hand-off waits"
                )
            }
            MembershipError::InvalidTransition { from, to } => {
                write!(f, "illegal transfer transition {from:?} -> {to:?}")
            }
        }
    }
}

impl std::error::Error for MembershipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_peer() {
        let text = MembershipError::UnknownPeer(0xabcd).to_string();
        assert!(text.contains("0x000000000000abcd"));
        assert!(MembershipError::LastPeer.to_string().contains("last live"));
        let transition = MembershipError::InvalidTransition {
            from: TransferPhase::Planned,
            to: TransferPhase::Committed,
        };
        assert!(transition.to_string().contains("Planned"));
        assert!(transition.to_string().contains("Committed"));
    }
}
