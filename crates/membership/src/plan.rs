//! Pure ring arithmetic: who takes over which interval when the membership
//! changes.
//!
//! All functions operate on a **sorted** slice of live peer identifiers (the
//! 64-bit ring positions peers share with keys) and allocate nothing. The
//! deployment layer (`rdht-net`) snapshots its directory into such a slice,
//! computes a plan, and then drives [`crate::transfer`] with it; the
//! simulator's overlays compute equivalent ranges through their own
//! `MembershipOutcome` machinery.

use rdht_overlay::{in_open_closed_interval, merge_ranges, split_range};

use crate::error::MembershipError;

/// The first live id clockwise from `position` (inclusive) — the peer
/// responsible for `position` under successor-on-the-ring responsibility.
/// Returns `None` for an empty ring.
pub fn successor_of(ring: &[u64], position: u64) -> Option<u64> {
    debug_assert!(ring.windows(2).all(|w| w[0] < w[1]), "ring must be sorted");
    match ring.binary_search(&position) {
        Ok(_) => Some(position),
        Err(i) => ring.get(i).or_else(|| ring.first()).copied(),
    }
}

/// The first live id strictly counter-clockwise from `id` — the peer whose
/// range ends just before `id`'s begins. Returns `None` for an empty ring;
/// for a single-peer ring the peer is its own predecessor.
pub fn predecessor_of(ring: &[u64], id: u64) -> Option<u64> {
    debug_assert!(ring.windows(2).all(|w| w[0] < w[1]), "ring must be sorted");
    let i = ring.partition_point(|&x| x < id);
    if i > 0 {
        Some(ring[i - 1])
    } else {
        ring.last().copied()
    }
}

/// What a join changes: the joiner splits its successor's range and takes
/// the counter-clockwise half.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    /// The joining peer's ring position.
    pub joiner: u64,
    /// The live successor the joiner splits — the current owner of every
    /// position in the moved range.
    pub source: u64,
    /// Exclusive start of the moved interval `(range_start, range_end]`:
    /// the joiner's live predecessor.
    pub range_start: u64,
    /// Inclusive end of the moved interval: the joiner itself.
    pub range_end: u64,
}

impl JoinPlan {
    /// Whether a ring position falls in the moved interval.
    pub fn covers(&self, position: u64) -> bool {
        in_open_closed_interval(self.range_start, self.range_end, position)
    }
}

/// What a graceful leave changes: the leaving peer's whole range merges into
/// its successor's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeavePlan {
    /// The departing peer's ring position.
    pub leaving: u64,
    /// The live successor that absorbs the departing peer's range — the
    /// recipient of the direct counter transfer (Section 4.2.1).
    pub target: u64,
    /// Exclusive start of the moved interval `(range_start, range_end]`:
    /// the leaver's live predecessor (excluding the leaver itself).
    pub range_start: u64,
    /// Inclusive end of the moved interval: the departing peer.
    pub range_end: u64,
}

impl LeavePlan {
    /// Whether a ring position falls in the moved interval.
    pub fn covers(&self, position: u64) -> bool {
        in_open_closed_interval(self.range_start, self.range_end, position)
    }
}

/// Plans a join: `joiner` enters a ring whose live members are `alive`
/// (sorted). The joiner takes `(pred(joiner), joiner]` from its successor —
/// the counter-clockwise half of [`rdht_overlay::split_range`] applied to
/// the successor's current range.
pub fn plan_join(alive: &[u64], joiner: u64) -> Result<JoinPlan, MembershipError> {
    if alive.binary_search(&joiner).is_ok() {
        return Err(MembershipError::AlreadyMember(joiner));
    }
    let source = successor_of(alive, joiner).ok_or(MembershipError::EmptyRing)?;
    let range_start = predecessor_of(alive, joiner).expect("ring checked non-empty");
    let plan = JoinPlan {
        joiner,
        source,
        range_start,
        range_end: joiner,
    };
    // The moved interval is exactly the counter-clockwise half of splitting
    // the source's range (pred, source] at the joiner (a multi-peer ring;
    // a single-peer ring's "range" is the degenerate full ring and has no
    // two-sided split to check).
    debug_assert!(
        alive.len() < 2
            || split_range(range_start, source, joiner)
                .map(|(taken, _kept)| taken == (range_start, joiner))
                .unwrap_or(false),
        "join must take the counter-clockwise half of the source's range"
    );
    Ok(plan)
}

/// Plans a graceful leave: `leaving` departs a ring whose live members are
/// `alive` (sorted, including `leaving`). Its whole range
/// `(pred(leaving), leaving]` moves to its live successor, whose resulting
/// range is the [`rdht_overlay::merge_ranges`] of the two adjacent
/// intervals.
pub fn plan_leave(alive: &[u64], leaving: u64) -> Result<LeavePlan, MembershipError> {
    if alive.binary_search(&leaving).is_err() {
        return Err(MembershipError::UnknownPeer(leaving));
    }
    if alive.len() == 1 {
        return Err(MembershipError::LastPeer);
    }
    // Successor and predecessor among the *other* live peers.
    let i = alive.partition_point(|&x| x <= leaving);
    let target = alive.get(i).copied().unwrap_or(alive[0]);
    let j = alive.partition_point(|&x| x < leaving);
    let range_start = if j > 0 {
        alive[j - 1]
    } else {
        *alive.last().expect("len >= 2")
    };
    let plan = LeavePlan {
        leaving,
        target,
        range_start,
        range_end: leaving,
    };
    debug_assert!(
        alive.len() < 3
            || merge_ranges((range_start, leaving), (leaving, target))
                == Some((range_start, target)),
        "the target's new range must be the merge of the two adjacent ranges"
    );
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_wraps_and_hits_exact_positions() {
        let ring = [10, 50, 90];
        assert_eq!(successor_of(&ring, 5), Some(10));
        assert_eq!(successor_of(&ring, 10), Some(10));
        assert_eq!(successor_of(&ring, 11), Some(50));
        assert_eq!(successor_of(&ring, 91), Some(10), "wraps past the top");
        assert_eq!(successor_of(&[], 5), None);
    }

    #[test]
    fn predecessor_wraps() {
        let ring = [10, 50, 90];
        assert_eq!(predecessor_of(&ring, 50), Some(10));
        assert_eq!(predecessor_of(&ring, 10), Some(90), "wraps to the top");
        assert_eq!(predecessor_of(&ring, 70), Some(50));
        assert_eq!(predecessor_of(&[42], 42), Some(42), "self on a 1-ring");
        assert_eq!(predecessor_of(&[], 7), None);
    }

    #[test]
    fn join_splits_the_successors_range() {
        let plan = plan_join(&[10, 50, 90], 30).unwrap();
        assert_eq!(plan.source, 50);
        assert_eq!((plan.range_start, plan.range_end), (10, 30));
        assert!(plan.covers(30));
        assert!(plan.covers(11));
        assert!(!plan.covers(10), "start is exclusive");
        assert!(!plan.covers(31));
    }

    #[test]
    fn join_below_the_smallest_id_wraps() {
        let plan = plan_join(&[10, 50, 90], 5).unwrap();
        assert_eq!(plan.source, 10);
        assert_eq!((plan.range_start, plan.range_end), (90, 5));
        assert!(plan.covers(u64::MAX));
        assert!(plan.covers(0));
        assert!(!plan.covers(10));
    }

    #[test]
    fn join_into_single_peer_ring() {
        let plan = plan_join(&[100], 40).unwrap();
        assert_eq!(plan.source, 100);
        assert_eq!((plan.range_start, plan.range_end), (100, 40));
    }

    #[test]
    fn join_rejects_duplicates_and_empty_rings() {
        assert_eq!(
            plan_join(&[10, 50], 50),
            Err(MembershipError::AlreadyMember(50))
        );
        assert_eq!(plan_join(&[], 5), Err(MembershipError::EmptyRing));
    }

    #[test]
    fn leave_hands_the_whole_range_to_the_successor() {
        let plan = plan_leave(&[10, 50, 90], 50).unwrap();
        assert_eq!(plan.target, 90);
        assert_eq!((plan.range_start, plan.range_end), (10, 50));
    }

    #[test]
    fn leave_of_the_largest_id_wraps_to_the_smallest() {
        let plan = plan_leave(&[10, 50, 90], 90).unwrap();
        assert_eq!(plan.target, 10);
        assert_eq!((plan.range_start, plan.range_end), (50, 90));
    }

    #[test]
    fn leave_of_two_peer_ring_degenerates_to_full_takeover() {
        let plan = plan_leave(&[10, 90], 90).unwrap();
        assert_eq!(plan.target, 10);
        assert_eq!((plan.range_start, plan.range_end), (10, 90));
    }

    #[test]
    fn leave_rejects_unknown_and_last_peer() {
        assert_eq!(
            plan_leave(&[10, 50], 99),
            Err(MembershipError::UnknownPeer(99))
        );
        assert_eq!(plan_leave(&[10], 10), Err(MembershipError::LastPeer));
    }

    #[test]
    fn join_then_leave_round_trips_the_range() {
        // A peer joining and then gracefully leaving gives the source its
        // exact old range back (merge undoes split).
        let ring = [10u64, 50, 90];
        let join = plan_join(&ring, 30).unwrap();
        let after_join = [10u64, 30, 50, 90];
        let leave = plan_leave(&after_join, 30).unwrap();
        assert_eq!(leave.target, join.source);
        assert_eq!(
            merge_ranges(
                (leave.range_start, leave.range_end),
                (leave.range_end, leave.target)
            ),
            Some((10, 50)),
            "the source's range is whole again"
        );
    }
}
