//! Crash-recovery property tests of the hand-off protocol.
//!
//! The protocol is executed against two real journaled engines and
//! interrupted at every phase boundary (and with the in-flight bundle lost);
//! both directories are then recovered read-only, and two safety properties
//! must hold at **every** interruption point:
//!
//! 1. **No currency loss.** For every `(hash, key)` record the source held
//!    before the transfer, the maximum stamp recoverable across the two
//!    directories is at least the original stamp — a retrieve driven off the
//!    recovered replicas can always observe the latest committed timestamp,
//!    so the indirect re-initialization of Section 4.2.2 never regresses.
//! 2. **No counter overshoot.** No durable counter image anywhere exceeds
//!    the value the source last generated for that key — a recovered or
//!    transferred counter can never stamp "into the future" and shadow a
//!    later legitimate update.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use rdht_core::kts::{IndirectObservation, KtsNode};
use rdht_core::{DurableState, ReplicaValue, Timestamp};
use rdht_hashing::{HashFamily, HashId, Key};
use rdht_storage::{FsyncPolicy, StorageEngine, StorageOptions};

use crate::transfer::{commit_handoff, export_handoff, install_handoff};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rdht-membership-prop-{}-{}-{tag}",
        std::process::id(),
        // relaxed: uniqueness needs only RMW atomicity, no ordering.
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Phase boundary at which the "crash" interrupts the protocol.
#[derive(Clone, Copy, Debug)]
enum Interrupt {
    Export,
    Install,
    Commit,
}

proptest! {
    #[test]
    fn handoff_interrupted_at_any_phase_recovers_safely(
        gens in proptest::collection::vec(1u64..5, 1..6),
        range_seed in any::<u64>(),
        interrupt_code in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let interrupt = match interrupt_code {
            0 => Interrupt::Export,
            1 => Interrupt::Install,
            _ => Interrupt::Commit,
        };
        let family = HashFamily::new(3, seed);
        let src_dir = temp_dir("src");
        let dst_dir = temp_dir("dst");
        let options = StorageOptions::with_fsync(FsyncPolicy::Never);
        let mut src = StorageEngine::open(&src_dir, options).unwrap();
        let mut src_kts = KtsNode::new(false);
        let mut dst = StorageEngine::open(&dst_dir, options).unwrap();
        let mut dst_kts = KtsNode::new(false);

        // Populate the source: per key, `gens[i]` generated timestamps and
        // one replica per hash function stamped with the latest.
        let mut truth: Vec<(HashId, Key, Timestamp)> = Vec::new();
        let mut last_generated: Vec<(Key, Timestamp)> = Vec::new();
        for (i, &n) in gens.iter().enumerate() {
            let key = Key::new(format!("doc-{i}"));
            let mut latest = Timestamp::ZERO;
            for _ in 0..n {
                latest = src_kts
                    .gen_ts_with(&key, IndirectObservation::nothing, &mut src)
                    .timestamp;
            }
            last_generated.push((key.clone(), latest));
            for h in 0..family.num_replication() {
                let hash = HashId(h as u32);
                let position = family.eval(hash, &key);
                let value = ReplicaValue::new(vec![i as u8; 8], latest);
                src.record_replica_put(hash, &key, &value, position);
                truth.push((hash, key.clone(), latest));
            }
        }

        // A pseudo-random interval; every shape (covering, missing,
        // wrapping, degenerate-full-ring) occurs across cases.
        let range_start = range_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let range_end = range_seed.rotate_left(17) ^ 0x5bd1_e995;

        // Drive the protocol up to the interruption point.
        let bundle = export_handoff(&mut src, &mut src_kts, &family, range_start, range_end);
        match interrupt {
            Interrupt::Export => {
                // Bundle lost in flight.
            }
            Interrupt::Install => {
                install_handoff(&mut dst, &mut dst_kts, bundle);
            }
            Interrupt::Commit => {
                install_handoff(&mut dst, &mut dst_kts, bundle);
                commit_handoff(&mut src, range_start, range_end);
            }
        }
        // Crash both sides: engines dropped without a final sync.
        drop(src);
        drop(dst);

        let (src_replicas, src_counters) = StorageEngine::recover(&src_dir).unwrap();
        let (dst_replicas, dst_counters) = StorageEngine::recover(&dst_dir).unwrap();

        // Property 1: no currency loss — every pre-transfer record is
        // recoverable somewhere with at least its original stamp.
        for (hash, key, stamp) in &truth {
            let best = [&src_replicas, &dst_replicas]
                .iter()
                .filter_map(|store| store.get(*hash, key).map(|r| r.stamp))
                .max();
            prop_assert!(
                best == Some(*stamp),
                "{hash:?}/{key:?}: expected recoverable stamp {stamp:?}, got {best:?} \
                 (interrupt {interrupt:?}, range ({range_start:#x}, {range_end:#x}])"
            );
        }

        // Property 2: no counter overshoot — no durable counter image
        // anywhere exceeds the last generated timestamp for its key.
        for (key, latest) in &last_generated {
            for counters in [&src_counters, &dst_counters] {
                if let Some(value) = counters.value(key) {
                    prop_assert!(
                        value <= *latest,
                        "{key:?}: durable counter {value:?} exceeds last generated {latest:?}"
                    );
                }
            }
        }

        // Sharper phase-specific claims.
        match interrupt {
            Interrupt::Export => {
                // Rollback: the source still holds every replica.
                prop_assert_eq!(src_replicas.len(), truth.len());
            }
            Interrupt::Install | Interrupt::Commit => {
                // Completion: the destination holds every moved replica at
                // the original stamp, and every transferred counter at the
                // exported value.
                for (hash, key, stamp) in &truth {
                    let position = family.eval(*hash, key);
                    if rdht_overlay::in_open_closed_interval(range_start, range_end, position) {
                        let got = dst_replicas.get(*hash, key).map(|r| r.stamp);
                        prop_assert_eq!(got, Some(*stamp));
                    }
                }
                for (key, latest) in &last_generated {
                    let ts_position = family.eval_timestamp(key);
                    if rdht_overlay::in_open_closed_interval(range_start, range_end, ts_position) {
                        prop_assert_eq!(dst_counters.value(key), Some(*latest));
                    }
                }
            }
        }

        let _ = std::fs::remove_dir_all(&src_dir);
        let _ = std::fs::remove_dir_all(&dst_dir);
    }
}
