//! Core value types: timestamps and stamped replicas.

use std::fmt;

/// A KTS logical timestamp.
///
/// Timestamps are per-key: two timestamps generated for the *same* key are
/// totally ordered (monotonicity, Definition 2 of the paper); timestamps of
/// different keys are not comparable in any meaningful way.
///
/// The paper generates timestamps from a large local counter ("e.g. 128
/// bits" to avoid overflow). We use a `u64`, which allows ~1.8 × 10^19
/// updates per key — far beyond anything a deployment can produce — while
/// keeping replicas compact. `Timestamp::ZERO` is reserved to mean "no
/// timestamp has been generated for this key yet".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The sentinel "no timestamp generated yet".
    pub const ZERO: Timestamp = Timestamp(0);

    /// Whether this is the "no timestamp yet" sentinel.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The next timestamp (used when a counter is bumped).
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts:{}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// A stamped replica — the `newData = {data, timestamp}` pair the paper
/// stores at `rsp(k, h)` for every replication hash function `h`
/// (Section 3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaValue {
    /// The application payload.
    pub data: Vec<u8>,
    /// The KTS timestamp the payload was inserted with.
    pub timestamp: Timestamp,
}

impl ReplicaValue {
    /// Creates a stamped replica.
    pub fn new(data: Vec<u8>, timestamp: Timestamp) -> Self {
        ReplicaValue { data, timestamp }
    }

    /// Whether this replica is newer than an optional other replica.
    pub fn is_newer_than(&self, other: Option<&ReplicaValue>) -> bool {
        match other {
            None => true,
            Some(other) => self.timestamp > other.timestamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_the_default_and_sentinel() {
        assert_eq!(Timestamp::default(), Timestamp::ZERO);
        assert!(Timestamp::ZERO.is_zero());
        assert!(!Timestamp(1).is_zero());
    }

    #[test]
    fn next_increments() {
        assert_eq!(Timestamp(7).next(), Timestamp(8));
        assert_eq!(Timestamp::ZERO.next(), Timestamp(1));
    }

    #[test]
    fn timestamps_order_numerically() {
        assert!(Timestamp(2) < Timestamp(10));
        assert!(Timestamp(10) > Timestamp(9));
    }

    #[test]
    fn replica_newer_comparison() {
        let old = ReplicaValue::new(b"v1".to_vec(), Timestamp(1));
        let new = ReplicaValue::new(b"v2".to_vec(), Timestamp(2));
        assert!(new.is_newer_than(Some(&old)));
        assert!(!old.is_newer_than(Some(&new)));
        assert!(old.is_newer_than(None));
        assert!(!old.is_newer_than(Some(&old)));
    }

    #[test]
    fn display_and_debug_show_value() {
        assert_eq!(Timestamp(5).to_string(), "5");
        assert_eq!(format!("{:?}", Timestamp(5)), "ts:5");
    }
}
