//! Configuration of the UMS/KTS deployment.

/// Deployment-wide parameters shared by every peer.
#[derive(Clone, Debug)]
pub struct UmsConfig {
    /// Number of replication hash functions `|Hr|` (Table 1 uses 10; the
    /// replica-count experiments of Figures 9–10 sweep 5–40).
    pub num_replicas: usize,
    /// Seed from which the shared hash family is derived; every peer must use
    /// the same value so responsibilities agree.
    pub hash_seed: u64,
    /// Whether the underlying DHT is *Responsibility Loss Unaware* (RLU,
    /// Section 4.3). In an RLU DHT a timestamping responsible cannot detect
    /// that it lost responsibility for a key while staying in the system, so
    /// KTS conservatively drops each counter right after generating a
    /// timestamp with it (forcing re-initialization on the next request).
    /// Chord and CAN as implemented here are RLA, so this defaults to false.
    pub rlu_mode: bool,
    /// How the indirect algorithm initializes a counter when it is triggered
    /// by a `last_ts` request (see [`LastTsInitPolicy`]).
    pub last_ts_init: LastTsInitPolicy,
}

/// Interpretation choice for indirect initialization on the `last_ts` path.
///
/// Figure 5 of the paper initializes a counter to `ts_m + 1` (one above the
/// largest timestamp observed among the replicas). That is the safe choice on
/// the `gen_ts` path: the *next generated* timestamp must exceed everything
/// ever generated. On the `last_ts` path, however, returning `ts_m + 1`
/// over-reports the last generated timestamp, which makes every subsequent
/// retrieve scan all replicas until the next update. The paper does not spell
/// out which value `last_ts` should use, so both interpretations are
/// available; the default (`ObservedMax`) keeps retrieve efficient after a
/// failover while remaining conservative on `gen_ts`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LastTsInitPolicy {
    /// Initialize the counter to the largest observed timestamp (`ts_m`).
    ObservedMax,
    /// Initialize the counter to `ts_m + 1`, exactly as Figure 5 does for the
    /// `gen_ts` path.
    ObservedMaxPlusOne,
}

impl Default for UmsConfig {
    fn default() -> Self {
        UmsConfig {
            num_replicas: 10,
            hash_seed: 0x5eed,
            rlu_mode: false,
            last_ts_init: LastTsInitPolicy::ObservedMax,
        }
    }
}

impl UmsConfig {
    /// A configuration matching Table 1 of the paper (`|Hr| = 10`).
    pub fn table1() -> Self {
        UmsConfig::default()
    }

    /// Returns a copy with a different replica count (`|Hr|`), used by the
    /// Figure 9/10 sweeps.
    pub fn with_num_replicas(mut self, num_replicas: usize) -> Self {
        self.num_replicas = num_replicas;
        self
    }

    /// Returns a copy with RLU mode switched on or off.
    pub fn with_rlu_mode(mut self, rlu_mode: bool) -> Self {
        self.rlu_mode = rlu_mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_defaults() {
        let cfg = UmsConfig::table1();
        assert_eq!(cfg.num_replicas, 10);
        assert!(!cfg.rlu_mode);
    }

    #[test]
    fn builders_modify_single_fields() {
        let cfg = UmsConfig::default()
            .with_num_replicas(30)
            .with_rlu_mode(true);
        assert_eq!(cfg.num_replicas, 30);
        assert!(cfg.rlu_mode);
        assert_eq!(cfg.last_ts_init, LastTsInitPolicy::ObservedMax);
    }
}
