//! The durability interface of the UMS/KTS node state.
//!
//! Every piece of node state the paper's failure model touches — the stamped
//! replicas a peer stores and the per-key counters in its Valid Counter Set —
//! mutates through a small set of operations. [`DurableState`] is the journal
//! of those operations: an environment that wants peer state to survive a
//! crash plugs in a backend (such as `rdht-storage`'s write-ahead-logging
//! `StorageEngine`) and every accepted mutation is recorded *after* it is
//! applied in memory, in apply order, so replaying the journal from an empty
//! state rebuilds exactly the in-memory state.
//!
//! The default backend is [`NoDurability`], a zero-cost no-op: the purely
//! in-memory stores ([`crate::InMemoryDht`], the simulator's peers) journal
//! into it and behave exactly as before — a crash loses everything, which is
//! the paper's baseline failure model.
//!
//! Two invariants matter for correctness of replay:
//!
//! 1. hooks are invoked only for mutations that were *accepted* (a stale
//!    `put_replica` that lost the timestamp comparison is not journaled), so
//!    replay can apply every op unconditionally;
//! 2. counter hooks record the *resulting* counter value, not the delta, so
//!    replay is idempotent and a torn journal tail can only lose the newest
//!    suffix of mutations, never corrupt earlier ones.

use rdht_hashing::{HashId, Key};

use crate::types::{ReplicaValue, Timestamp};

/// Journal of accepted mutations to a peer's replica store and valid counter
/// set.
///
/// All methods default to no-ops so a backend only overrides the events it
/// persists. Hooks are infallible by design: they are invoked from hot,
/// otherwise-infallible paths (timestamp generation, replica writes); a
/// persistent backend that encounters an I/O error is expected to latch it
/// internally and surface it through its own health/sync API rather than
/// unwind the caller.
pub trait DurableState {
    /// A replica write for `(hash, key)` was accepted with `value`, stored at
    /// ring position `position` (the evaluation of `hash` on `key`).
    fn record_replica_put(
        &mut self,
        _hash: HashId,
        _key: &Key,
        _value: &ReplicaValue,
        _position: u64,
    ) {
    }

    /// The replica stored under `(hash, key)` was removed.
    fn record_replica_remove(&mut self, _hash: HashId, _key: &Key) {}

    /// The valid counter for `key` now holds `value` (covers initialization,
    /// increment and raise — the hook always reports the resulting value).
    fn record_counter_set(&mut self, _key: &Key, _value: Timestamp) {}

    /// The counter for `key` left the valid set (Rule 3, RLU invalidation, or
    /// the export half of a direct transfer).
    fn record_counter_remove(&mut self, _key: &Key) {}

    /// Every counter left the valid set at once (Rule 1: the peer re-joined).
    fn record_counters_cleared(&mut self) {}

    /// Responsibility for the ring interval `(start, end]` was handed away
    /// and every replica in it transferred out.
    fn record_range_transfer(&mut self, _start: u64, _end: u64) {}

    /// Flush everything journaled so far to stable storage. Called on
    /// graceful shutdown; a no-op for memory-only backends.
    fn sync_to_durable(&mut self) {}
}

/// The no-op durability backend: peer state lives in memory only and dies
/// with the process, exactly the paper's fail-stop model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoDurability;

impl DurableState for NoDurability {}

#[cfg(test)]
pub(crate) mod recording {
    //! A journal that records every hook invocation, used by tests to assert
    //! exactly which mutations the core paths report.

    use super::*;

    /// One recorded journal event.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Event {
        /// `record_replica_put`
        Put(HashId, Key, Timestamp, u64),
        /// `record_replica_remove`
        RemoveReplica(HashId, Key),
        /// `record_counter_set`
        SetCounter(Key, Timestamp),
        /// `record_counter_remove`
        RemoveCounter(Key),
        /// `record_counters_cleared`
        ClearCounters,
        /// `record_range_transfer`
        Transfer(u64, u64),
        /// `sync_to_durable`
        Sync,
    }

    /// Records hook invocations in order.
    #[derive(Clone, Debug, Default)]
    pub struct RecordingJournal {
        /// Events in invocation order.
        pub events: Vec<Event>,
    }

    impl DurableState for RecordingJournal {
        fn record_replica_put(
            &mut self,
            hash: HashId,
            key: &Key,
            value: &ReplicaValue,
            position: u64,
        ) {
            self.events
                .push(Event::Put(hash, key.clone(), value.timestamp, position));
        }

        fn record_replica_remove(&mut self, hash: HashId, key: &Key) {
            self.events.push(Event::RemoveReplica(hash, key.clone()));
        }

        fn record_counter_set(&mut self, key: &Key, value: Timestamp) {
            self.events.push(Event::SetCounter(key.clone(), value));
        }

        fn record_counter_remove(&mut self, key: &Key) {
            self.events.push(Event::RemoveCounter(key.clone()));
        }

        fn record_counters_cleared(&mut self) {
            self.events.push(Event::ClearCounters);
        }

        fn record_range_transfer(&mut self, start: u64, end: u64) {
            self.events.push(Event::Transfer(start, end));
        }

        fn sync_to_durable(&mut self) {
            self.events.push(Event::Sync);
        }
    }
}
