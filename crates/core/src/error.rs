//! Error types of the UMS/KTS layer.

use std::fmt;

/// Errors surfaced by UMS operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UmsError {
    /// The timestamping responsible for the key could not be reached, so no
    /// timestamp could be generated or read.
    KtsUnreachable {
        /// Human-readable reason from the environment (routing failure, peer
        /// crash mid-request, ...).
        reason: String,
    },
    /// The DHT lookup for a replica holder failed outright (the environment
    /// exhausted its routing/retry budget).
    LookupFailed {
        /// Human-readable reason from the environment.
        reason: String,
    },
    /// `insert` could not write a single replica (every `put_h` failed).
    NoReplicaWritten,
    /// The overlay has no live peers to serve the request.
    EmptyOverlay,
}

impl fmt::Display for UmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UmsError::KtsUnreachable { reason } => {
                write!(f, "timestamping responsible unreachable: {reason}")
            }
            UmsError::LookupFailed { reason } => write!(f, "DHT lookup failed: {reason}"),
            UmsError::NoReplicaWritten => write!(f, "insert failed to write any replica"),
            UmsError::EmptyOverlay => write!(f, "overlay has no live peers"),
        }
    }
}

impl std::error::Error for UmsError {}

impl UmsError {
    /// Convenience constructor for lookup failures.
    pub fn lookup(reason: impl Into<String>) -> Self {
        UmsError::LookupFailed {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for KTS failures.
    pub fn kts(reason: impl Into<String>) -> Self {
        UmsError::KtsUnreachable {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let e = UmsError::lookup("no route to responsible");
        assert!(e.to_string().contains("no route to responsible"));
        let e = UmsError::kts("timed out");
        assert!(e.to_string().contains("timed out"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(UmsError::NoReplicaWritten, UmsError::NoReplicaWritten);
        assert_ne!(UmsError::NoReplicaWritten, UmsError::EmptyOverlay);
    }
}
