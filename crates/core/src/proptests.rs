//! Property-based tests for the UMS/KTS core.

use proptest::prelude::*;

use rdht_hashing::Key;

use crate::kts::{IndirectObservation, KtsNode};
use crate::memory::InMemoryDht;
use crate::types::Timestamp;
use crate::{analysis, ums};

proptest! {
    /// Timestamps generated for the same key are strictly increasing, no
    /// matter how gen_ts and last_ts requests interleave (Definition 2 /
    /// Theorem 2).
    #[test]
    fn kts_timestamps_are_monotonic(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut node = KtsNode::new(false);
        let key = Key::new("k");
        let mut last_generated = Timestamp::ZERO;
        for is_gen in ops {
            if is_gen {
                let out = node.gen_ts(&key, IndirectObservation::nothing);
                prop_assert!(out.timestamp > last_generated);
                last_generated = out.timestamp;
            } else {
                let out = node.last_ts(
                    &key,
                    crate::config::LastTsInitPolicy::ObservedMax,
                    IndirectObservation::nothing,
                );
                prop_assert_eq!(out.timestamp, last_generated);
            }
        }
    }

    /// Monotonicity survives arbitrary responsibility hand-offs: counters move
    /// between peers by direct transfer (leave) or are re-initialized by the
    /// indirect algorithm against the last *committed* timestamp (failure,
    /// with at least one current replica reachable, i.e. the p_s case).
    #[test]
    fn monotonicity_survives_responsibility_changes(
        schedule in proptest::collection::vec((any::<bool>(), 1u8..6), 1..60),
    ) {
        let key = Key::new("k");
        let mut responsible = KtsNode::new(false);
        let mut last_generated = Timestamp::ZERO;
        for (fail, gens) in schedule {
            for _ in 0..gens {
                let committed = last_generated;
                let out = responsible.gen_ts(&key, || {
                    if committed.is_zero() {
                        IndirectObservation::nothing()
                    } else {
                        IndirectObservation::observed(committed)
                    }
                });
                prop_assert!(out.timestamp > last_generated);
                last_generated = out.timestamp;
            }
            if fail {
                // The responsible fails: the next responsible starts from an
                // empty VCS and will use the indirect observation above.
                responsible = KtsNode::new(false);
            } else {
                // Graceful leave: counters are transferred directly.
                let exported = responsible.export_counters_in_range(|_| true);
                let mut next = KtsNode::new(false);
                next.receive_transferred_counters(exported);
                responsible = next;
            }
        }
    }

    /// insert/retrieve round-trips through the in-memory DHT always return the
    /// most recently inserted value, for any number of updates and keys.
    #[test]
    fn retrieve_returns_last_insert(
        num_replicas in 1usize..20,
        seed in any::<u64>(),
        updates in proptest::collection::vec((0u8..5, proptest::collection::vec(any::<u8>(), 0..16)), 1..40),
    ) {
        let mut dht = InMemoryDht::new(num_replicas, seed);
        let mut latest: std::collections::HashMap<u8, Vec<u8>> = Default::default();
        for (key_index, payload) in updates {
            let key = Key::new(format!("key-{key_index}"));
            ums::insert(&mut dht, &key, payload.clone()).unwrap();
            latest.insert(key_index, payload);
        }
        for (key_index, expected) in latest {
            let key = Key::new(format!("key-{key_index}"));
            let got = ums::retrieve(&mut dht, &key).unwrap();
            prop_assert!(got.is_current);
            prop_assert_eq!(got.data.unwrap(), expected);
            prop_assert_eq!(got.replicas_probed, 1);
        }
    }

    /// Even when an arbitrary subset of replicas is rolled back or dropped,
    /// retrieve never returns data older than the most recent surviving
    /// replica, and when a current replica survives it is found and flagged.
    #[test]
    fn retrieve_never_returns_older_than_best_surviving(
        seed in any::<u64>(),
        damaged in proptest::collection::vec(any::<bool>(), 8),
        drop_instead in any::<bool>(),
    ) {
        let mut dht = InMemoryDht::new(8, seed);
        let key = Key::new("doc");
        ums::insert(&mut dht, &key, b"old".to_vec()).unwrap();
        ums::insert(&mut dht, &key, b"new".to_vec()).unwrap();
        let ids = dht.replication_ids_vec();
        let mut any_current_left = false;
        for (hash, damage) in ids.iter().zip(&damaged) {
            if *damage {
                if drop_instead {
                    dht.drop_replica(*hash, &key);
                } else {
                    dht.overwrite_replica(
                        *hash,
                        &key,
                        crate::types::ReplicaValue::new(b"old".to_vec(), Timestamp(1)),
                    );
                }
            } else {
                any_current_left = true;
            }
        }
        let got = ums::retrieve(&mut dht, &key).unwrap();
        if any_current_left {
            prop_assert!(got.is_current);
            prop_assert_eq!(got.data.unwrap(), b"new".to_vec());
        } else if !drop_instead {
            // All replicas stale: the most recent surviving value is "old".
            prop_assert!(!got.is_current);
            prop_assert_eq!(got.data.unwrap(), b"old".to_vec());
        } else {
            // Every replica dropped: nothing can be returned.
            prop_assert!(got.data.is_none());
        }
    }

    /// The measured number of probes in a controlled stale/current mix stays
    /// within the Equation 5 bound min(1/p_t, |Hr|).
    #[test]
    fn probe_counts_respect_eq5(
        seed in any::<u64>(),
        stale_mask in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let mut dht = InMemoryDht::new(10, seed);
        let key = Key::new("doc");
        ums::insert(&mut dht, &key, b"v1".to_vec()).unwrap();
        ums::insert(&mut dht, &key, b"v2".to_vec()).unwrap();
        let ids = dht.replication_ids_vec();
        let mut current = 0usize;
        for (hash, stale) in ids.iter().zip(&stale_mask) {
            if *stale {
                dht.overwrite_replica(
                    *hash,
                    &key,
                    crate::types::ReplicaValue::new(b"v1".to_vec(), Timestamp(1)),
                );
            } else {
                current += 1;
            }
        }
        let got = ums::retrieve(&mut dht, &key).unwrap();
        let p_t = current as f64 / 10.0;
        let bound = analysis::bounded_expectation(p_t, 10);
        // A single sample of X is always <= |Hr|; when p_t > 0 the worst case
        // is bounded by the position of the last stale prefix, which is <= Hr.
        prop_assert!(got.replicas_probed as f64 <= 10.0);
        if p_t == 0.0 {
            prop_assert_eq!(got.replicas_probed, 10);
        }
        prop_assert!(bound >= 1.0);
    }

    /// The closed-form expectations are internally consistent for all valid
    /// parameters.
    #[test]
    fn analysis_formulas_are_consistent(p_t in 0.0f64..=1.0, hr in 1usize..60) {
        let eq1 = analysis::expected_retrievals_eq1(p_t, hr);
        let exact = analysis::expected_probes_exact(p_t, hr);
        prop_assert!(exact + 1e-9 >= eq1);
        prop_assert!(exact <= hr as f64 + 1e-9);
        prop_assert!(eq1 <= analysis::theorem1_upper_bound(p_t) + 1e-9);
        let ps = analysis::indirect_success_probability(p_t, hr);
        prop_assert!((0.0..=1.0).contains(&ps));
    }
}
