//! The environment interface UMS operations are written against.

use rdht_hashing::{HashId, Key};

use crate::error::UmsError;
use crate::types::{ReplicaValue, Timestamp};

/// Everything UMS needs from the DHT it runs on (Section 3 of the paper:
/// "UMS only requires the DHT's lookup service with `put_h` and `get_h`
/// operations", plus the two KTS operations).
///
/// Implementations:
///
/// * [`crate::InMemoryDht`] — a single-process map, used in doctests, unit
///   tests and the quickstart example;
/// * `rdht_sim::SimulatedAccess` — cost-accounting access to the simulated
///   Chord overlay (every call is priced in simulated latency and messages);
/// * `rdht_net::ClusterClient` — real message exchange with threaded peers.
///
/// The `&mut self` receivers exist because implementations mutate their
/// environment: the simulator advances clocks and repairs routing state, the
/// threaded client consumes its sockets.
pub trait UmsAccess {
    /// Asks the timestamping responsible `rsp(k, h_ts)` to generate a fresh
    /// timestamp for `key` (KTS `gen_ts`).
    fn kts_gen_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError>;

    /// Asks the timestamping responsible for the last timestamp generated for
    /// `key` (KTS `last_ts`). Returns [`Timestamp::ZERO`] when no timestamp
    /// has ever been generated.
    fn kts_last_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError>;

    /// Stores a stamped replica at `rsp(k, h)` (the DHT `put_h` operation).
    /// The receiving peer keeps the write only if the timestamp is newer than
    /// what it already holds.
    fn put_replica(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &ReplicaValue,
    ) -> Result<(), UmsError>;

    /// Reads the replica stored at `rsp(k, h)` (the DHT `get_h` operation).
    /// `Ok(None)` means the responsible peer holds no replica for the key.
    fn get_replica(&mut self, hash: HashId, key: &Key) -> Result<Option<ReplicaValue>, UmsError>;

    /// Stores the stamped replica at `rsp(k, h)` for **every** replication
    /// hash function `h ∈ Hr` — the whole fan-out half of one insert as a
    /// single operation. The default loops [`UmsAccess::put_replica`];
    /// implementations that talk to remote peers override it to group the
    /// puts by responsible peer and ship one batched message per peer
    /// instead of one per hash. Per-put failures are absorbed into the
    /// outcome's `failed` count rather than aborting the fan-out — an
    /// insert succeeds as long as *some* replica was written.
    fn put_replicas(&mut self, key: &Key, value: &ReplicaValue) -> PutReplicasOutcome {
        let mut outcome = PutReplicasOutcome::default();
        for hash in self.replication_ids() {
            match self.put_replica(hash, key, value) {
                Ok(()) => outcome.written += 1,
                Err(_) => outcome.failed += 1,
            }
        }
        outcome
    }

    /// Number of replication hash functions, `|Hr|`.
    fn replication_count(&self) -> usize;

    /// The ids of the replication hash functions `Hr`, in the order retrieve
    /// should probe them: `HashId(0)..HashId(|Hr|)`. Allocation-free — the
    /// returned iterator is a counted range.
    fn replication_ids(&self) -> ReplicationIds {
        ReplicationIds::new(self.replication_count())
    }
}

/// Outcome of a batched replica fan-out ([`UmsAccess::put_replicas`]): how
/// many of the `|Hr|` puts were applied and how many were lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PutReplicasOutcome {
    /// Puts applied by a responsible peer.
    pub written: usize,
    /// Puts that reached no responsible peer.
    pub failed: usize,
}

/// Allocation-free iterator over the ids of the replication hash functions
/// `Hr`: `HashId(0), HashId(1), …, HashId(|Hr| − 1)`.
#[derive(Clone, Copy, Debug)]
pub struct ReplicationIds {
    next: u32,
    end: u32,
}

impl ReplicationIds {
    /// Iterator over the first `count` replication hash ids.
    pub fn new(count: usize) -> Self {
        ReplicationIds {
            next: 0,
            end: u32::try_from(count).expect("|Hr| fits in u32"),
        }
    }
}

impl Iterator for ReplicationIds {
    type Item = HashId;

    #[inline]
    fn next(&mut self) -> Option<HashId> {
        if self.next == self.end {
            return None;
        }
        let id = HashId(self.next);
        self.next += 1;
        Some(id)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.end - self.next) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ReplicationIds {}
