//! The paper's primary contribution: **UMS** (Update Management Service) and
//! **KTS** (Key-based Timestamping Service) for data currency in replicated
//! DHTs (Akbarinia, Pacitti, Valduriez — SIGMOD 2007).
//!
//! # Overview
//!
//! A DHT replicates each `(k, data)` pair at the peers responsible for `k`
//! under a set `Hr` of replication hash functions. Replicas drift apart when
//! peers miss updates (they were offline) or when updates race. UMS restores
//! a *currency* guarantee — `retrieve(k)` returns the latest replica — by
//! stamping every replica with a per-key, monotonically increasing logical
//! timestamp obtained from KTS:
//!
//! * [`ums::insert`] asks KTS for a fresh timestamp and writes
//!   `{data, ts}` to `rsp(k, h)` for every `h ∈ Hr`; receivers only keep the
//!   write if its timestamp is newer than what they hold, so concurrent
//!   inserts resolve deterministically to the one holding the latest
//!   timestamp.
//! * [`ums::retrieve`] asks KTS for the *last* timestamp generated for `k`
//!   and probes replicas one at a time, returning the first whose timestamp
//!   matches — on average fewer than `1/p_t` probes (Theorem 1, see
//!   [`analysis`]) — and falling back to the most recent replica seen when no
//!   current one is reachable.
//!
//! KTS generates the timestamps at the peer `rsp(k, h_ts)` using a local
//! counter per key, kept in a *Valid Counter Set* ([`kts::ValidCounterSet`]).
//! When responsibility for a key moves, the counter is re-initialized either
//! **directly** (the departing responsible hands its counters to its
//! neighbour — [`kts::KtsNode::export_counters_in_range`] /
//! [`kts::KtsNode::receive_transferred_counters`]) or **indirectly** (the new
//! responsible scans the replicas stored in the DHT —
//! [`kts::IndirectObservation`]), with recovery and periodic-inspection
//! fallbacks for the rare cases the indirect scan misses the latest
//! timestamp.
//!
//! This crate is *environment-agnostic*: it contains the full client- and
//! node-side logic but no networking. The discrete-event simulator
//! (`rdht-sim`) and the threaded deployment (`rdht-net`) both drive it
//! through the [`UmsAccess`] trait.
//!
//! # Quick example (in-memory access)
//!
//! ```
//! use rdht_core::{ums, InMemoryDht};
//! use rdht_hashing::Key;
//!
//! let mut dht = InMemoryDht::new(10, 42);
//! let key = Key::new("agenda:room-42");
//! ums::insert(&mut dht, &key, b"meeting at 10:00".to_vec()).unwrap();
//! ums::insert(&mut dht, &key, b"meeting moved to 11:00".to_vec()).unwrap();
//! let got = ums::retrieve(&mut dht, &key).unwrap();
//! assert!(got.is_current);
//! assert_eq!(got.data.unwrap(), b"meeting moved to 11:00".to_vec());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod analysis;
mod config;
pub mod durability;
mod error;
pub mod kts;
mod memory;
mod types;
pub mod ums;

pub use access::{PutReplicasOutcome, ReplicationIds, UmsAccess};
pub use config::{LastTsInitPolicy, UmsConfig};
pub use durability::{DurableState, NoDurability};
pub use error::UmsError;
pub use memory::InMemoryDht;
pub use types::{ReplicaValue, Timestamp};

#[cfg(test)]
mod proptests;
