//! Probabilistic cost analysis of UMS (Section 3.3 and 4.2.2 of the paper).
//!
//! The random variable `X` is the number of replicas `retrieve` probes before
//! finding a current one. With `p_t` the *probability of currency and
//! availability* at retrieval time (the fraction of the `|Hr|` replica slots
//! that hold a current, reachable replica), the paper derives:
//!
//! * `Prob(X = i) = p_t (1 − p_t)^(i−1)` — Equation (1);
//! * `E(X) < 1 / p_t` — Equation (4), stated as **Theorem 1**;
//! * `E(X) ≤ min(1/p_t, |Hr|)` — Equation (5);
//! * the indirect counter initialization succeeds with probability
//!   `p_s = 1 − (1 − p_t)^|Hr|` — Section 4.2.2.
//!
//! These closed forms are used by the Theorem 1 validation experiment, which
//! compares them against probe counts measured in the simulator.

/// Expected number of probed replicas per Equation (1): the truncated sum
/// `Σ_{i=1}^{|Hr|} i · p_t (1 − p_t)^(i−1)`.
///
/// This is exactly the series the paper writes down; it ignores the
/// probability mass of the "no current replica among the |Hr| slots" event
/// (see [`expected_probes_exact`] for the version that accounts for it).
///
/// `p_t` is clamped to `[0, 1]`. Returns 0 for `p_t == 0`.
pub fn expected_retrievals_eq1(p_t: f64, num_replicas: usize) -> f64 {
    let p = p_t.clamp(0.0, 1.0);
    (1..=num_replicas)
        .map(|i| (i as f64) * p * (1.0 - p).powi(i as i32 - 1))
        .sum()
}

/// Exact expected number of `get_h` calls issued by `retrieve`, including the
/// case where no current replica exists among the `|Hr|` slots and all of
/// them are probed:
/// `Σ_{i=1}^{|Hr|} i · p_t (1 − p_t)^(i−1) + |Hr| · (1 − p_t)^{|Hr|}`.
pub fn expected_probes_exact(p_t: f64, num_replicas: usize) -> f64 {
    let p = p_t.clamp(0.0, 1.0);
    expected_retrievals_eq1(p, num_replicas)
        + (num_replicas as f64) * (1.0 - p).powi(num_replicas as i32)
}

/// The Theorem 1 upper bound `E(X) < 1 / p_t` (Equation 4). Returns
/// `f64::INFINITY` when `p_t` is zero.
pub fn theorem1_upper_bound(p_t: f64) -> f64 {
    if p_t <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / p_t.min(1.0)
    }
}

/// Equation (5): `E(X) ≤ min(1/p_t, |Hr|)` — the number of probed replicas
/// can never exceed the number of replicas.
pub fn bounded_expectation(p_t: f64, num_replicas: usize) -> f64 {
    theorem1_upper_bound(p_t).min(num_replicas as f64)
}

/// Probability that the indirect initialization finds the latest timestamp:
/// `p_s = 1 − (1 − p_t)^|Hr|` (Section 4.2.2).
pub fn indirect_success_probability(p_t: f64, num_replicas: usize) -> f64 {
    let p = p_t.clamp(0.0, 1.0);
    1.0 - (1.0 - p).powi(num_replicas as i32)
}

/// Smallest number of replication hash functions needed for the indirect
/// algorithm to succeed with probability at least `target_ps`, given `p_t`.
///
/// The paper's example: with `p_t ≈ 30%`, 13 replication hash functions give
/// `p_s > 99%`.
pub fn replicas_for_indirect_success(p_t: f64, target_ps: f64) -> Option<usize> {
    let p = p_t.clamp(0.0, 1.0);
    let target = target_ps.clamp(0.0, 1.0);
    if target == 0.0 {
        return Some(0);
    }
    if p <= 0.0 {
        return None; // unreachable target: no replica is ever current
    }
    if p >= 1.0 {
        return Some(1);
    }
    // 1 - (1-p)^n >= target  <=>  n >= ln(1-target) / ln(1-p)
    let n = ((1.0 - target).ln() / (1.0 - p).ln()).ceil();
    if n.is_finite() {
        Some(n.max(1.0) as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_35_percent_gives_less_than_three() {
        // Section 3.3: "if at least 35% of available replicas are current then
        // the expected number of retrieved replicas is less than 3".
        let bound = theorem1_upper_bound(0.35);
        assert!(bound < 3.0, "1/0.35 = {bound}");
        let expected = expected_probes_exact(0.35, 10);
        assert!(expected < 3.0, "exact expectation {expected}");
    }

    #[test]
    fn eq1_is_below_the_theorem1_bound() {
        for &p in &[0.05, 0.1, 0.2, 0.35, 0.5, 0.8, 1.0] {
            for &hr in &[1usize, 5, 10, 20, 40] {
                let e = expected_retrievals_eq1(p, hr);
                assert!(
                    e < theorem1_upper_bound(p) + 1e-12,
                    "E={e} exceeds bound for p={p}, hr={hr}"
                );
            }
        }
    }

    #[test]
    fn exact_expectation_is_bounded_by_eq5() {
        for &p in &[0.01, 0.05, 0.1, 0.35, 0.9] {
            for &hr in &[1usize, 5, 10, 40] {
                let e = expected_probes_exact(p, hr);
                assert!(
                    e <= bounded_expectation(p, hr) + 1e-9,
                    "E={e} exceeds min(1/p, hr) for p={p}, hr={hr}"
                );
            }
        }
    }

    #[test]
    fn perfect_currency_needs_one_probe() {
        assert!((expected_probes_exact(1.0, 10) - 1.0).abs() < 1e-12);
        assert!((expected_retrievals_eq1(1.0, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_currency_probes_everything() {
        assert_eq!(expected_retrievals_eq1(0.0, 10), 0.0);
        assert!((expected_probes_exact(0.0, 10) - 10.0).abs() < 1e-12);
        assert_eq!(theorem1_upper_bound(0.0), f64::INFINITY);
        assert_eq!(bounded_expectation(0.0, 10), 10.0);
    }

    #[test]
    fn paper_example_13_replicas_exceed_99_percent_success() {
        // Section 4.2.2: "if the probability of currency and availability is
        // about 30%, then by using 13 replication hash functions, ps is more
        // than 99%".
        let ps = indirect_success_probability(0.30, 13);
        assert!(ps > 0.99, "p_s = {ps}");
        assert_eq!(replicas_for_indirect_success(0.30, 0.99), Some(13));
    }

    #[test]
    fn success_probability_grows_with_replicas() {
        let mut previous = 0.0;
        for hr in 1..=40 {
            let ps = indirect_success_probability(0.2, hr);
            assert!(ps >= previous);
            previous = ps;
        }
        assert!((indirect_success_probability(1.0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(indirect_success_probability(0.0, 40), 0.0);
    }

    #[test]
    fn replicas_for_success_edge_cases() {
        assert_eq!(replicas_for_indirect_success(0.0, 0.99), None);
        assert_eq!(replicas_for_indirect_success(1.0, 0.99), Some(1));
        assert_eq!(replicas_for_indirect_success(0.5, 0.0), Some(0));
        // Higher targets never require fewer replicas.
        let lo = replicas_for_indirect_success(0.25, 0.9).unwrap();
        let hi = replicas_for_indirect_success(0.25, 0.999).unwrap();
        assert!(hi >= lo);
    }
}
