//! A single-process, in-memory [`UmsAccess`] implementation.
//!
//! `InMemoryDht` behaves like a perfectly reliable DHT collapsed into one
//! process: every replica holder and the timestamping responsible are all
//! "reachable" as plain map entries. It exists for three purposes:
//!
//! * unit tests and doctests of the UMS/KTS algorithms, with knobs to inject
//!   failures (dropping replicas, failing puts/gets, crashing the
//!   timestamping state);
//! * the quickstart example, which demonstrates the API without pulling in
//!   the simulator;
//! * a correctness oracle in property tests — whatever the simulated or
//!   threaded deployments return can be compared against this reference.

use std::collections::{HashMap, HashSet};

use rdht_hashing::{HashFamily, HashId, Key};

use crate::access::UmsAccess;
use crate::config::LastTsInitPolicy;
use crate::durability::{DurableState, NoDurability};
use crate::error::UmsError;
use crate::kts::{IndirectObservation, KtsNode};
use crate::types::{ReplicaValue, Timestamp};

/// An in-memory DHT with UMS/KTS semantics (see the module docs).
///
/// Replicas are grouped per key (one small per-hash table each), mirroring
/// the indexed `PeerStore` of the overlay crate: lookups borrow the key, so
/// the probe path performs no key clones.
///
/// The second type parameter is the durability backend every accepted
/// mutation is journaled to. It defaults to [`NoDurability`] (state dies with
/// the value, the paper's fail-stop model); plugging in a persistent backend
/// such as `rdht_storage::StorageEngine` via [`InMemoryDht::with_durability`]
/// turns the same DHT into one whose replicas and counters survive a crash.
#[derive(Clone, Debug)]
pub struct InMemoryDht<D: DurableState = NoDurability> {
    family: HashFamily,
    replicas: HashMap<Key, Vec<(HashId, ReplicaValue)>>,
    kts: KtsNode,
    last_ts_policy: LastTsInitPolicy,
    fail_all_puts: bool,
    fail_puts_for: HashSet<HashId>,
    fail_gets_for: HashSet<HashId>,
    fail_kts: bool,
    durability: D,
}

impl InMemoryDht {
    /// Creates an in-memory DHT with `num_replicas` replication hash
    /// functions derived from `seed` and no durability (state is lost on
    /// drop).
    pub fn new(num_replicas: usize, seed: u64) -> Self {
        InMemoryDht::with_durability(num_replicas, seed, NoDurability)
    }
}

impl<D: DurableState> InMemoryDht<D> {
    /// Creates an in-memory DHT journaling every accepted mutation to
    /// `durability`.
    pub fn with_durability(num_replicas: usize, seed: u64, durability: D) -> Self {
        InMemoryDht {
            family: HashFamily::new(num_replicas, seed),
            replicas: HashMap::new(),
            kts: KtsNode::new(false),
            last_ts_policy: LastTsInitPolicy::ObservedMax,
            fail_all_puts: false,
            fail_puts_for: HashSet::new(),
            fail_gets_for: HashSet::new(),
            fail_kts: false,
            durability,
        }
    }

    /// Read access to the durability backend.
    pub fn durability(&self) -> &D {
        &self.durability
    }

    /// Mutable access to the durability backend (to sync it, inspect journal
    /// health, force a compaction, ...).
    pub fn durability_mut(&mut self) -> &mut D {
        &mut self.durability
    }

    /// Consumes the DHT, returning the durability backend — the in-memory
    /// state is dropped, which is exactly a crash when the backend is
    /// persistent.
    pub fn into_durability(self) -> D {
        self.durability
    }

    /// The hash family in use.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Replication hash ids as a vector (convenience for tests).
    pub fn replication_ids_vec(&self) -> Vec<HashId> {
        self.family.replication_ids().collect()
    }

    /// Number of replicas currently stored (across all keys and hash
    /// functions).
    pub fn stored_replicas(&self) -> usize {
        self.replicas.values().map(Vec::len).sum()
    }

    /// Overwrites a replica unconditionally — used by tests to fabricate
    /// stale replicas (as if the holder had missed updates). Journaled like
    /// any accepted write, so a persistent backend replays the fabricated
    /// state faithfully.
    pub fn overwrite_replica(&mut self, hash: HashId, key: &Key, value: ReplicaValue) {
        self.durability
            .record_replica_put(hash, key, &value, self.family.eval(hash, key));
        self.load_recovered_replica(hash, key, value);
    }

    /// Drops the replica stored under one hash function — as if its holder
    /// had failed and its memory were lost. Not journaled: the modelled
    /// failure loses the holder's durable state too.
    pub fn drop_replica(&mut self, hash: HashId, key: &Key) {
        if let Some(slots) = self.replicas.get_mut(key) {
            slots.retain(|(h, _)| *h != hash);
            if slots.is_empty() {
                self.replicas.remove(key);
            }
        }
    }

    /// Simulates a crash of the timestamping responsible: all counters are
    /// lost, and the next request will have to use the indirect
    /// initialization against whatever replicas remain. Not journaled — this
    /// models the *loss* of volatile state, not a graceful mutation.
    pub fn crash_timestamp_service(&mut self) {
        self.kts = KtsNode::new(false);
    }

    /// Re-loads a recovered replica into the store without journaling it
    /// (it is already durable — journaling it again would double it in the
    /// log). Used when rebuilding a DHT from `rdht-storage` recovered state.
    pub fn load_recovered_replica(&mut self, hash: HashId, key: &Key, value: ReplicaValue) {
        let slots = self.replicas.entry(key.clone()).or_default();
        match slots.iter_mut().find(|(h, _)| *h == hash) {
            Some((_, stored)) => *stored = value,
            None => slots.push((hash, value)),
        }
    }

    /// Access to the embedded KTS node (for assertions on VCS state).
    pub fn kts(&self) -> &KtsNode {
        &self.kts
    }

    /// Makes every `put_replica` fail (simulates a fully unreachable DHT for
    /// writes).
    pub fn fail_all_puts(&mut self, fail: bool) {
        self.fail_all_puts = fail;
    }

    /// Makes `put_replica` fail for the given hash functions only.
    pub fn fail_puts_for_hashes(&mut self, hashes: impl IntoIterator<Item = HashId>) {
        self.fail_puts_for = hashes.into_iter().collect();
    }

    /// Makes `get_replica` fail for the given hash functions only.
    pub fn fail_gets_for_hashes(&mut self, hashes: impl IntoIterator<Item = HashId>) {
        self.fail_gets_for = hashes.into_iter().collect();
    }

    /// Makes every KTS operation fail (simulates the timestamping responsible
    /// being unreachable, as opposed to crashed-and-restarted). Used to test
    /// the degraded retrieval path.
    pub fn fail_kts(&mut self, fail: bool) {
        self.fail_kts = fail;
    }

    fn indirect_observation(&self, key: &Key) -> IndirectObservation {
        let max = self
            .replicas
            .get(key)
            .and_then(|slots| slots.iter().map(|(_, v)| v.timestamp).max());
        match max {
            Some(ts) => IndirectObservation::observed(ts),
            None => IndirectObservation::nothing(),
        }
    }
}

impl<D: DurableState> UmsAccess for InMemoryDht<D> {
    fn kts_gen_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        if self.fail_kts {
            return Err(UmsError::lookup("timestamping peer unreachable (injected)"));
        }
        let observation = self.indirect_observation(key);
        Ok(self
            .kts
            .gen_ts_with(key, || observation, &mut self.durability)
            .timestamp)
    }

    fn kts_last_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        if self.fail_kts {
            return Err(UmsError::lookup("timestamping peer unreachable (injected)"));
        }
        let observation = self.indirect_observation(key);
        let policy = self.last_ts_policy;
        Ok(self
            .kts
            .last_ts_with(key, policy, || observation, &mut self.durability)
            .timestamp)
    }

    fn put_replica(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &ReplicaValue,
    ) -> Result<(), UmsError> {
        if self.fail_all_puts || self.fail_puts_for.contains(&hash) {
            return Err(UmsError::lookup("replica holder unreachable (injected)"));
        }
        let slots = self.replicas.entry(key.clone()).or_default();
        let accepted = match slots.iter_mut().find(|(h, _)| *h == hash) {
            Some((_, stored)) => {
                if value.timestamp > stored.timestamp {
                    *stored = value.clone();
                    true
                } else {
                    false
                }
            }
            None => {
                slots.push((hash, value.clone()));
                true
            }
        };
        if accepted {
            self.durability
                .record_replica_put(hash, key, value, self.family.eval(hash, key));
        }
        Ok(())
    }

    fn get_replica(&mut self, hash: HashId, key: &Key) -> Result<Option<ReplicaValue>, UmsError> {
        if self.fail_gets_for.contains(&hash) {
            return Err(UmsError::lookup("replica holder unreachable (injected)"));
        }
        Ok(self
            .replicas
            .get(key)
            .and_then(|slots| slots.iter().find(|(h, _)| *h == hash))
            .map(|(_, value)| value.clone()))
    }

    fn replication_count(&self) -> usize {
        self.family.num_replication()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ums;

    #[test]
    fn crash_of_timestamp_service_recovers_via_indirect_init() {
        let mut dht = InMemoryDht::new(10, 11);
        let key = Key::new("doc");
        ums::insert(&mut dht, &key, b"v1".to_vec()).unwrap();
        ums::insert(&mut dht, &key, b"v2".to_vec()).unwrap();
        dht.crash_timestamp_service();
        // The next retrieve re-initializes the counter from the replicas and
        // still returns the latest version.
        let got = ums::retrieve(&mut dht, &key).unwrap();
        assert_eq!(got.data.unwrap(), b"v2");
        assert!(got.is_current);
        // And the next insert keeps monotonicity: its timestamp exceeds v2's.
        let report = ums::insert(&mut dht, &key, b"v3".to_vec()).unwrap();
        assert!(report.timestamp > got.timestamp);
    }

    #[test]
    fn dropped_replicas_do_not_break_retrieve() {
        let mut dht = InMemoryDht::new(6, 12);
        let key = Key::new("doc");
        ums::insert(&mut dht, &key, b"v1".to_vec()).unwrap();
        let ids = dht.replication_ids_vec();
        for h in ids.iter().take(5) {
            dht.drop_replica(*h, &key);
        }
        let got = ums::retrieve(&mut dht, &key).unwrap();
        assert_eq!(got.data.unwrap(), b"v1");
        assert!(got.is_current);
        assert_eq!(got.replicas_probed, 6);
    }

    #[test]
    fn stored_replica_count_tracks_inserts() {
        let mut dht = InMemoryDht::new(4, 13);
        assert_eq!(dht.stored_replicas(), 0);
        ums::insert(&mut dht, &Key::new("a"), b"1".to_vec()).unwrap();
        ums::insert(&mut dht, &Key::new("b"), b"2".to_vec()).unwrap();
        assert_eq!(dht.stored_replicas(), 8);
        // Updating an existing key does not add replicas.
        ums::insert(&mut dht, &Key::new("a"), b"3".to_vec()).unwrap();
        assert_eq!(dht.stored_replicas(), 8);
    }

    #[test]
    fn kts_state_is_inspectable() {
        let mut dht = InMemoryDht::new(4, 14);
        let key = Key::new("doc");
        ums::insert(&mut dht, &key, b"v".to_vec()).unwrap();
        assert!(dht.kts().has_counter(&key));
        assert_eq!(dht.kts().counter_value(&key), Some(Timestamp(1)));
    }

    #[test]
    fn accepted_mutations_are_journaled_in_apply_order() {
        use crate::durability::recording::{Event, RecordingJournal};

        let mut dht = InMemoryDht::with_durability(3, 15, RecordingJournal::default());
        let key = Key::new("doc");
        ums::insert(&mut dht, &key, b"v1".to_vec()).unwrap();
        let events = dht.durability().events.clone();
        // One counter mutation (gen_ts), then one accepted put per replica.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0], Event::SetCounter(key.clone(), Timestamp(1)));
        for (i, hash) in dht.replication_ids().enumerate() {
            match &events[1 + i] {
                Event::Put(h, k, ts, position) => {
                    assert_eq!(*h, hash);
                    assert_eq!(k, &key);
                    assert_eq!(*ts, Timestamp(1));
                    assert_eq!(*position, dht.family().eval(hash, &key));
                }
                other => panic!("expected a put event, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejected_stale_puts_are_not_journaled() {
        use crate::durability::recording::RecordingJournal;

        let mut dht = InMemoryDht::with_durability(3, 16, RecordingJournal::default());
        let key = Key::new("doc");
        ums::insert(&mut dht, &key, b"v1".to_vec()).unwrap();
        ums::insert(&mut dht, &key, b"v2".to_vec()).unwrap();
        let journaled_before = dht.durability().events.len();
        // Replay a stale write: it must neither change state nor be journaled.
        let hash = dht.replication_ids_vec()[0];
        let stale = ReplicaValue::new(b"v1".to_vec(), Timestamp(1));
        dht.put_replica(hash, &key, &stale).unwrap();
        assert_eq!(dht.durability().events.len(), journaled_before);
        // Retrieval is also journal-free.
        ums::retrieve(&mut dht, &key).unwrap();
        assert_eq!(dht.durability().events.len(), journaled_before);
    }
}
