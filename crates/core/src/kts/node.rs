//! Node-side KTS logic: timestamp generation at the responsible of
//! timestamping.

use std::collections::BTreeMap;

use rdht_hashing::Key;

use crate::config::LastTsInitPolicy;
use crate::durability::{DurableState, NoDurability};
use crate::kts::vcs::ValidCounterSet;
use crate::types::Timestamp;

/// What an indirect counter initialization observed in the DHT: the largest
/// timestamp stored along with the key under any replication hash function,
/// or `None` when no replica (and hence no timestamp) was found
/// (Section 4.2.2, Figure 5).
///
/// The *cost* of producing the observation (`|Hr|` replica reads) is the
/// environment's business; the environment builds this value and hands it to
/// [`KtsNode::gen_ts`] / [`KtsNode::last_ts`] through the `observe` closure,
/// which is only invoked when an initialization is actually needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndirectObservation {
    /// Largest timestamp found among the key's replicas.
    pub max_observed: Option<Timestamp>,
}

impl IndirectObservation {
    /// No replica was found for the key.
    pub fn nothing() -> Self {
        IndirectObservation { max_observed: None }
    }

    /// A replica with the given maximum timestamp was found.
    pub fn observed(ts: Timestamp) -> Self {
        IndirectObservation {
            max_observed: Some(ts),
        }
    }
}

/// Result of serving a `gen_ts` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenTsOutcome {
    /// The freshly generated timestamp.
    pub timestamp: Timestamp,
    /// Whether the counter had to be initialized with the indirect algorithm
    /// (costing `|Hr|` replica reads) before generating.
    pub used_indirect_init: bool,
}

/// Result of serving a `last_ts` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LastTsOutcome {
    /// The last timestamp generated for the key ([`Timestamp::ZERO`] if none
    /// is known).
    pub timestamp: Timestamp,
    /// Whether the counter had to be initialized with the indirect algorithm.
    pub used_indirect_init: bool,
}

/// Counters of how much work a KTS node has performed; used by tests,
/// experiments and the ablation benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KtsStats {
    /// Timestamps generated (`gen_ts` requests served).
    pub timestamps_generated: u64,
    /// `last_ts` requests served.
    pub last_ts_served: u64,
    /// Counters received through the direct transfer.
    pub counters_received_directly: u64,
    /// Counters initialized with the indirect algorithm.
    pub indirect_initializations: u64,
    /// Counters corrected by recovery or periodic inspection.
    pub corrections: u64,
    /// Indirect initializations whose starting value was raised by a
    /// recovered durable counter (the recovery floor exceeded what the
    /// replica scan observed).
    pub recovery_floor_seeds: u64,
}

/// The KTS state of one peer: the valid counters for the keys it is currently
/// the responsible of timestamping for.
#[derive(Clone, Debug, Default)]
pub struct KtsNode {
    vcs: ValidCounterSet,
    rlu_mode: bool,
    stats: KtsStats,
    /// Per-key lower bounds recovered from a durable counter image
    /// ([`KtsNode::seed_recovery_floors`]). A recovered value is the last
    /// timestamp this peer *generated* for the key before it crashed — per
    /// Rule 1 it must not be resurrected into the VCS (another peer may have
    /// generated newer timestamps meanwhile), but it is a safe **lower
    /// bound**: the next indirect initialization takes
    /// `max(observed, recovered)` so the counter cannot regress even when
    /// every replica holder of the key crashed at once and the observation
    /// comes back empty (Section 4.2.2's corner case).
    recovery_floors: BTreeMap<Key, u64>,
}

impl KtsNode {
    /// Creates the KTS state of a peer that has just joined the system
    /// (Rule 1: the VCS starts empty).
    pub fn new(rlu_mode: bool) -> Self {
        KtsNode {
            vcs: ValidCounterSet::new(),
            rlu_mode,
            stats: KtsStats::default(),
            recovery_floors: BTreeMap::new(),
        }
    }

    /// Seeds per-key recovery floors from a recovered durable counter image.
    ///
    /// Called by a deployment right after crash recovery, **instead of**
    /// resurrecting the recovered values into the VCS (which Rule 1
    /// forbids). Each floor is consumed by the first initialization of its
    /// key — indirect (`gen_ts`/`last_ts`) or direct
    /// ([`KtsNode::receive_transferred_counters`]) — which takes
    /// `max(initialized value, floor)`. Duplicate seeds keep the largest
    /// value.
    pub fn seed_recovery_floors(&mut self, floors: impl IntoIterator<Item = (Key, Timestamp)>) {
        for (key, value) in floors {
            let entry = self.recovery_floors.entry(key).or_insert(0);
            *entry = (*entry).max(value.0);
        }
    }

    /// The pending recovery floor for `key`, if one was seeded and not yet
    /// consumed by an initialization.
    pub fn recovery_floor(&self, key: &Key) -> Option<Timestamp> {
        self.recovery_floors.get(key).map(|v| Timestamp(*v))
    }

    /// Removes and returns the pending recovery floors of every key selected
    /// by `covers` — the floor counterpart of
    /// [`KtsNode::export_counters_in_range`]. When responsibility for a
    /// range moves before the floors were consumed, they must travel with it
    /// (re-seeded at the new responsible via
    /// [`KtsNode::seed_recovery_floors`]), or the regression they guard
    /// against would reopen at the takeover peer.
    pub fn drain_recovery_floors(
        &mut self,
        mut covers: impl FnMut(&Key) -> bool,
    ) -> Vec<(Key, Timestamp)> {
        let keys: Vec<Key> = self
            .recovery_floors
            .keys()
            .filter(|key| covers(key))
            .cloned()
            .collect();
        keys.into_iter()
            .map(|key| {
                let value = self.recovery_floors.remove(&key).expect("key just listed");
                (key, Timestamp(value))
            })
            .collect()
    }

    /// Read-only access to the valid counter set.
    pub fn vcs(&self) -> &ValidCounterSet {
        &self.vcs
    }

    /// Work counters.
    pub fn stats(&self) -> KtsStats {
        self.stats
    }

    /// Whether a valid counter exists for `key`.
    pub fn has_counter(&self, key: &Key) -> bool {
        self.vcs.contains(key)
    }

    /// Current counter value for `key`, if valid.
    pub fn counter_value(&self, key: &Key) -> Option<Timestamp> {
        self.vcs.value(key)
    }

    /// Serves a `gen_ts(k)` request (Figure 4).
    ///
    /// If the counter for `key` is valid it is simply incremented. Otherwise
    /// the `observe` closure is invoked to run the indirect initialization
    /// (Figure 5): the counter starts at `ts_m + 1` where `ts_m` is the
    /// largest timestamp observed in the DHT (or at 0 when no replica
    /// exists), and is then incremented to produce the new timestamp.
    pub fn gen_ts(
        &mut self,
        key: &Key,
        observe: impl FnOnce() -> IndirectObservation,
    ) -> GenTsOutcome {
        self.gen_ts_with(key, observe, &mut NoDurability)
    }

    /// [`KtsNode::gen_ts`] with a durability journal: every counter mutation
    /// (the post-increment value, and the RLU invalidation when applicable)
    /// is recorded on `durable` after it is applied.
    pub fn gen_ts_with<D: DurableState + ?Sized>(
        &mut self,
        key: &Key,
        observe: impl FnOnce() -> IndirectObservation,
        durable: &mut D,
    ) -> GenTsOutcome {
        let mut used_indirect_init = false;
        if !self.vcs.contains(key) {
            let observation = observe();
            let mut initial = match observation.max_observed {
                Some(ts) => Timestamp(ts.0 + 1),
                None => Timestamp::ZERO,
            };
            // Seed with the recovered durable counter: it is the last
            // timestamp this peer generated before crashing, so the counter
            // must resume at least there even when the observation missed
            // every replica (all holders down at once).
            if let Some(floor) = self.recovery_floors.remove(key) {
                if floor > initial.0 {
                    initial = Timestamp(floor);
                    self.stats.recovery_floor_seeds += 1;
                }
            }
            self.vcs.initialize(key.clone(), initial);
            self.stats.indirect_initializations += 1;
            used_indirect_init = true;
        }
        let timestamp = self
            .vcs
            .increment(key)
            .expect("counter was just initialized or already valid");
        self.stats.timestamps_generated += 1;
        if self.rlu_mode {
            // In an RLU DHT the peer cannot detect responsibility loss, so it
            // conservatively assumes it lost responsibility right after
            // generating (Section 4.3) and invalidates the counter. The
            // generation itself is not journaled: the counter never rests at
            // the incremented value, and re-initialization is indirect anyway.
            self.vcs.remove(key);
            durable.record_counter_remove(key);
        } else {
            durable.record_counter_set(key, timestamp);
        }
        GenTsOutcome {
            timestamp,
            used_indirect_init,
        }
    }

    /// Serves a `last_ts(k)` request: like `gen_ts` but without incrementing
    /// the counter (Section 4.1.2).
    pub fn last_ts(
        &mut self,
        key: &Key,
        policy: LastTsInitPolicy,
        observe: impl FnOnce() -> IndirectObservation,
    ) -> LastTsOutcome {
        self.last_ts_with(key, policy, observe, &mut NoDurability)
    }

    /// [`KtsNode::last_ts`] with a durability journal: when the request has
    /// to initialize the counter, the initialized value is recorded on
    /// `durable`.
    pub fn last_ts_with<D: DurableState + ?Sized>(
        &mut self,
        key: &Key,
        policy: LastTsInitPolicy,
        observe: impl FnOnce() -> IndirectObservation,
        durable: &mut D,
    ) -> LastTsOutcome {
        let mut used_indirect_init = false;
        if !self.vcs.contains(key) {
            let observation = observe();
            let mut initial = match (observation.max_observed, policy) {
                (Some(ts), LastTsInitPolicy::ObservedMax) => ts,
                (Some(ts), LastTsInitPolicy::ObservedMaxPlusOne) => Timestamp(ts.0 + 1),
                (None, _) => Timestamp::ZERO,
            };
            // The recovered durable counter was genuinely generated; the
            // last timestamp reported for the key must not fall below it.
            if let Some(floor) = self.recovery_floors.remove(key) {
                if floor > initial.0 {
                    initial = Timestamp(floor);
                    self.stats.recovery_floor_seeds += 1;
                }
            }
            self.vcs.initialize(key.clone(), initial);
            self.stats.indirect_initializations += 1;
            used_indirect_init = true;
            durable.record_counter_set(key, initial);
        }
        let timestamp = self.vcs.value(key).unwrap_or(Timestamp::ZERO);
        self.stats.last_ts_served += 1;
        LastTsOutcome {
            timestamp,
            used_indirect_init,
        }
    }

    /// Direct transfer, receiving side: the previous responsible handed over
    /// the counters for keys this peer is now responsible for (Section
    /// 4.2.1). Each received counter becomes valid with the transferred
    /// value, unless a larger value is already known locally.
    pub fn receive_transferred_counters(
        &mut self,
        counters: impl IntoIterator<Item = (Key, Timestamp)>,
    ) {
        self.receive_transferred_counters_with(counters, &mut NoDurability)
    }

    /// [`KtsNode::receive_transferred_counters`] with a durability journal:
    /// every counter the transfer actually installed is recorded on
    /// `durable` (counters rejected because a larger value was already known
    /// are not).
    pub fn receive_transferred_counters_with<D: DurableState + ?Sized>(
        &mut self,
        counters: impl IntoIterator<Item = (Key, Timestamp)>,
        durable: &mut D,
    ) {
        for (key, value) in counters {
            // A pending recovery floor raises a transferred value that is
            // behind what this peer had already durably generated for the
            // key (possible when the transferrer initialized from a stale
            // replica set while this peer was down).
            let mut value = value;
            if let Some(floor) = self.recovery_floors.remove(&key) {
                if floor > value.0 {
                    value = Timestamp(floor);
                    self.stats.recovery_floor_seeds += 1;
                }
            }
            match self.vcs.value(&key) {
                Some(existing) if existing >= value => {}
                _ => {
                    durable.record_counter_set(&key, value);
                    self.vcs.initialize(key, value);
                }
            }
            self.stats.counters_received_directly += 1;
        }
    }

    /// Direct transfer, sending side: removes and returns the counters for
    /// every key selected by `covers` (the keys whose responsibility is being
    /// handed to the next responsible). Removing them also enforces Rule 3 on
    /// this peer.
    pub fn export_counters_in_range(
        &mut self,
        covers: impl FnMut(&Key) -> bool,
    ) -> Vec<(Key, Timestamp)> {
        self.export_counters_in_range_with(covers, &mut NoDurability)
    }

    /// [`KtsNode::export_counters_in_range`] with a durability journal: every
    /// exported (hence invalidated) counter is recorded as removed.
    pub fn export_counters_in_range_with<D: DurableState + ?Sized>(
        &mut self,
        covers: impl FnMut(&Key) -> bool,
        durable: &mut D,
    ) -> Vec<(Key, Timestamp)> {
        let exported = self.vcs.drain_where(covers);
        for (key, _) in &exported {
            durable.record_counter_remove(key);
        }
        exported
    }

    /// RLA enforcement of Rule 3 (Section 4.3): drops every counter whose key
    /// this peer is no longer responsible for. Returns how many counters were
    /// invalidated.
    pub fn drop_lost_responsibilities(
        &mut self,
        still_responsible: impl FnMut(&Key) -> bool,
    ) -> usize {
        self.drop_lost_responsibilities_with(still_responsible, &mut NoDurability)
    }

    /// [`KtsNode::drop_lost_responsibilities`] with a durability journal:
    /// every dropped counter is recorded as removed.
    pub fn drop_lost_responsibilities_with<D: DurableState + ?Sized>(
        &mut self,
        mut still_responsible: impl FnMut(&Key) -> bool,
        durable: &mut D,
    ) -> usize {
        let dropped = self.vcs.drain_where(|k| !still_responsible(k));
        for (key, _) in &dropped {
            durable.record_counter_remove(key);
        }
        dropped.len()
    }

    /// Rule 1: a peer that rejoins the system starts with an empty VCS.
    pub fn reset(&mut self) {
        self.reset_with(&mut NoDurability)
    }

    /// [`KtsNode::reset`] with a durability journal: the wholesale
    /// invalidation is recorded as a single clear event.
    pub fn reset_with<D: DurableState + ?Sized>(&mut self, durable: &mut D) {
        self.vcs.clear();
        durable.record_counters_cleared();
    }

    pub(crate) fn vcs_mut(&mut self) -> &mut ValidCounterSet {
        &mut self.vcs
    }

    pub(crate) fn note_correction(&mut self) {
        self.stats.corrections += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_observation() -> IndirectObservation {
        IndirectObservation::nothing()
    }

    #[test]
    fn gen_ts_is_monotonic_for_a_key() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        let mut previous = Timestamp::ZERO;
        for _ in 0..100 {
            let out = node.gen_ts(&k, no_observation);
            assert!(out.timestamp > previous);
            previous = out.timestamp;
        }
        assert_eq!(node.stats().timestamps_generated, 100);
        assert_eq!(node.stats().indirect_initializations, 1);
    }

    #[test]
    fn first_gen_ts_without_history_is_one() {
        let mut node = KtsNode::new(false);
        let out = node.gen_ts(&Key::new("fresh"), no_observation);
        assert_eq!(out.timestamp, Timestamp(1));
        assert!(out.used_indirect_init);
    }

    #[test]
    fn gen_ts_after_indirect_observation_exceeds_observed() {
        let mut node = KtsNode::new(false);
        let out = node.gen_ts(&Key::new("doc"), || {
            IndirectObservation::observed(Timestamp(41))
        });
        // Figure 5 initializes to ts_m + 1 = 42, gen_ts then increments to 43.
        assert_eq!(out.timestamp, Timestamp(43));
        assert!(out.timestamp > Timestamp(41));
        assert!(out.used_indirect_init);
    }

    #[test]
    fn second_gen_ts_does_not_invoke_observation() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.gen_ts(&k, no_observation);
        let out = node.gen_ts(&k, || {
            panic!("observation must not run for a valid counter")
        });
        assert!(!out.used_indirect_init);
    }

    #[test]
    fn last_ts_returns_last_generated_value() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        let generated = node.gen_ts(&k, no_observation).timestamp;
        let last = node.last_ts(&k, LastTsInitPolicy::ObservedMax, no_observation);
        assert_eq!(last.timestamp, generated);
        assert!(!last.used_indirect_init);
        assert_eq!(node.stats().last_ts_served, 1);
    }

    #[test]
    fn last_ts_for_unknown_key_initializes_from_observation() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        let out = node.last_ts(&k, LastTsInitPolicy::ObservedMax, || {
            IndirectObservation::observed(Timestamp(7))
        });
        assert_eq!(out.timestamp, Timestamp(7));
        assert!(out.used_indirect_init);
        // The counter is now valid; a later gen_ts continues from it.
        let gen = node.gen_ts(&k, || panic!("already valid"));
        assert_eq!(gen.timestamp, Timestamp(8));
    }

    #[test]
    fn last_ts_plus_one_policy_matches_figure_5() {
        let mut node = KtsNode::new(false);
        let out = node.last_ts(
            &Key::new("doc"),
            LastTsInitPolicy::ObservedMaxPlusOne,
            || IndirectObservation::observed(Timestamp(7)),
        );
        assert_eq!(out.timestamp, Timestamp(8));
    }

    #[test]
    fn last_ts_without_history_is_zero() {
        let mut node = KtsNode::new(false);
        let out = node.last_ts(
            &Key::new("ghost"),
            LastTsInitPolicy::ObservedMax,
            no_observation,
        );
        assert_eq!(out.timestamp, Timestamp::ZERO);
    }

    #[test]
    fn direct_transfer_preserves_continuity() {
        let mut old_responsible = KtsNode::new(false);
        let k = Key::new("doc");
        let mut last = Timestamp::ZERO;
        for _ in 0..5 {
            last = old_responsible.gen_ts(&k, no_observation).timestamp;
        }
        // Hand the counter to the next responsible (graceful leave).
        let exported = old_responsible.export_counters_in_range(|_| true);
        assert!(!old_responsible.has_counter(&k));
        let mut new_responsible = KtsNode::new(false);
        new_responsible.receive_transferred_counters(exported);
        assert_eq!(new_responsible.counter_value(&k), Some(last));
        let next = new_responsible.gen_ts(&k, || panic!("no indirect init needed"));
        assert_eq!(next.timestamp, Timestamp(last.0 + 1));
        assert_eq!(new_responsible.stats().counters_received_directly, 1);
    }

    #[test]
    fn transfer_does_not_downgrade_existing_counter() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.vcs_mut().initialize(k.clone(), Timestamp(10));
        node.receive_transferred_counters(vec![(k.clone(), Timestamp(3))]);
        assert_eq!(node.counter_value(&k), Some(Timestamp(10)));
        node.receive_transferred_counters(vec![(k.clone(), Timestamp(30))]);
        assert_eq!(node.counter_value(&k), Some(Timestamp(30)));
    }

    #[test]
    fn export_only_covers_selected_keys() {
        let mut node = KtsNode::new(false);
        node.gen_ts(&Key::new("a"), no_observation);
        node.gen_ts(&Key::new("b"), no_observation);
        let exported = node.export_counters_in_range(|k| k.as_bytes() == b"a");
        assert_eq!(exported.len(), 1);
        assert!(!node.has_counter(&Key::new("a")));
        assert!(node.has_counter(&Key::new("b")));
    }

    #[test]
    fn rla_rule_three_drops_lost_keys() {
        let mut node = KtsNode::new(false);
        node.gen_ts(&Key::new("mine"), no_observation);
        node.gen_ts(&Key::new("lost"), no_observation);
        let dropped = node.drop_lost_responsibilities(|k| k.as_bytes() == b"mine");
        assert_eq!(dropped, 1);
        assert!(node.has_counter(&Key::new("mine")));
        assert!(!node.has_counter(&Key::new("lost")));
    }

    #[test]
    fn rlu_mode_invalidates_counter_after_each_generation() {
        let mut node = KtsNode::new(true);
        let k = Key::new("doc");
        let first = node.gen_ts(&k, no_observation);
        assert!(!node.has_counter(&k));
        // The next generation must re-initialize; with the DHT still holding
        // the previous timestamp, monotonicity is preserved.
        let second = node.gen_ts(&k, || IndirectObservation::observed(first.timestamp));
        assert!(second.timestamp > first.timestamp);
        assert!(second.used_indirect_init);
    }

    #[test]
    fn reset_applies_rule_one() {
        let mut node = KtsNode::new(false);
        node.gen_ts(&Key::new("a"), no_observation);
        node.reset();
        assert!(node.vcs().is_empty());
    }

    #[test]
    fn recovery_floor_prevents_regression_when_observation_is_empty() {
        // The Section 4.2.2 corner case: the responsible crashed after
        // generating timestamp 5 and every replica holder crashed too, so
        // the indirect observation comes back empty. Without the floor, the
        // counter would restart at zero and re-issue timestamps 1..5.
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.seed_recovery_floors(vec![(k.clone(), Timestamp(5))]);
        assert_eq!(node.recovery_floor(&k), Some(Timestamp(5)));
        let out = node.gen_ts(&k, no_observation);
        assert_eq!(out.timestamp, Timestamp(6), "resumes after the floor");
        assert!(out.used_indirect_init);
        assert_eq!(node.stats().recovery_floor_seeds, 1);
        assert_eq!(node.recovery_floor(&k), None, "floor consumed");
    }

    #[test]
    fn recovery_floor_loses_to_a_fresher_observation() {
        // Another peer generated newer timestamps while this one was down:
        // the observation (10) beats the stale floor (5) and the floor does
        // not distort the normal Figure 5 arithmetic.
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.seed_recovery_floors(vec![(k.clone(), Timestamp(5))]);
        let out = node.gen_ts(&k, || IndirectObservation::observed(Timestamp(10)));
        assert_eq!(out.timestamp, Timestamp(12));
        assert_eq!(node.stats().recovery_floor_seeds, 0);
        assert_eq!(node.recovery_floor(&k), None, "still consumed");
    }

    #[test]
    fn last_ts_reports_at_least_the_recovery_floor() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.seed_recovery_floors(vec![(k.clone(), Timestamp(7))]);
        let out = node.last_ts(&k, LastTsInitPolicy::ObservedMax, || {
            IndirectObservation::observed(Timestamp(3))
        });
        assert_eq!(out.timestamp, Timestamp(7));
        assert_eq!(node.stats().recovery_floor_seeds, 1);
        // The now-valid counter continues monotonically.
        assert_eq!(node.gen_ts(&k, no_observation).timestamp, Timestamp(8));
    }

    #[test]
    fn recovery_floor_raises_a_stale_direct_transfer() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.seed_recovery_floors(vec![(k.clone(), Timestamp(9))]);
        node.receive_transferred_counters(vec![(k.clone(), Timestamp(4))]);
        assert_eq!(node.counter_value(&k), Some(Timestamp(9)));
        // A fresher transfer is untouched by an already-consumed floor.
        node.receive_transferred_counters(vec![(k.clone(), Timestamp(20))]);
        assert_eq!(node.counter_value(&k), Some(Timestamp(20)));
    }

    #[test]
    fn duplicate_floor_seeds_keep_the_largest() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.seed_recovery_floors(vec![(k.clone(), Timestamp(3))]);
        node.seed_recovery_floors(vec![(k.clone(), Timestamp(8)), (k.clone(), Timestamp(2))]);
        assert_eq!(node.recovery_floor(&k), Some(Timestamp(8)));
    }

    #[test]
    fn journaled_variants_record_resulting_counter_states() {
        use crate::durability::recording::{Event, RecordingJournal};

        let mut node = KtsNode::new(false);
        let mut journal = RecordingJournal::default();
        let k = Key::new("doc");

        let out = node.gen_ts_with(&k, no_observation, &mut journal);
        assert_eq!(out.timestamp, Timestamp(1));
        node.gen_ts_with(&k, no_observation, &mut journal);
        let exported = node.export_counters_in_range_with(|_| true, &mut journal);
        assert_eq!(exported.len(), 1);
        node.receive_transferred_counters_with(exported, &mut journal);
        node.reset_with(&mut journal);

        assert_eq!(
            journal.events,
            vec![
                Event::SetCounter(k.clone(), Timestamp(1)),
                Event::SetCounter(k.clone(), Timestamp(2)),
                Event::RemoveCounter(k.clone()),
                Event::SetCounter(k.clone(), Timestamp(2)),
                Event::ClearCounters,
            ]
        );
    }

    #[test]
    fn rejected_transfer_and_last_ts_on_valid_counter_journal_nothing() {
        use crate::durability::recording::RecordingJournal;

        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.vcs_mut().initialize(k.clone(), Timestamp(10));
        let mut journal = RecordingJournal::default();
        // Transfer loses against the larger local value: no journal entry.
        node.receive_transferred_counters_with(vec![(k.clone(), Timestamp(3))], &mut journal);
        // last_ts on a valid counter does not mutate it: no journal entry.
        node.last_ts_with(
            &k,
            LastTsInitPolicy::ObservedMax,
            no_observation,
            &mut journal,
        );
        assert!(journal.events.is_empty());
    }

    #[test]
    fn rlu_generation_journals_the_invalidation() {
        use crate::durability::recording::{Event, RecordingJournal};

        let mut node = KtsNode::new(true);
        let k = Key::new("doc");
        let mut journal = RecordingJournal::default();
        node.gen_ts_with(&k, no_observation, &mut journal);
        assert_eq!(journal.events, vec![Event::RemoveCounter(k.clone())]);
    }
}
