//! Recovery and periodic inspection (Section 4.2.2).
//!
//! The indirect algorithm initializes a counter from the replicas it can
//! reach; with probability `1 − p_s = (1 − p_t)^|Hr|` none of them is current
//! and the counter starts too low. The paper proposes two complementary
//! strategies for those rare cases, both implemented here:
//!
//! * **Recovery** — when the failed responsible of timestamping restarts, it
//!   sends the counters it still remembers to the new responsible, which
//!   corrects any counter that was initialized too low
//!   ([`KtsNode::reconcile_with_recovered_counters`]).
//! * **Periodic inspection** — a responsible that took over from a failed
//!   peer periodically compares its counters with the timestamps stored in
//!   the DHT and raises any counter found to be lower
//!   ([`KtsNode::inspect_key`]).
//!
//! Both return [`CounterCorrection`] records. A correction also tells the
//! environment that the data stored with the *latest value of the incorrect
//! counter* must be re-inserted under the corrected timestamp so that
//! replicas stamped with the bogus low timestamps cannot shadow newer data.

use rdht_hashing::Key;

use crate::kts::node::KtsNode;
use crate::types::Timestamp;

/// A counter correction performed by recovery or periodic inspection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterCorrection {
    /// The key whose counter was corrected.
    pub key: Key,
    /// The (incorrect) value the counter had before the correction.
    pub previous: Timestamp,
    /// The value the counter was raised to.
    pub corrected_to: Timestamp,
}

impl KtsNode {
    /// Recovery strategy: the previously failed responsible restarted and
    /// sent `recovered` — the counters it had generated before failing. Any
    /// local counter that is lower is corrected; counters for keys this node
    /// has not initialized yet are adopted as-is.
    ///
    /// Returns the corrections applied, so the environment can re-insert the
    /// data that had been stored with the incorrect counter values.
    pub fn reconcile_with_recovered_counters(
        &mut self,
        recovered: impl IntoIterator<Item = (Key, Timestamp)>,
    ) -> Vec<CounterCorrection> {
        let mut corrections = Vec::new();
        for (key, recovered_value) in recovered {
            match self.vcs().value(&key) {
                None => {
                    // The new responsible had not initialized this counter at
                    // all; adopting the recovered value is strictly safe.
                    self.vcs_mut().initialize(key, recovered_value);
                }
                Some(current) if current < recovered_value => {
                    self.vcs_mut().raise_to(&key, recovered_value);
                    self.note_correction();
                    corrections.push(CounterCorrection {
                        key,
                        previous: current,
                        corrected_to: recovered_value,
                    });
                }
                Some(_) => {}
            }
        }
        corrections
    }

    /// Periodic inspection step for one key: compare the local counter with
    /// the largest timestamp currently stored in the DHT (`observed_max`,
    /// gathered by the environment by reading the key's replicas) and raise
    /// the counter if it is behind.
    pub fn inspect_key(&mut self, key: &Key, observed_max: Timestamp) -> Option<CounterCorrection> {
        let current = self.vcs().value(key)?;
        if current >= observed_max {
            return None;
        }
        self.vcs_mut().raise_to(key, observed_max);
        self.note_correction();
        Some(CounterCorrection {
            key: key.clone(),
            previous: current,
            corrected_to: observed_max,
        })
    }

    /// Runs [`KtsNode::inspect_key`] over every valid counter, with the
    /// environment supplying the observed maximum per key. Returns all
    /// corrections applied.
    pub fn periodic_inspection(
        &mut self,
        mut observe: impl FnMut(&Key) -> Option<Timestamp>,
    ) -> Vec<CounterCorrection> {
        let keys: Vec<Key> = self.vcs().iter().map(|(k, _)| k.clone()).collect();
        let mut corrections = Vec::new();
        for key in keys {
            if let Some(observed) = observe(&key) {
                if let Some(correction) = self.inspect_key(&key, observed) {
                    corrections.push(correction);
                }
            }
        }
        corrections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kts::node::IndirectObservation;

    #[test]
    fn recovery_corrects_low_counters() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        // Indirect init observed only a stale replica (ts=3): counter = 4,
        // first generated = 5.
        node.gen_ts(&k, || IndirectObservation::observed(Timestamp(3)));
        // The failed responsible restarts knowing it had generated ts=9.
        let corrections = node.reconcile_with_recovered_counters(vec![(k.clone(), Timestamp(9))]);
        assert_eq!(corrections.len(), 1);
        assert_eq!(corrections[0].corrected_to, Timestamp(9));
        assert_eq!(node.counter_value(&k), Some(Timestamp(9)));
        // The next generated timestamp is now safely above 9.
        let next = node.gen_ts(&k, || panic!("valid counter"));
        assert_eq!(next.timestamp, Timestamp(10));
        assert_eq!(node.stats().corrections, 1);
    }

    #[test]
    fn recovery_ignores_counters_that_are_already_ahead() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.gen_ts(&k, || IndirectObservation::observed(Timestamp(20)));
        let corrections = node.reconcile_with_recovered_counters(vec![(k.clone(), Timestamp(5))]);
        assert!(corrections.is_empty());
        assert!(node.counter_value(&k).unwrap() > Timestamp(20));
    }

    #[test]
    fn recovery_adopts_unknown_counters_silently() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        let corrections = node.reconcile_with_recovered_counters(vec![(k.clone(), Timestamp(7))]);
        assert!(corrections.is_empty(), "adoption is not a correction");
        assert_eq!(node.counter_value(&k), Some(Timestamp(7)));
    }

    #[test]
    fn inspection_raises_lagging_counter() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.gen_ts(&k, || IndirectObservation::observed(Timestamp(2)));
        let correction = node.inspect_key(&k, Timestamp(15)).unwrap();
        assert_eq!(correction.previous, Timestamp(4));
        assert_eq!(correction.corrected_to, Timestamp(15));
        assert_eq!(node.counter_value(&k), Some(Timestamp(15)));
    }

    #[test]
    fn inspection_of_up_to_date_counter_is_noop() {
        let mut node = KtsNode::new(false);
        let k = Key::new("doc");
        node.gen_ts(&k, || IndirectObservation::observed(Timestamp(10)));
        assert!(node.inspect_key(&k, Timestamp(5)).is_none());
        assert!(node
            .inspect_key(&Key::new("unknown"), Timestamp(5))
            .is_none());
    }

    #[test]
    fn periodic_inspection_covers_all_counters() {
        let mut node = KtsNode::new(false);
        node.gen_ts(&Key::new("a"), || {
            IndirectObservation::observed(Timestamp(1))
        });
        node.gen_ts(&Key::new("b"), || {
            IndirectObservation::observed(Timestamp(1))
        });
        let corrections = node.periodic_inspection(|k| {
            if k.as_bytes() == b"a" {
                Some(Timestamp(50))
            } else {
                None
            }
        });
        assert_eq!(corrections.len(), 1);
        assert_eq!(corrections[0].key, Key::new("a"));
        assert_eq!(node.counter_value(&Key::new("a")), Some(Timestamp(50)));
    }
}
