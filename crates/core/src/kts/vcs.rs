//! The Valid Counter Set (VCS).

use std::collections::BTreeMap;

use rdht_hashing::Key;

use crate::types::Timestamp;

/// The set of *valid* per-key counters a timestamping responsible maintains
/// (Section 4.1.2).
///
/// A counter `c_{p,k}` is in the set exactly while peer `p` is responsible
/// for `k` wrt `h_ts` *and* the counter has been initialized. The paper's
/// three rules are enforced by the owning [`crate::kts::KtsNode`]:
///
/// 1. the set is empty when the peer joins the system;
/// 2. a counter is added when it is initialized;
/// 3. a counter is removed when the peer loses responsibility for its key.
///
/// The paper asks for a data structure with fast per-key search (it suggests
/// a binary search tree) and for memory to be released when counters leave
/// the set; a `BTreeMap` gives both.
#[derive(Clone, Debug, Default)]
pub struct ValidCounterSet {
    counters: BTreeMap<Key, u64>,
}

impl ValidCounterSet {
    /// Creates an empty set (Rule 1).
    pub fn new() -> Self {
        ValidCounterSet {
            counters: BTreeMap::new(),
        }
    }

    /// Number of valid counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the set holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Whether a counter for `key` is valid.
    pub fn contains(&self, key: &Key) -> bool {
        self.counters.contains_key(key)
    }

    /// Current value of the counter for `key`, if valid.
    pub fn value(&self, key: &Key) -> Option<Timestamp> {
        self.counters.get(key).map(|v| Timestamp(*v))
    }

    /// Initializes (or overwrites) the counter for `key` (Rule 2).
    pub fn initialize(&mut self, key: Key, value: Timestamp) {
        self.counters.insert(key, value.0);
    }

    /// Increments the counter for `key` and returns the new value — the
    /// timestamp-generation step. Returns `None` if the counter is not valid.
    pub fn increment(&mut self, key: &Key) -> Option<Timestamp> {
        self.counters.get_mut(key).map(|v| {
            *v += 1;
            Timestamp(*v)
        })
    }

    /// Raises the counter for `key` to at least `value` (used by the recovery
    /// and periodic-inspection strategies). Returns the previous value if the
    /// counter existed and was raised.
    pub fn raise_to(&mut self, key: &Key, value: Timestamp) -> Option<Timestamp> {
        match self.counters.get_mut(key) {
            Some(v) if *v < value.0 => {
                let previous = Timestamp(*v);
                *v = value.0;
                Some(previous)
            }
            _ => None,
        }
    }

    /// Removes the counter for `key` (Rule 3), returning its last value.
    pub fn remove(&mut self, key: &Key) -> Option<Timestamp> {
        self.counters.remove(key).map(Timestamp)
    }

    /// Removes every counter (Rule 1, applied when the peer rejoins).
    pub fn clear(&mut self) {
        self.counters.clear();
    }

    /// Removes every counter whose key does not satisfy `still_responsible`,
    /// returning the removed `(key, value)` pairs. This is the RLA
    /// enforcement of Rule 3 (Section 4.3) and the export step of the direct
    /// transfer (Section 4.2.1): the removed counters can be shipped to the
    /// next responsible.
    pub fn drain_where(
        &mut self,
        mut should_drain: impl FnMut(&Key) -> bool,
    ) -> Vec<(Key, Timestamp)> {
        let keys: Vec<Key> = self
            .counters
            .keys()
            .filter(|k| should_drain(k))
            .cloned()
            .collect();
        keys.into_iter()
            .map(|k| {
                let v = self.counters.remove(&k).expect("key just listed");
                (k, Timestamp(v))
            })
            .collect()
    }

    /// Iterates over the valid counters.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, Timestamp)> {
        self.counters.iter().map(|(k, v)| (k, Timestamp(*v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_set_is_empty() {
        let vcs = ValidCounterSet::new();
        assert!(vcs.is_empty());
        assert_eq!(vcs.len(), 0);
        assert!(!vcs.contains(&Key::new("a")));
    }

    #[test]
    fn initialize_then_increment() {
        let mut vcs = ValidCounterSet::new();
        let k = Key::new("doc");
        vcs.initialize(k.clone(), Timestamp(5));
        assert_eq!(vcs.value(&k), Some(Timestamp(5)));
        assert_eq!(vcs.increment(&k), Some(Timestamp(6)));
        assert_eq!(vcs.increment(&k), Some(Timestamp(7)));
        assert_eq!(vcs.value(&k), Some(Timestamp(7)));
    }

    #[test]
    fn increment_of_missing_counter_is_none() {
        let mut vcs = ValidCounterSet::new();
        assert_eq!(vcs.increment(&Key::new("missing")), None);
    }

    #[test]
    fn raise_to_only_raises() {
        let mut vcs = ValidCounterSet::new();
        let k = Key::new("doc");
        vcs.initialize(k.clone(), Timestamp(5));
        assert_eq!(vcs.raise_to(&k, Timestamp(3)), None);
        assert_eq!(vcs.value(&k), Some(Timestamp(5)));
        assert_eq!(vcs.raise_to(&k, Timestamp(9)), Some(Timestamp(5)));
        assert_eq!(vcs.value(&k), Some(Timestamp(9)));
        assert_eq!(vcs.raise_to(&Key::new("missing"), Timestamp(1)), None);
    }

    #[test]
    fn remove_returns_last_value() {
        let mut vcs = ValidCounterSet::new();
        let k = Key::new("doc");
        vcs.initialize(k.clone(), Timestamp(2));
        assert_eq!(vcs.remove(&k), Some(Timestamp(2)));
        assert_eq!(vcs.remove(&k), None);
        assert!(vcs.is_empty());
    }

    #[test]
    fn drain_where_partitions_by_predicate() {
        let mut vcs = ValidCounterSet::new();
        vcs.initialize(Key::new("a"), Timestamp(1));
        vcs.initialize(Key::new("b"), Timestamp(2));
        vcs.initialize(Key::new("c"), Timestamp(3));
        let drained = vcs.drain_where(|k| k.as_bytes() != b"b");
        assert_eq!(drained.len(), 2);
        assert_eq!(vcs.len(), 1);
        assert!(vcs.contains(&Key::new("b")));
        assert!(drained
            .iter()
            .any(|(k, v)| k == &Key::new("a") && *v == Timestamp(1)));
        assert!(drained
            .iter()
            .any(|(k, v)| k == &Key::new("c") && *v == Timestamp(3)));
    }

    #[test]
    fn clear_applies_rule_one() {
        let mut vcs = ValidCounterSet::new();
        vcs.initialize(Key::new("a"), Timestamp(1));
        vcs.clear();
        assert!(vcs.is_empty());
    }

    #[test]
    fn iter_yields_all_counters() {
        let mut vcs = ValidCounterSet::new();
        vcs.initialize(Key::new("a"), Timestamp(1));
        vcs.initialize(Key::new("b"), Timestamp(2));
        let collected: Vec<_> = vcs.iter().map(|(k, v)| (k.clone(), v)).collect();
        assert_eq!(collected.len(), 2);
    }
}
