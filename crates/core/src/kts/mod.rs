//! KTS — the Key-based Timestamping Service (Section 4 of the paper).
//!
//! For every key `k` the peer `rsp(k, h_ts)` is the *responsible of
//! timestamping*: it owns a local counter `c_{p,k}` and serves two requests:
//!
//! * `gen_ts(k)` — increments the counter and returns its value; at most one
//!   timestamp is generated per key at a time and timestamps for the same key
//!   are monotonically increasing (Definition 2 / Theorem 2);
//! * `last_ts(k)` — returns the counter value without incrementing it.
//!
//! Counters live in a **Valid Counter Set** ([`ValidCounterSet`]) governed by
//! the paper's three rules: it is empty when a peer (re)joins, a counter is
//! added when it is initialized, and a counter is removed when the peer loses
//! responsibility for its key.
//!
//! When responsibility moves, the new responsible initializes its counter:
//!
//! * **directly** — the departing responsible hands the counters for the
//!   moved keys to its neighbour
//!   ([`KtsNode::export_counters_in_range`] → [`KtsNode::receive_transferred_counters`]),
//!   an O(1)-message transfer possible because in Chord and CAN the next
//!   responsible is always a neighbour of the current one (Section 4.2.1.1);
//! * **indirectly** — after a failure, by scanning the replicas stored in the
//!   DHT under the replication hash functions and taking the largest
//!   timestamp observed ([`IndirectObservation`], Section 4.2.2), backed by
//!   the **recovery** and **periodic inspection** strategies
//!   ([`KtsNode::reconcile_with_recovered_counters`], [`KtsNode::inspect_key`])
//!   for the rare cases where no current replica was reachable.

mod node;
mod recovery;
mod vcs;

pub use node::{GenTsOutcome, IndirectObservation, KtsNode, KtsStats, LastTsOutcome};
pub use recovery::CounterCorrection;
pub use vcs::ValidCounterSet;
