//! Property-based tests for the overlay crate.
//!
//! The central property: the indexed [`PeerStore`] (per-key record tables +
//! position-sorted secondary index) is observationally equivalent to the
//! plain `HashMap<(HashId, Key), Record>` it replaced, under arbitrary
//! sequences of `put` / `get` / `remove` / `drain_range` /
//! `max_stamp_for_key` operations.

use std::collections::HashMap;

use proptest::prelude::*;

use rdht_hashing::{HashId, Key};

use crate::id::in_open_closed_interval;
use crate::store::{PeerStore, Record, WritePolicy};

/// Reference model: the pre-index flat-map implementation of the store.
#[derive(Default)]
struct ModelStore {
    entries: HashMap<(HashId, Key), Record>,
}

impl ModelStore {
    fn put(&mut self, hash: HashId, key: Key, record: Record, policy: WritePolicy) -> bool {
        use std::collections::hash_map::Entry;
        match self.entries.entry((hash, key)) {
            Entry::Vacant(v) => {
                v.insert(record);
                true
            }
            Entry::Occupied(mut o) => match policy {
                WritePolicy::Overwrite => {
                    o.insert(record);
                    true
                }
                WritePolicy::KeepNewest => {
                    if record.stamp > o.get().stamp {
                        o.insert(record);
                        true
                    } else {
                        false
                    }
                }
            },
        }
    }

    fn get(&self, hash: HashId, key: &Key) -> Option<&Record> {
        self.entries.get(&(hash, key.clone()))
    }

    fn remove(&mut self, hash: HashId, key: &Key) -> Option<Record> {
        self.entries.remove(&(hash, key.clone()))
    }

    fn drain_range(&mut self, range_start: u64, range_end: u64) -> Vec<(HashId, Key, Record)> {
        let moving: Vec<(HashId, Key)> = self
            .entries
            .iter()
            .filter(|(_, rec)| in_open_closed_interval(range_start, range_end, rec.position))
            .map(|((h, k), _)| (*h, k.clone()))
            .collect();
        moving
            .into_iter()
            .map(|(h, k)| {
                let rec = self.entries.remove(&(h, k.clone())).expect("key just seen");
                (h, k, rec)
            })
            .collect()
    }

    fn max_stamp_for_key(&self, key: &Key) -> Option<u64> {
        self.entries
            .iter()
            .filter(|((_, k), _)| k == key)
            .map(|(_, rec)| rec.stamp)
            .max()
    }
}

/// One record flattened to plain comparable data: hash id, key bytes, stamp,
/// position, payload.
type FlatRecord = (u32, Vec<u8>, u64, u64, Vec<u8>);

/// Canonical, order-independent rendering of a drained record set.
fn canonical(mut moved: Vec<(HashId, Key, Record)>) -> Vec<FlatRecord> {
    moved.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    moved
        .into_iter()
        .map(|(h, k, r)| (h.0, k.as_bytes().to_vec(), r.stamp, r.position, r.payload))
        .collect()
}

/// Canonical rendering of a full store via its iterator.
fn canonical_contents(store: &PeerStore) -> Vec<FlatRecord> {
    let mut all: Vec<_> = store
        .iter()
        .map(|(h, k, r)| {
            (
                h.0,
                k.as_bytes().to_vec(),
                r.stamp,
                r.position,
                r.payload.clone(),
            )
        })
        .collect();
    all.sort();
    all
}

fn canonical_model(model: &ModelStore) -> Vec<FlatRecord> {
    let mut all: Vec<_> = model
        .entries
        .iter()
        .map(|((h, k), r)| {
            (
                h.0,
                k.as_bytes().to_vec(),
                r.stamp,
                r.position,
                r.payload.clone(),
            )
        })
        .collect();
    all.sort();
    all
}

/// Positions are drawn from 16 points spread over the full ring, so that
/// drain intervals (drawn from the same lattice) regularly cover, miss and
/// wrap around stored records.
fn lattice(point: u8) -> u64 {
    u64::from(point % 16)
        .wrapping_mul(u64::MAX / 16)
        .wrapping_add(u64::from(point) << 3)
}

proptest! {
    /// The indexed store and the flat-map model agree on every observable
    /// result of every operation, for arbitrary op sequences.
    #[test]
    fn indexed_store_is_observationally_equivalent(
        ops in proptest::collection::vec(
            ((0u8..6, 0u8..5, 0u8..4), (0u64..6, 0u8..32, 0u8..32)),
            0..120,
        ),
    ) {
        let mut store = PeerStore::new();
        let mut model = ModelStore::default();
        for ((op, key_id, hash_id), (stamp, a, b)) in ops {
            let key = Key::new(format!("key-{key_id}"));
            let hash = HashId(u32::from(hash_id));
            match op {
                // put, both policies
                0 | 1 => {
                    let policy = if op == 0 {
                        WritePolicy::KeepNewest
                    } else {
                        WritePolicy::Overwrite
                    };
                    let record = Record {
                        payload: vec![key_id, hash_id, stamp as u8],
                        stamp,
                        position: lattice(a),
                    };
                    let modified = store.put(hash, key.clone(), record.clone(), policy);
                    let model_modified = model.put(hash, key, record, policy);
                    prop_assert_eq!(modified, model_modified);
                }
                // get
                2 => {
                    prop_assert_eq!(store.get(hash, &key), model.get(hash, &key));
                }
                // remove
                3 => {
                    prop_assert_eq!(store.remove(hash, &key), model.remove(hash, &key));
                }
                // max_stamp_for_key
                4 => {
                    prop_assert_eq!(store.max_stamp_for_key(&key), model.max_stamp_for_key(&key));
                }
                // drain_range (including degenerate and wrapped intervals)
                _ => {
                    let (start, end) = (lattice(a), lattice(b));
                    let moved = store.drain_range(start, end);
                    let model_moved = model.drain_range(start, end);
                    prop_assert_eq!(canonical(moved), canonical(model_moved));
                }
            }
            prop_assert_eq!(store.len(), model.entries.len());
            prop_assert_eq!(store.is_empty(), model.entries.is_empty());
        }
        prop_assert_eq!(canonical_contents(&store), canonical_model(&model));
    }

    /// Draining the full ring in two complementary intervals moves every
    /// record exactly once, regardless of where the cut lands.
    #[test]
    fn complementary_drains_partition_the_store(
        records in proptest::collection::vec(
            ((0u8..8, 0u8..4), (0u64..100, 0u8..32)),
            1..60,
        ),
        cut in any::<u64>(),
    ) {
        let mut store = PeerStore::new();
        let mut model = ModelStore::default();
        for ((key_id, hash_id), (stamp, position)) in records {
            let key = Key::new(format!("key-{key_id}"));
            let record = Record {
                payload: vec![key_id],
                stamp,
                position: lattice(position),
            };
            store.put(HashId(u32::from(hash_id)), key.clone(), record.clone(), WritePolicy::Overwrite);
            model.put(HashId(u32::from(hash_id)), key, record, WritePolicy::Overwrite);
        }
        let total = store.len();
        prop_assume!(total > 0);
        let other = cut.wrapping_add(u64::MAX / 2);
        let first = store.drain_range(cut, other);
        let second = store.drain_range(other, cut);
        prop_assert_eq!(first.len() + second.len(), total);
        prop_assert!(store.is_empty());
        let mut both = first;
        both.extend(second);
        let mut model_both = model.drain_range(cut, other);
        model_both.extend(model.drain_range(other, cut));
        prop_assert_eq!(canonical(both), canonical(model_both));
    }

    /// `drain_range` followed by `bulk_load` of the drained records restores
    /// the original store exactly — the invariant the membership hand-off
    /// relies on when a transfer is rolled back (or replayed) after a crash.
    #[test]
    fn drain_then_bulk_load_round_trips(
        records in proptest::collection::vec(
            ((0u8..8, 0u8..4), (0u64..100, 0u8..32)),
            0..60,
        ),
        start in 0u8..32,
        end in 0u8..32,
    ) {
        let mut store = PeerStore::new();
        for ((key_id, hash_id), (stamp, position)) in records {
            store.put(
                HashId(u32::from(hash_id)),
                Key::new(format!("key-{key_id}")),
                Record {
                    payload: vec![key_id, stamp as u8],
                    stamp,
                    position: lattice(position),
                },
                WritePolicy::Overwrite,
            );
        }
        let original = canonical_contents(&store);
        let original_snapshot = store.snapshot();
        // Drain an arbitrary interval (covering, empty, wrapped or the
        // degenerate full ring) and load the drained records straight back.
        let moved = store.drain_range(lattice(start), lattice(end));
        let moved_count = moved.len();
        let loaded = store.bulk_load(moved);
        prop_assert_eq!(loaded, moved_count);
        prop_assert_eq!(store.len(), original_snapshot.len());
        prop_assert_eq!(canonical_contents(&store), original);
        // The rebuilt index is equivalent too: the deterministic snapshot
        // (position-index order) is identical to the original's.
        prop_assert_eq!(store.snapshot(), original_snapshot);
    }
}
