//! Structured overlay networks (Chord and CAN) for the replicated-DHT
//! currency stack.
//!
//! The paper's Update Management Service and Key-based Timestamping Service
//! sit on top of a plain DHT offering a lookup service plus `put_h`/`get_h`
//! operations (Section 2.1). The authors implemented Chord themselves for the
//! evaluation and discuss CAN when proving the neighbour-handoff property
//! needed by the direct counter-initialization algorithm (Section 4.2.1.1).
//!
//! This crate provides both overlays from scratch:
//!
//! * [`chord::ChordNetwork`] — an m=64-bit Chord ring with successor lists,
//!   finger tables, protocol-accurate joins, graceful leaves, fail-stop
//!   failures, periodic stabilization and iterative lookups that account for
//!   hops and timeouts.
//! * [`can::CanNetwork`] — a d-dimensional CAN space with zone splitting on
//!   join, zone takeover on leave/failure and greedy coordinate routing.
//!
//! Both implement the [`Overlay`] trait. Routing returns [`LookupOutcome`]
//! cost records; membership changes return [`MembershipOutcome`] records whose
//! [`ResponsibilityChange`] entries drive replica transfer (normal DHT key
//! hand-off) and the direct counter-transfer algorithm of KTS.
//!
//! The overlays model *stale routing state*: failed peers are only purged from
//! successor lists and finger tables by later stabilization rounds (or lazily
//! when a lookup times out on them), which is what degrades lookup cost as the
//! failure rate grows in the paper's Figure 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod can;
pub mod chord;
mod cost;
mod id;
mod store;
mod traits;

#[cfg(test)]
mod proptests;

pub use cost::{
    LookupError, LookupOutcome, MembershipEventKind, MembershipOutcome, ResponsibilityChange,
    StabilizeOutcome,
};
pub use id::{
    distance_clockwise, in_open_closed_interval, in_open_open_interval, merge_ranges, split_range,
    NodeId,
};
pub use store::{PeerStore, Record, WritePolicy};
pub use traits::{Overlay, OverlayKind};
