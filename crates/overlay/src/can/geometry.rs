//! CAN coordinate-space geometry: Morton-coded canonical zones.

/// A point of the 2-dimensional CAN coordinate space, with 32-bit
/// coordinates per dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CanPoint {
    /// X coordinate.
    pub x: u32,
    /// Y coordinate.
    pub y: u32,
}

impl CanPoint {
    /// Decodes a 64-bit Morton (Z-order) code into its two coordinates.
    ///
    /// Bit `63` of the code is bit `31` of `x`, bit `62` is bit `31` of `y`,
    /// bit `61` is bit `30` of `x`, and so on.
    pub fn from_code(code: u64) -> Self {
        let mut x = 0u32;
        let mut y = 0u32;
        for i in 0..32 {
            x |= (((code >> (2 * i + 1)) & 1) as u32) << i;
            y |= (((code >> (2 * i)) & 1) as u32) << i;
        }
        CanPoint { x, y }
    }

    /// Re-encodes the point into its Morton code.
    pub fn to_code(self) -> u64 {
        let mut code = 0u64;
        for i in 0..32 {
            code |= (((self.x >> i) & 1) as u64) << (2 * i + 1);
            code |= (((self.y >> i) & 1) as u64) << (2 * i);
        }
        code
    }
}

/// A CAN zone: a canonical cell of the 2-d space produced by repeatedly
/// halving along alternating dimensions.
///
/// A zone of `level` ℓ fixes the top ℓ bits of the Morton code, so it covers
/// the contiguous code range `[prefix, prefix + 2^(64-ℓ))`. Geometrically it
/// is an axis-aligned rectangle whose x-extent fixes `ceil(ℓ/2)` high bits
/// and whose y-extent fixes `floor(ℓ/2)` high bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CanZone {
    prefix: u64,
    level: u8,
}

impl CanZone {
    /// The zone covering the entire coordinate space.
    pub fn full_space() -> Self {
        CanZone {
            prefix: 0,
            level: 0,
        }
    }

    /// Creates a zone from a prefix and level, normalizing the prefix (bits
    /// below the level are cleared).
    pub fn new(prefix: u64, level: u8) -> Self {
        assert!(level <= 64, "zone level cannot exceed 64");
        let normalized = if level == 0 {
            0
        } else {
            prefix & (!0u64 << (64 - u32::from(level)))
        };
        CanZone {
            prefix: normalized,
            level,
        }
    }

    /// Split depth of the zone (0 = whole space).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// First Morton code covered by the zone.
    pub fn start(&self) -> u64 {
        self.prefix
    }

    /// Number of Morton codes covered, as a u128 (the full space covers 2^64).
    pub fn extent(&self) -> u128 {
        1u128 << (64 - u32::from(self.level))
    }

    /// Number of covered codes as a wrapping u64 (0 encodes 2^64).
    pub fn extent_u64(&self) -> u64 {
        if self.level == 0 {
            0
        } else {
            1u64 << (64 - u32::from(self.level))
        }
    }

    /// Last Morton code covered by the zone.
    pub fn end_inclusive(&self) -> u64 {
        self.prefix.wrapping_add(self.extent_u64().wrapping_sub(1))
    }

    /// Whether a Morton code falls inside the zone.
    pub fn contains(&self, code: u64) -> bool {
        if self.level == 0 {
            true
        } else {
            (code >> (64 - u32::from(self.level))) == (self.prefix >> (64 - u32::from(self.level)))
        }
    }

    /// Splits the zone in half. Returns `(kept, given)` where `given` is the
    /// half containing `toward` (the joining node's chosen point) and `kept`
    /// the other half. Returns `None` when the zone is a single code and can
    /// no longer be split.
    pub fn split(&self, toward: u64) -> Option<(CanZone, CanZone)> {
        if self.level >= 64 {
            return None;
        }
        let child_level = self.level + 1;
        let low = CanZone::new(self.prefix, child_level);
        let high = CanZone::new(
            self.prefix | (1u64 << (63 - u32::from(self.level))),
            child_level,
        );
        if high.contains(toward) {
            Some((low, high))
        } else {
            Some((high, low))
        }
    }

    /// The rectangle covered by the zone: `(x0, y0, width, height)` with
    /// 33-bit-safe u64 widths (the full space has width 2^32).
    pub fn rect(&self) -> (u64, u64, u64, u64) {
        let point = CanPoint::from_code(self.prefix);
        let x_bits = u32::from(self.level).div_ceil(2);
        let y_bits = u32::from(self.level) / 2;
        let width = 1u64 << (32 - x_bits);
        let height = 1u64 << (32 - y_bits);
        let x0 = u64::from(point.x) & !(width - 1);
        let y0 = u64::from(point.y) & !(height - 1);
        (x0, y0, width, height)
    }

    /// Whether two zones share a (positive-length) border segment. Zones that
    /// only touch at a corner are not adjacent, matching CAN's definition of
    /// neighbors (zones overlapping in d−1 dimensions and abutting in one).
    pub fn is_adjacent(&self, other: &CanZone) -> bool {
        let (ax, ay, aw, ah) = self.rect();
        let (bx, by, bw, bh) = other.rect();
        let x_touch = ax + aw == bx || bx + bw == ax;
        let y_touch = ay + ah == by || by + bh == ay;
        let x_overlap = ax < bx + bw && bx < ax + aw;
        let y_overlap = ay < by + bh && by < ay + ah;
        (x_touch && y_overlap) || (y_touch && x_overlap)
    }

    /// Squared Euclidean distance from the zone's rectangle to a point
    /// (zero if the point lies inside).
    pub fn distance_sq_to(&self, point: CanPoint) -> u128 {
        let (x0, y0, w, h) = self.rect();
        let px = u64::from(point.x);
        let py = u64::from(point.y);
        let dx = if px < x0 {
            x0 - px
        } else if px >= x0 + w {
            px - (x0 + w - 1)
        } else {
            0
        };
        let dy = if py < y0 {
            y0 - py
        } else if py >= y0 + h {
            py - (y0 + h - 1)
        } else {
            0
        };
        (dx as u128) * (dx as u128) + (dy as u128) * (dy as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton_roundtrip() {
        for code in [0u64, 1, 42, u64::MAX, 0x1234_5678_9abc_def0] {
            assert_eq!(CanPoint::from_code(code).to_code(), code);
        }
    }

    #[test]
    fn full_space_contains_everything() {
        let z = CanZone::full_space();
        assert!(z.contains(0));
        assert!(z.contains(u64::MAX));
        assert_eq!(z.extent(), 1u128 << 64);
        assert_eq!(z.end_inclusive(), u64::MAX);
        let (x0, y0, w, h) = z.rect();
        assert_eq!((x0, y0), (0, 0));
        assert_eq!((w, h), (1 << 32, 1 << 32));
    }

    #[test]
    fn split_produces_disjoint_cover() {
        let z = CanZone::full_space();
        let (kept, given) = z.split(u64::MAX).unwrap();
        assert_eq!(kept.extent() + given.extent(), z.extent());
        assert!(given.contains(u64::MAX));
        assert!(!kept.contains(u64::MAX));
        assert!(kept.contains(0));
        // The two halves split the x dimension (level 1 fixes one x bit).
        let (_, _, wk, hk) = kept.rect();
        assert_eq!(wk, 1 << 31);
        assert_eq!(hk, 1 << 32);
    }

    #[test]
    fn split_alternates_dimensions() {
        let z = CanZone::full_space();
        let (_, first) = z.split(0).unwrap();
        let (_, second) = first.split(0).unwrap();
        let (_, _, w1, h1) = first.rect();
        let (_, _, w2, h2) = second.rect();
        assert_eq!(w1, 1 << 31);
        assert_eq!(h1, 1 << 32);
        assert_eq!(w2, 1 << 31);
        assert_eq!(h2, 1 << 31);
    }

    #[test]
    fn contains_matches_code_range() {
        let z = CanZone::new(0x8000_0000_0000_0000, 1);
        assert!(z.contains(0x8000_0000_0000_0000));
        assert!(z.contains(u64::MAX));
        assert!(!z.contains(0x7fff_ffff_ffff_ffff));
        assert_eq!(z.start(), 0x8000_0000_0000_0000);
        assert_eq!(z.end_inclusive(), u64::MAX);
    }

    #[test]
    fn adjacency_requires_shared_border() {
        let z = CanZone::full_space();
        let (left, right) = z.split(u64::MAX).unwrap();
        assert!(left.is_adjacent(&right));
        assert!(right.is_adjacent(&left));
        // Split the left half again (y split); both children stay adjacent to
        // the right half.
        let (bottom, top) = left.split(0).unwrap();
        assert!(bottom.is_adjacent(&top));
        assert!(bottom.is_adjacent(&right));
        assert!(top.is_adjacent(&right));
    }

    #[test]
    fn corner_only_contact_is_not_adjacent() {
        // The four level-2 quadrants; diagonal quadrants only touch at the
        // center point and therefore are not neighbors.
        let q00 = CanZone::new(0x0000_0000_0000_0000, 2); // x low,  y low
        let q01 = CanZone::new(0x4000_0000_0000_0000, 2); // x low,  y high
        let q10 = CanZone::new(0x8000_0000_0000_0000, 2); // x high, y low
        let q11 = CanZone::new(0xc000_0000_0000_0000, 2); // x high, y high
        assert!(q00.is_adjacent(&q01));
        assert!(q00.is_adjacent(&q10));
        assert!(q11.is_adjacent(&q01));
        assert!(q11.is_adjacent(&q10));
        assert!(!q00.is_adjacent(&q11));
        assert!(!q01.is_adjacent(&q10));
    }

    #[test]
    fn distance_is_zero_inside_and_positive_outside() {
        let z = CanZone::new(0, 2); // one quadrant
        let inside = CanPoint { x: 10, y: 10 };
        assert_eq!(z.distance_sq_to(inside), 0);
        let outside = CanPoint {
            x: u32::MAX,
            y: u32::MAX,
        };
        assert!(z.distance_sq_to(outside) > 0);
    }

    #[test]
    fn new_normalizes_prefix() {
        let z = CanZone::new(0xffff_ffff_ffff_ffff, 4);
        assert_eq!(z.start(), 0xf000_0000_0000_0000);
        assert_eq!(z.level(), 4);
    }

    #[test]
    #[should_panic(expected = "level cannot exceed 64")]
    fn level_above_64_is_rejected() {
        let _ = CanZone::new(0, 65);
    }
}
