//! A from-scratch CAN implementation (Ratnasamy et al., SIGCOMM 2001).
//!
//! The paper uses CAN (together with Chord) to argue that the *direct*
//! counter-initialization algorithm applies to real DHTs: in CAN, when a peer
//! joins it splits the zone of an existing peer (who thereby becomes its
//! neighbor), and when a peer leaves or fails its zone is taken over by one
//! of its neighbors — so the next responsible of a key is always a neighbor
//! of the current responsible (Section 4.2.1.1).
//!
//! This implementation uses a 2-dimensional coordinate space. Zones are
//! *canonical cells*: the full space is split exactly in half along
//! alternating dimensions, which means every zone corresponds to a contiguous
//! range of the Morton (Z-order) encoding of the coordinates. Key positions
//! (the 64-bit outputs of the hash functions) are interpreted directly as
//! Morton codes, so zone ownership translates to contiguous identifier ranges
//! and the same [`ResponsibilityChange`](crate::ResponsibilityChange)
//! machinery as Chord drives replica and counter hand-off.

mod geometry;
mod routing;

#[cfg(test)]
mod tests;

pub use geometry::{CanPoint, CanZone};

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::cost::{
    LookupError, LookupOutcome, MembershipEventKind, MembershipOutcome, ResponsibilityChange,
    StabilizeOutcome,
};
use crate::id::NodeId;
use crate::traits::{Overlay, OverlayKind};

/// Tuning parameters of the CAN overlay.
#[derive(Clone, Debug)]
pub struct CanConfig {
    /// Upper bound on routing steps before a lookup is declared exhausted.
    pub max_routing_steps: u32,
}

impl Default for CanConfig {
    fn default() -> Self {
        CanConfig {
            max_routing_steps: 512,
        }
    }
}

/// Per-node CAN state: the zones a node owns and the neighbors it knows.
#[derive(Clone, Debug, Default)]
pub struct CanNode {
    /// Zones currently owned (more than one right after taking over a
    /// departed neighbor's zone, as in CAN's takeover protocol).
    pub zones: Vec<CanZone>,
    /// Peers owning zones adjacent to any of this node's zones.
    pub neighbors: Vec<NodeId>,
}

/// The CAN overlay: a full partition of the 2-d space into zones.
#[derive(Clone, Debug)]
pub struct CanNetwork {
    config: CanConfig,
    nodes: HashMap<NodeId, CanNode>,
    /// Ground truth: zone start (Morton code) -> (zone, owner). Because zones
    /// partition the space, the zone containing a code is the last entry
    /// whose start is <= the code.
    zones: BTreeMap<u64, (CanZone, NodeId)>,
}

impl CanNetwork {
    /// Creates an empty overlay.
    pub fn new(config: CanConfig) -> Self {
        CanNetwork {
            config,
            nodes: HashMap::new(),
            zones: BTreeMap::new(),
        }
    }

    /// Creates an overlay containing `ids`, joined one by one (CAN has no
    /// meaningful "perfectly converged" shortcut: the zone layout depends on
    /// the join order, as in the real protocol).
    pub fn bootstrap(ids: impl IntoIterator<Item = NodeId>, config: CanConfig) -> Self {
        let mut network = CanNetwork::new(config);
        for id in ids {
            network.do_join(id);
        }
        network
    }

    /// The zone (and its owner) containing a Morton code.
    pub fn zone_containing(&self, code: u64) -> Option<(&CanZone, NodeId)> {
        self.zones
            .range(..=code)
            .next_back()
            .map(|(_, (zone, owner))| (zone, *owner))
            .filter(|(zone, _)| zone.contains(code))
            .or_else(|| {
                // Codes below the first start can only appear transiently; the
                // partition always starts at 0, so this is a defensive check.
                self.zones
                    .values()
                    .find(|(zone, _)| zone.contains(code))
                    .map(|(zone, owner)| (zone, *owner))
            })
    }

    /// Immutable access to one node's CAN state.
    pub fn node(&self, id: NodeId) -> Option<&CanNode> {
        self.nodes.get(&id)
    }

    /// Checks that the zones exactly partition the space and that ownership
    /// maps are consistent.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.zones.is_empty() {
            if self.nodes.is_empty() {
                return Ok(());
            }
            return Err("nodes exist but no zones are assigned".into());
        }
        let mut expected_start = 0u64;
        let mut total: u128 = 0;
        for (start, (zone, owner)) in &self.zones {
            if *start != zone.start() {
                return Err(format!(
                    "zone index key {start} != zone start {}",
                    zone.start()
                ));
            }
            if zone.start() != expected_start {
                return Err(format!(
                    "gap or overlap: expected zone start {expected_start}, found {}",
                    zone.start()
                ));
            }
            if !self.nodes.contains_key(owner) {
                return Err(format!("zone {zone:?} owned by dead node {owner:?}"));
            }
            if !self
                .nodes
                .get(owner)
                .map(|n| n.zones.contains(zone))
                .unwrap_or(false)
            {
                return Err(format!("owner {owner:?} does not list zone {zone:?}"));
            }
            expected_start = zone.start().wrapping_add(zone.extent_u64());
            total += zone.extent();
        }
        if total != (u64::MAX as u128) + 1 {
            return Err(format!("zones cover {total} of 2^64 codes"));
        }
        for (id, node) in &self.nodes {
            for zone in &node.zones {
                match self.zones.get(&zone.start()) {
                    Some((z, owner)) if z == zone && owner == id => {}
                    _ => return Err(format!("node {id:?} lists zone {zone:?} it does not own")),
                }
            }
        }
        Ok(())
    }

    /// Recomputes the neighbor sets of `ids` (and prunes references to them
    /// from other nodes where adjacency disappeared).
    fn refresh_neighbors_of(&mut self, ids: &[NodeId]) {
        let affected: HashSet<NodeId> = ids
            .iter()
            .copied()
            .filter(|id| self.nodes.contains_key(id))
            .collect();
        // Also refresh everyone who currently lists an affected node, or is
        // adjacent to one, so both sides of each adjacency stay consistent.
        let mut to_refresh: HashSet<NodeId> = affected.clone();
        for (id, node) in &self.nodes {
            if node.neighbors.iter().any(|n| affected.contains(n)) {
                to_refresh.insert(*id);
            }
        }
        for (id, _) in self.adjacent_to_set(&affected) {
            to_refresh.insert(id);
        }
        for id in to_refresh {
            let neighbors = self.compute_neighbors(id);
            if let Some(node) = self.nodes.get_mut(&id) {
                node.neighbors = neighbors;
            }
        }
    }

    fn adjacent_to_set(&self, set: &HashSet<NodeId>) -> Vec<(NodeId, ())> {
        let mut out = Vec::new();
        for (id, node) in &self.nodes {
            if set.contains(id) {
                continue;
            }
            'outer: for zone in &node.zones {
                for target in set {
                    if let Some(other) = self.nodes.get(target) {
                        if other.zones.iter().any(|z| z.is_adjacent(zone)) {
                            out.push((*id, ()));
                            break 'outer;
                        }
                    }
                }
            }
        }
        out
    }

    fn compute_neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let node = match self.nodes.get(&id) {
            Some(n) => n,
            None => return Vec::new(),
        };
        let mut neighbors = Vec::new();
        for (other_id, other) in &self.nodes {
            if *other_id == id {
                continue;
            }
            let adjacent = node
                .zones
                .iter()
                .any(|z| other.zones.iter().any(|o| o.is_adjacent(z)));
            if adjacent {
                neighbors.push(*other_id);
            }
        }
        neighbors.sort_unstable();
        neighbors
    }

    fn do_join(&mut self, id: NodeId) -> MembershipOutcome {
        if self.nodes.contains_key(&id) {
            return MembershipOutcome::default();
        }
        // First member: owns the whole space.
        if self.zones.is_empty() {
            let zone = CanZone::full_space();
            self.zones.insert(zone.start(), (zone, id));
            self.nodes.insert(
                id,
                CanNode {
                    zones: vec![zone],
                    neighbors: Vec::new(),
                },
            );
            return MembershipOutcome::default();
        }

        // The joining node picks the point derived from its identifier and
        // asks the owner of that point to split its zone.
        let point_code = id.0;
        let (zone, owner) = match self.zone_containing(point_code) {
            Some((zone, owner)) => (*zone, owner),
            None => return MembershipOutcome::default(),
        };
        let (kept, given) = match zone.split(point_code) {
            Some(halves) => halves,
            None => {
                // The zone is a single code wide and cannot be split; in
                // practice unreachable (2^64 codes vs thousands of peers).
                return MembershipOutcome::default();
            }
        };

        // Re-assign zones.
        self.zones.remove(&zone.start());
        self.zones.insert(kept.start(), (kept, owner));
        self.zones.insert(given.start(), (given, id));
        if let Some(owner_node) = self.nodes.get_mut(&owner) {
            owner_node.zones.retain(|z| *z != zone);
            owner_node.zones.push(kept);
        }
        self.nodes.insert(
            id,
            CanNode {
                zones: vec![given],
                neighbors: Vec::new(),
            },
        );
        self.refresh_neighbors_of(&[id, owner]);

        let messages = 2 + self
            .nodes
            .get(&id)
            .map(|n| n.neighbors.len() as u32)
            .unwrap_or(0);

        MembershipOutcome {
            changes: vec![ResponsibilityChange {
                from: owner,
                to: id,
                range_start: given.start().wrapping_sub(1),
                range_end: given.end_inclusive(),
                handover_possible: true,
                kind: MembershipEventKind::Join,
            }],
            messages,
        }
    }

    fn remove_node(&mut self, id: NodeId, kind: MembershipEventKind) -> MembershipOutcome {
        let node = match self.nodes.remove(&id) {
            Some(n) => n,
            None => return MembershipOutcome::default(),
        };
        let mut outcome = MembershipOutcome::default();
        if self.nodes.is_empty() {
            // Last member gone: the space is unowned until someone joins.
            self.zones.clear();
            return outcome;
        }

        // Each zone is taken over by the live neighbor owning the smallest
        // total volume (CAN's takeover rule); falls back to any live node if
        // the neighbor list was empty or entirely dead.
        let handover_possible = kind == MembershipEventKind::Leave;
        for zone in node.zones {
            let takeover = self
                .best_takeover_candidate(&node.neighbors, &zone)
                .or_else(|| self.nodes.keys().next().copied());
            let takeover = match takeover {
                Some(t) => t,
                None => break,
            };
            self.zones.insert(zone.start(), (zone, takeover));
            if let Some(t) = self.nodes.get_mut(&takeover) {
                t.zones.push(zone);
            }
            outcome.messages += if handover_possible { 2 } else { 0 };
            outcome.changes.push(ResponsibilityChange {
                from: id,
                to: takeover,
                range_start: zone.start().wrapping_sub(1),
                range_end: zone.end_inclusive(),
                handover_possible,
                kind,
            });
        }

        let mut affected: Vec<NodeId> = node.neighbors.clone();
        affected.extend(outcome.changes.iter().map(|c| c.to));
        self.refresh_neighbors_of(&affected);
        outcome
    }

    fn best_takeover_candidate(&self, neighbors: &[NodeId], zone: &CanZone) -> Option<NodeId> {
        neighbors
            .iter()
            .copied()
            .filter(|n| {
                self.nodes
                    .get(n)
                    .map(|node| node.zones.iter().any(|z| z.is_adjacent(zone)))
                    .unwrap_or(false)
            })
            .min_by_key(|n| {
                self.nodes
                    .get(n)
                    .map(|node| node.zones.iter().map(|z| z.extent()).sum::<u128>())
                    .unwrap_or(u128::MAX)
            })
    }
}

impl Overlay for CanNetwork {
    fn kind(&self) -> OverlayKind {
        OverlayKind::Can
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    fn alive_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn responsible_for(&self, position: u64) -> Option<NodeId> {
        self.zone_containing(position).map(|(_, owner)| owner)
    }

    fn lookup(&mut self, origin: NodeId, position: u64) -> Result<LookupOutcome, LookupError> {
        self.route_lookup(origin, position)
    }

    fn join(&mut self, id: NodeId) -> MembershipOutcome {
        self.do_join(id)
    }

    fn leave(&mut self, id: NodeId) -> MembershipOutcome {
        self.remove_node(id, MembershipEventKind::Leave)
    }

    fn fail(&mut self, id: NodeId) -> MembershipOutcome {
        self.remove_node(id, MembershipEventKind::Fail)
    }

    fn stabilize(&mut self) -> StabilizeOutcome {
        // Neighbor sets are refreshed eagerly on membership changes in this
        // implementation, so a stabilization round only re-verifies them.
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        let mut outcome = StabilizeOutcome::default();
        for id in ids {
            let neighbors = self.compute_neighbors(id);
            if let Some(node) = self.nodes.get_mut(&id) {
                if node.neighbors != neighbors {
                    outcome.repaired_successors += 1;
                    node.neighbors = neighbors;
                }
                outcome.messages += 1;
            }
        }
        outcome
    }

    fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .get(&id)
            .map(|n| n.neighbors.clone())
            .unwrap_or_default()
    }
}
