//! Unit and property tests for the CAN overlay.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{CanConfig, CanNetwork};
use crate::cost::MembershipEventKind;
use crate::id::NodeId;
use crate::traits::Overlay;

fn ids(seed: u64, count: usize) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < count {
        set.insert(NodeId(rng.gen()));
    }
    set.into_iter().collect()
}

#[test]
fn bootstrap_partitions_the_space() {
    let network = CanNetwork::bootstrap(ids(1, 40), CanConfig::default());
    assert_eq!(network.len(), 40);
    network.check_invariants().unwrap();
}

#[test]
fn every_position_has_exactly_one_owner() {
    let network = CanNetwork::bootstrap(ids(2, 25), CanConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let position: u64 = rng.gen();
        let owner = network.responsible_for(position).unwrap();
        let (zone, zone_owner) = network.zone_containing(position).unwrap();
        assert_eq!(owner, zone_owner);
        assert!(zone.contains(position));
    }
}

#[test]
fn lookup_reaches_the_owner() {
    let mut network = CanNetwork::bootstrap(ids(4, 64), CanConfig::default());
    let members = network.alive_ids();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let origin = members[rng.gen_range(0..members.len())];
        let position: u64 = rng.gen();
        let expected = network.responsible_for(position).unwrap();
        let outcome = network.lookup(origin, position).unwrap();
        assert_eq!(outcome.responsible, expected);
    }
}

#[test]
fn lookup_from_owner_is_free() {
    let mut network = CanNetwork::bootstrap(ids(6, 16), CanConfig::default());
    let position = 0x1234_5678_9abc_def0u64;
    let owner = network.responsible_for(position).unwrap();
    let outcome = network.lookup(owner, position).unwrap();
    assert_eq!(outcome.hops, 0);
    assert_eq!(outcome.responsible, owner);
}

#[test]
fn join_splits_the_covering_zone() {
    let mut network = CanNetwork::bootstrap(ids(7, 10), CanConfig::default());
    let new_id = NodeId(0xdead_beef_cafe_f00d);
    let previous_owner = network.responsible_for(new_id.0).unwrap();
    let outcome = network.join(new_id);
    assert_eq!(outcome.changes.len(), 1);
    let change = &outcome.changes[0];
    assert_eq!(change.kind, MembershipEventKind::Join);
    assert_eq!(change.from, previous_owner);
    assert_eq!(change.to, new_id);
    assert!(change.handover_possible);
    assert!(change.covers(new_id.0));
    assert_eq!(network.responsible_for(new_id.0), Some(new_id));
    network.check_invariants().unwrap();
}

#[test]
fn joining_node_becomes_neighbor_of_split_owner() {
    // The property the paper needs from CAN: after a join the previous owner
    // and the new owner are neighbors, so counters can be handed over
    // directly (Section 4.2.1.1).
    let mut network = CanNetwork::bootstrap(ids(8, 12), CanConfig::default());
    let new_id = NodeId(0x0123_4567_89ab_cdef);
    let previous_owner = network.responsible_for(new_id.0).unwrap();
    network.join(new_id);
    assert!(network.neighbors(new_id).contains(&previous_owner));
    assert!(network.neighbors(previous_owner).contains(&new_id));
}

#[test]
fn leave_hands_zone_to_a_neighbor() {
    let mut network = CanNetwork::bootstrap(ids(9, 20), CanConfig::default());
    let leaving = network.alive_ids()[7];
    let neighbors_before = network.neighbors(leaving);
    let outcome = network.leave(leaving);
    assert!(!outcome.changes.is_empty());
    for change in &outcome.changes {
        assert_eq!(change.kind, MembershipEventKind::Leave);
        assert!(change.handover_possible);
        assert!(
            neighbors_before.contains(&change.to),
            "zone should be taken over by a neighbor"
        );
    }
    assert!(!network.is_alive(leaving));
    network.check_invariants().unwrap();
}

#[test]
fn fail_reassigns_zone_without_handover() {
    let mut network = CanNetwork::bootstrap(ids(10, 20), CanConfig::default());
    let failing = network.alive_ids()[3];
    let outcome = network.fail(failing);
    assert!(!outcome.changes.is_empty());
    for change in &outcome.changes {
        assert_eq!(change.kind, MembershipEventKind::Fail);
        assert!(!change.handover_possible);
    }
    network.check_invariants().unwrap();
}

#[test]
fn last_member_leaving_empties_the_overlay() {
    let mut network = CanNetwork::bootstrap(vec![NodeId(5)], CanConfig::default());
    let outcome = network.leave(NodeId(5));
    assert!(outcome.changes.is_empty());
    assert!(network.is_empty());
    assert_eq!(network.responsible_for(42), None);
}

#[test]
fn lookups_still_work_after_churn() {
    let mut network = CanNetwork::bootstrap(ids(11, 60), CanConfig::default());
    let mut rng = StdRng::seed_from_u64(12);
    for round in 0..30 {
        let members = network.alive_ids();
        if round % 3 == 0 {
            network.join(NodeId(rng.gen()));
        } else if round % 3 == 1 && members.len() > 4 {
            let victim = members[rng.gen_range(0..members.len())];
            network.fail(victim);
        } else if members.len() > 4 {
            let victim = members[rng.gen_range(0..members.len())];
            network.leave(victim);
        }
    }
    network.check_invariants().unwrap();
    let members = network.alive_ids();
    for _ in 0..100 {
        let origin = members[rng.gen_range(0..members.len())];
        let position: u64 = rng.gen();
        let expected = network.responsible_for(position).unwrap();
        let outcome = network.lookup(origin, position).unwrap();
        assert_eq!(outcome.responsible, expected);
    }
}

#[test]
fn stabilize_reports_consistent_neighbor_sets() {
    let mut network = CanNetwork::bootstrap(ids(13, 30), CanConfig::default());
    let outcome = network.stabilize();
    // Neighbor sets are maintained eagerly, so a stabilization round right
    // after bootstrap should find nothing to repair.
    assert_eq!(outcome.repaired_successors, 0);
    assert!(outcome.messages > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After arbitrary churn the zones still partition the space and lookups
    /// agree with ground truth.
    #[test]
    fn churn_preserves_partition_invariant(
        seed in any::<u64>(),
        initial in 2usize..20,
        operations in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..40),
    ) {
        let mut network = CanNetwork::bootstrap(ids(seed, initial), CanConfig::default());
        for (op, value) in operations {
            match op % 3 {
                0 => { network.join(NodeId(value)); },
                1 => {
                    let members = network.alive_ids();
                    if members.len() > 2 {
                        network.leave(members[(value as usize) % members.len()]);
                    }
                }
                _ => {
                    let members = network.alive_ids();
                    if members.len() > 2 {
                        network.fail(members[(value as usize) % members.len()]);
                    }
                }
            }
        }
        network.check_invariants().map_err(TestCaseError::fail)?;
        let members = network.alive_ids();
        prop_assume!(!members.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            let origin = members[rng.gen_range(0..members.len())];
            let position: u64 = rng.gen();
            let expected = network.responsible_for(position).unwrap();
            let outcome = network.lookup(origin, position).unwrap();
            prop_assert_eq!(outcome.responsible, expected);
        }
    }
}
