//! Greedy coordinate routing in the CAN space.

use super::{CanNetwork, CanPoint};
use crate::cost::{LookupError, LookupOutcome};
use crate::id::NodeId;

impl CanNetwork {
    /// Routes a lookup greedily: at each step the request is forwarded to the
    /// neighbor whose zone is closest (in Euclidean distance) to the target
    /// point, until it reaches the zone containing the target.
    pub(super) fn route_lookup(
        &mut self,
        origin: NodeId,
        position: u64,
    ) -> Result<LookupOutcome, LookupError> {
        if self.nodes.is_empty() {
            return Err(LookupError::EmptyOverlay);
        }
        if !self.nodes.contains_key(&origin) {
            return Err(LookupError::OriginNotAlive);
        }
        let target_point = CanPoint::from_code(position);
        let mut current = origin;
        let mut hops = 0u32;

        for _ in 0..self.config.max_routing_steps {
            let node = match self.nodes.get(&current) {
                Some(n) => n,
                None => break,
            };
            if node.zones.iter().any(|z| z.contains(position)) {
                return Ok(LookupOutcome {
                    responsible: current,
                    hops,
                    timeouts: 0,
                });
            }
            let current_distance = node
                .zones
                .iter()
                .map(|z| z.distance_sq_to(target_point))
                .min()
                .unwrap_or(u128::MAX);

            let next = node
                .neighbors
                .iter()
                .filter_map(|n| {
                    self.nodes.get(n).map(|peer| {
                        let d = peer
                            .zones
                            .iter()
                            .map(|z| z.distance_sq_to(target_point))
                            .min()
                            .unwrap_or(u128::MAX);
                        (*n, d)
                    })
                })
                .min_by_key(|(_, d)| *d);

            match next {
                Some((next_id, next_distance)) if next_distance < current_distance => {
                    hops += 1;
                    current = next_id;
                }
                _ => {
                    // Greedy routing is stuck (possible when the neighbor set
                    // is stale right after a takeover); fall back to the
                    // ground-truth owner, charging one extra hop for the
                    // expanded-ring search a real node would perform.
                    let owner = match self.responsible(position) {
                        Some(o) => o,
                        None => break,
                    };
                    hops += 2;
                    return Ok(LookupOutcome {
                        responsible: owner,
                        hops,
                        timeouts: 1,
                    });
                }
            }
        }

        Err(LookupError::RoutingExhausted {
            messages: hops,
            timeouts: 0,
        })
    }

    fn responsible(&self, position: u64) -> Option<NodeId> {
        self.zone_containing(position).map(|(_, owner)| owner)
    }
}
