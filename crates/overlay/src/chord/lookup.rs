//! Iterative Chord lookups with timeout accounting and lazy repair.

use super::ChordNetwork;
use crate::cost::{LookupError, LookupOutcome};
use crate::id::{in_open_closed_interval, in_open_open_interval, NodeId};

impl ChordNetwork {
    /// Routes a lookup for `position` starting at `origin`.
    ///
    /// The routing is iterative `find_successor`: at each step the current
    /// node either answers (the target lies between it and its successor) or
    /// forwards to the closest preceding finger. Probing a peer that has
    /// failed costs a timeout; the stale entry is then repaired lazily (the
    /// prober asks its own successor ring for a replacement), which is how
    /// real deployments recover and why lookups still terminate under heavy
    /// failure rates — at a visible cost in time and messages, as in the
    /// paper's Figure 11.
    pub(super) fn route_lookup(
        &mut self,
        origin: NodeId,
        position: u64,
    ) -> Result<LookupOutcome, LookupError> {
        if self.ring.is_empty() {
            return Err(LookupError::EmptyOverlay);
        }
        if !self.nodes.contains_key(&origin) {
            return Err(LookupError::OriginNotAlive);
        }
        if self.ring.len() == 1 {
            return Ok(LookupOutcome {
                responsible: origin,
                hops: 0,
                timeouts: 0,
            });
        }

        let mut current = origin;
        let mut hops = 0u32;
        let mut timeouts = 0u32;
        let max_steps = self.config.max_routing_steps;

        for _ in 0..max_steps {
            // 1. Find the current node's first *live* successor, paying a
            //    timeout for each dead entry probed, and repairing lazily.
            let successor = match self.live_successor_with_repair(current, &mut timeouts) {
                Some(s) => s,
                None => {
                    return Err(LookupError::RoutingExhausted {
                        messages: hops + timeouts,
                        timeouts,
                    })
                }
            };

            // 2. If the target falls between current and its successor, the
            //    successor is the responsible peer.
            if in_open_closed_interval(current.0, successor.0, position) {
                hops += 1;
                return Ok(LookupOutcome {
                    responsible: successor,
                    hops,
                    timeouts,
                });
            }

            // 3. Otherwise forward to the closest preceding live finger.
            let next = match self.closest_preceding_live(current, position, &mut timeouts) {
                Some(n) if n != current => n,
                _ => successor,
            };
            hops += 1;
            current = next;
        }

        Err(LookupError::RoutingExhausted {
            messages: hops + timeouts,
            timeouts,
        })
    }

    /// Returns the first live entry of `id`'s successor list, charging one
    /// timeout per dead entry skipped and repairing the list in place. Falls
    /// back to ground truth (the result of the node running a full repair via
    /// its other neighbors) when the whole list is dead.
    fn live_successor_with_repair(&mut self, id: NodeId, timeouts: &mut u32) -> Option<NodeId> {
        // Shared borrows only while scanning — the believed list is read in
        // place, not cloned (this runs once per routing hop).
        let node = self.nodes.get(&id)?;
        let mut dead_prefix = 0usize;
        let mut live = None;
        for candidate in &node.successors {
            if self.nodes.contains_key(candidate) {
                live = Some(*candidate);
                break;
            }
            dead_prefix += 1;
        }
        *timeouts += dead_prefix as u32;

        if dead_prefix == 0 {
            if let Some(live) = live {
                return Some(live);
            }
        }

        // Either the head of the list timed out or the list is empty/dead.
        // After the timeout the node re-resolves its successor from its other
        // neighbors (the emergency repair real Chord performs), which yields
        // the ground-truth successor and refreshes the whole list. Note that
        // returning the first *live* entry of the stale list would be wrong:
        // a peer may have joined in front of it without this node having been
        // notified yet.
        if live.is_none() {
            *timeouts += 1;
        }
        let succ_len = self.config.successor_list_len;
        let repaired = self.truth_successor_list(id, succ_len);
        let result = repaired.first().copied().or(live);
        if let Some(node) = self.nodes.get_mut(&id) {
            if !repaired.is_empty() {
                node.successors = repaired;
            } else if let Some(result) = result {
                node.successors = vec![result];
            }
        }
        result
    }

    /// `closest_preceding_node` over the finger table (highest interval
    /// first), skipping dead fingers with a timeout and blanking them so that
    /// the next stabilization round refreshes them.
    fn closest_preceding_live(
        &mut self,
        id: NodeId,
        position: u64,
        timeouts: &mut u32,
    ) -> Option<NodeId> {
        // Scan the finger table in place (no candidate vector); dead fingers
        // are recorded in a scratch buffer reused across lookups so the hop
        // path stays allocation-free.
        let mut dead_indices = std::mem::take(&mut self.dead_finger_scratch);
        dead_indices.clear();
        let mut chosen = None;
        match self.nodes.get(&id) {
            Some(node) => {
                for (idx, candidate) in node
                    .fingers_high_to_low()
                    .filter(|(_, f)| in_open_open_interval(id.0, position, f.0))
                {
                    if self.nodes.contains_key(&candidate) {
                        chosen = Some(candidate);
                        break;
                    }
                    dead_indices.push(idx);
                }
            }
            None => {
                self.dead_finger_scratch = dead_indices;
                return None;
            }
        }
        *timeouts += dead_indices.len() as u32;
        if !dead_indices.is_empty() {
            if let Some(node) = self.nodes.get_mut(&id) {
                for &idx in &dead_indices {
                    if idx < node.fingers.len() {
                        node.fingers[idx] = None;
                    }
                }
            }
        }
        self.dead_finger_scratch = dead_indices;
        chosen
    }
}
