//! Chord membership changes and stabilization.

use super::{ChordNetwork, ChordNode};
use crate::cost::{MembershipEventKind, MembershipOutcome, ResponsibilityChange, StabilizeOutcome};
use crate::id::NodeId;

impl ChordNetwork {
    /// Rebuilds successor lists, predecessors and fingers of *every* node from
    /// ground truth. Used by [`ChordNetwork::bootstrap`] to start from a
    /// converged ring.
    pub(super) fn rebuild_all_routing_state(&mut self) {
        let ids: Vec<NodeId> = self.ring.iter().copied().collect();
        for id in ids {
            self.rebuild_node_routing_state(id);
        }
    }

    /// Rebuilds one node's routing state from ground truth (perfect
    /// stabilization of that node).
    pub(super) fn rebuild_node_routing_state(&mut self, id: NodeId) {
        let succ_list = self.truth_successor_list(id, self.config.successor_list_len);
        let predecessor = self.truth_predecessor_of_node(id);
        let fingers = self.compute_fingers(id);
        if let Some(node) = self.nodes.get_mut(&id) {
            node.successors = succ_list;
            node.predecessor = predecessor;
            node.fingers = fingers;
        }
    }

    fn compute_fingers(&self, id: NodeId) -> Vec<Option<NodeId>> {
        (0..self.config.finger_bits)
            .map(|i| self.truth_successor_of(id.finger_start(i)))
            .collect()
    }

    /// Protocol join: the new node locates its successor, takes over the keys
    /// in `(predecessor, new_id]` from it, and links itself into the ring.
    pub(super) fn do_join(&mut self, id: NodeId) -> MembershipOutcome {
        if self.nodes.contains_key(&id) {
            // Duplicate identifier: nothing changes. Identifiers are 64-bit
            // fingerprints so this only happens in adversarial tests.
            return MembershipOutcome::default();
        }

        // First member: it is its own successor and owns the whole ring.
        if self.ring.is_empty() {
            let mut node = ChordNode::new(id);
            node.successors = vec![id];
            node.predecessor = Some(id);
            node.fingers = vec![Some(id); self.config.finger_bits as usize];
            self.nodes.insert(id, node);
            self.ring_insert(id);
            return MembershipOutcome {
                changes: Vec::new(),
                messages: 0,
            };
        }

        // The successor the new node will sit in front of, and the current
        // predecessor of that successor (ground truth; the join lookup cost is
        // approximated below since maintenance traffic is not part of the
        // paper's reported query costs).
        let successor = self
            .truth_successor_of(id.0)
            .expect("non-empty ring has a successor");
        let predecessor = self
            .truth_predecessor_of_node(successor)
            .expect("non-empty ring has a predecessor");

        self.ring_insert(id);
        self.nodes.insert(id, ChordNode::new(id));
        self.rebuild_node_routing_state(id);

        // The successor learns about its new predecessor immediately (it is
        // contacted for the key hand-off); the old predecessor's successor
        // pointer is patched when it next stabilizes, but we patch its
        // immediate successor here because the hand-off converstion reveals
        // the new node to it as well.
        if let Some(succ_node) = self.nodes.get_mut(&successor) {
            succ_node.predecessor = Some(id);
        }
        if let Some(pred_node) = self.nodes.get_mut(&predecessor) {
            if pred_node.successors.first() == Some(&successor) || pred_node.successors.is_empty() {
                pred_node.successors.insert(0, id);
                pred_node
                    .successors
                    .truncate(self.config.successor_list_len);
            }
        }

        // Approximate join cost: one lookup (~log2 n hops) plus the transfer
        // round-trip and the successor-list copy.
        let lookup_cost = usize::BITS - self.ring.len().leading_zeros();
        let messages = lookup_cost + 2 + self.config.successor_list_len as u32;

        let change = ResponsibilityChange {
            from: successor,
            to: id,
            range_start: predecessor.0,
            range_end: id.0,
            handover_possible: true,
            kind: MembershipEventKind::Join,
        };

        MembershipOutcome {
            changes: vec![change],
            messages,
        }
    }

    /// Graceful leave: the departing node notifies its neighbors and hands its
    /// keys (and, at the KTS layer, its counters — the direct algorithm) to
    /// its successor before disappearing.
    pub(super) fn do_leave(&mut self, id: NodeId) -> MembershipOutcome {
        if !self.nodes.contains_key(&id) {
            return MembershipOutcome::default();
        }
        let successor = self.truth_successor_of_node(id);
        let predecessor = self.truth_predecessor_of_node(id);

        self.ring_remove(id);
        self.nodes.remove(&id);

        let mut outcome = MembershipOutcome {
            changes: Vec::new(),
            messages: 0,
        };

        match (successor, predecessor) {
            (Some(successor), Some(predecessor)) if successor != id => {
                // Patch the two neighbors that the departing node notified.
                if let Some(succ_node) = self.nodes.get_mut(&successor) {
                    if succ_node.predecessor == Some(id) {
                        succ_node.predecessor = Some(if predecessor == id {
                            successor
                        } else {
                            predecessor
                        });
                    }
                    succ_node.purge_reference(id);
                }
                if predecessor != successor {
                    if let Some(pred_node) = self.nodes.get_mut(&predecessor) {
                        pred_node.purge_reference(id);
                        if pred_node.successors.first() != Some(&successor) {
                            pred_node.successors.insert(0, successor);
                            pred_node
                                .successors
                                .truncate(self.config.successor_list_len);
                        }
                    }
                }
                outcome.messages = 3; // leave notification to pred + succ, hand-off ack
                outcome.changes.push(ResponsibilityChange {
                    from: id,
                    to: successor,
                    range_start: predecessor.0,
                    range_end: id.0,
                    handover_possible: true,
                    kind: MembershipEventKind::Leave,
                });
            }
            _ => {
                // The ring is now empty (the departing node was the last
                // member); its data simply disappears with it.
            }
        }
        outcome
    }

    /// Fail-stop failure: the node vanishes without notifying anyone. Its
    /// keys are lost, other nodes keep stale references to it, and the next
    /// responsible (its successor) will have to use the *indirect* counter
    /// initialization for the keys it inherits.
    pub(super) fn do_fail(&mut self, id: NodeId) -> MembershipOutcome {
        if !self.nodes.contains_key(&id) {
            return MembershipOutcome::default();
        }
        let successor = self.truth_successor_of_node(id);
        let predecessor = self.truth_predecessor_of_node(id);

        self.ring_remove(id);
        self.nodes.remove(&id);

        let mut outcome = MembershipOutcome::default();
        if let (Some(successor), Some(predecessor)) = (successor, predecessor) {
            if successor != id {
                outcome.changes.push(ResponsibilityChange {
                    from: id,
                    to: successor,
                    range_start: predecessor.0,
                    range_end: id.0,
                    handover_possible: false,
                    kind: MembershipEventKind::Fail,
                });
            }
        }
        outcome
    }

    /// One stabilization round across every live node: verify successors
    /// (purging dead ones), refresh the successor list and predecessor via the
    /// successor exchange, and refresh a few fingers (round-robin), as Chord's
    /// periodic `stabilize` + `fix_fingers` do.
    pub(super) fn do_stabilize(&mut self) -> StabilizeOutcome {
        let mut outcome = StabilizeOutcome::default();
        // One memcpy snapshot of the membership (nodes may join/leave midway
        // through a real round, so each node acts on the round's population).
        let ids: Vec<NodeId> = self.sorted_ids.clone();
        let succ_len = self.config.successor_list_len;
        let per_round = self.config.fingers_fixed_per_round.max(1);
        let finger_bits = self.config.finger_bits as usize;
        // Scratch buffers shared by every node in the round: stabilization is
        // O(n) nodes per round, so per-node allocations dominate without
        // these.
        let mut succ_scratch: Vec<NodeId> = Vec::with_capacity(succ_len);
        let mut refreshed: Vec<(usize, Option<NodeId>)> = Vec::with_capacity(per_round);

        for id in ids {
            // Successor verification: count how many known successors are dead.
            let (dead_successors, had_dead_pred) = {
                let node = match self.nodes.get(&id) {
                    Some(n) => n,
                    None => continue,
                };
                let dead = node
                    .successors
                    .iter()
                    .filter(|s| !self.nodes.contains_key(*s))
                    .count() as u32;
                let dead_pred = node
                    .predecessor
                    .map(|p| !self.nodes.contains_key(&p))
                    .unwrap_or(false);
                (dead, dead_pred)
            };
            outcome.repaired_successors += dead_successors + u32::from(had_dead_pred);
            // The stabilize exchange with the (first live) successor refreshes
            // the whole list and the predecessor pointer.
            self.truth_successor_list_into(id, succ_len, &mut succ_scratch);
            let pred = self.truth_predecessor_of_node(id);
            outcome.messages += 2 + dead_successors; // request/response + one timeout probe per dead entry

            // fix_fingers: refresh `per_round` entries round-robin.
            refreshed.clear();
            let start_index = self
                .nodes
                .get(&id)
                .map(|n| n.next_finger_to_fix)
                .unwrap_or(0);
            for offset in 0..per_round.min(finger_bits) {
                let idx = (start_index + offset) % finger_bits;
                let target = id.finger_start(idx as u32);
                refreshed.push((idx, self.truth_successor_of(target)));
            }
            outcome.refreshed_fingers += refreshed.len() as u32;
            outcome.messages += refreshed.len() as u32;

            if let Some(node) = self.nodes.get_mut(&id) {
                node.successors.clear();
                node.successors.extend_from_slice(&succ_scratch);
                node.predecessor = pred;
                if node.fingers.len() < finger_bits {
                    node.fingers.resize(finger_bits, None);
                }
                for &(idx, value) in &refreshed {
                    node.fingers[idx] = value;
                }
                node.next_finger_to_fix = (start_index + per_round) % finger_bits;
            }
        }
        outcome
    }
}
