//! Unit and property tests for the Chord overlay.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{ChordConfig, ChordNetwork};
use crate::cost::MembershipEventKind;
use crate::id::NodeId;
use crate::traits::Overlay;

fn ids(seed: u64, count: usize) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < count {
        set.insert(NodeId(rng.gen()));
    }
    set.into_iter().collect()
}

fn small_config() -> ChordConfig {
    ChordConfig {
        successor_list_len: 4,
        finger_bits: 64,
        fingers_fixed_per_round: 16,
        max_routing_steps: 256,
    }
}

#[test]
fn sample_alive_matches_alive_ids_across_churn() {
    // The O(1) sampler must stay in lockstep with `alive_ids` through joins,
    // leaves and failures — the simulator relies on identical ordering to
    // keep seeded runs reproducible.
    let mut network = ChordNetwork::bootstrap(ids(77, 24), small_config());
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..40 {
        let members = network.alive_ids();
        assert_eq!(network.alive_count(), members.len());
        for (index, id) in members.iter().enumerate() {
            assert_eq!(network.sample_alive(index), Some(*id));
        }
        assert_eq!(network.sample_alive(members.len()), None);
        if round % 3 == 0 {
            network.join(NodeId(rng.gen()));
        } else {
            let victim = members[rng.gen_range(0..members.len())];
            if round % 3 == 1 {
                network.leave(victim);
            } else {
                network.fail(victim);
            }
        }
        network.check_invariants().unwrap();
    }
}

#[test]
fn bootstrap_builds_consistent_ring() {
    let network = ChordNetwork::bootstrap(ids(1, 50), small_config());
    assert_eq!(network.len(), 50);
    network.check_invariants().unwrap();
    for id in network.alive_ids() {
        let node = network.node(id).unwrap();
        assert_eq!(node.successor(), network.truth_successor_of_node(id));
        assert_eq!(node.predecessor, network.truth_predecessor_of_node(id));
    }
}

#[test]
fn lookup_finds_ground_truth_responsible() {
    let mut network = ChordNetwork::bootstrap(ids(2, 128), small_config());
    let members = network.alive_ids();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..200 {
        let origin = members[rng.gen_range(0..members.len())];
        let target: u64 = rng.gen();
        let expected = network.responsible_for(target).unwrap();
        let outcome = network.lookup(origin, target).unwrap();
        assert_eq!(outcome.responsible, expected);
        assert_eq!(
            outcome.timeouts, 0,
            "stabilized ring should have no timeouts"
        );
    }
}

#[test]
fn lookup_hops_are_logarithmic() {
    let mut network = ChordNetwork::bootstrap(ids(3, 1024), small_config());
    let members = network.alive_ids();
    let mut rng = StdRng::seed_from_u64(11);
    let mut total_hops = 0u64;
    let samples = 300;
    for _ in 0..samples {
        let origin = members[rng.gen_range(0..members.len())];
        let target: u64 = rng.gen();
        total_hops += u64::from(network.lookup(origin, target).unwrap().hops);
    }
    let avg = total_hops as f64 / samples as f64;
    // Expected ~ (1/2) log2(1024) = 5; allow generous slack.
    assert!(avg > 2.0 && avg < 12.0, "average hops {avg} out of range");
}

#[test]
fn single_node_ring_answers_locally() {
    let mut network = ChordNetwork::bootstrap(vec![NodeId(5)], small_config());
    let outcome = network.lookup(NodeId(5), 12345).unwrap();
    assert_eq!(outcome.responsible, NodeId(5));
    assert_eq!(outcome.hops, 0);
}

#[test]
fn lookup_from_dead_origin_fails() {
    let mut network = ChordNetwork::bootstrap(ids(4, 8), small_config());
    let err = network.lookup(NodeId(1), 42).unwrap_err();
    assert_eq!(err, crate::cost::LookupError::OriginNotAlive);
}

#[test]
fn empty_overlay_lookup_fails() {
    let mut network = ChordNetwork::new(small_config());
    let err = network.lookup(NodeId(1), 42).unwrap_err();
    assert_eq!(err, crate::cost::LookupError::EmptyOverlay);
}

#[test]
fn join_takes_over_range_from_successor() {
    let mut network = ChordNetwork::bootstrap(ids(5, 32), small_config());
    let new_id = NodeId(0x4242_4242_4242_4242);
    assert!(!network.is_alive(new_id));
    let expected_successor = network.responsible_for(new_id.0).unwrap();
    let outcome = network.join(new_id);
    assert!(network.is_alive(new_id));
    assert_eq!(outcome.changes.len(), 1);
    let change = &outcome.changes[0];
    assert_eq!(change.kind, MembershipEventKind::Join);
    assert_eq!(change.from, expected_successor);
    assert_eq!(change.to, new_id);
    assert!(change.handover_possible);
    assert!(change.covers(new_id.0));
    // The new node is now the ground-truth responsible for its own id.
    assert_eq!(network.responsible_for(new_id.0), Some(new_id));
}

#[test]
fn join_into_empty_overlay_has_no_transfer() {
    let mut network = ChordNetwork::new(small_config());
    let outcome = network.join(NodeId(9));
    assert!(outcome.changes.is_empty());
    assert_eq!(network.len(), 1);
    assert_eq!(network.responsible_for(123), Some(NodeId(9)));
}

#[test]
fn duplicate_join_is_ignored() {
    let mut network = ChordNetwork::bootstrap(vec![NodeId(9)], small_config());
    let outcome = network.join(NodeId(9));
    assert!(outcome.changes.is_empty());
    assert_eq!(network.len(), 1);
}

#[test]
fn leave_hands_over_to_successor() {
    let mut network = ChordNetwork::bootstrap(ids(6, 32), small_config());
    let members = network.alive_ids();
    let leaving = members[10];
    let successor = network.truth_successor_of_node(leaving).unwrap();
    let predecessor = network.truth_predecessor_of_node(leaving).unwrap();
    let outcome = network.leave(leaving);
    assert_eq!(outcome.changes.len(), 1);
    let change = &outcome.changes[0];
    assert_eq!(change.kind, MembershipEventKind::Leave);
    assert_eq!(change.from, leaving);
    assert_eq!(change.to, successor);
    assert!(change.handover_possible);
    assert_eq!(change.range_start, predecessor.0);
    assert_eq!(change.range_end, leaving.0);
    assert!(!network.is_alive(leaving));
    assert_eq!(network.len(), 31);
}

#[test]
fn fail_produces_change_without_handover() {
    let mut network = ChordNetwork::bootstrap(ids(7, 32), small_config());
    let failing = network.alive_ids()[3];
    let successor = network.truth_successor_of_node(failing).unwrap();
    let outcome = network.fail(failing);
    assert_eq!(outcome.changes.len(), 1);
    assert_eq!(outcome.changes[0].kind, MembershipEventKind::Fail);
    assert!(!outcome.changes[0].handover_possible);
    assert_eq!(outcome.changes[0].to, successor);
    assert!(!network.is_alive(failing));
}

#[test]
fn leave_of_last_node_empties_ring() {
    let mut network = ChordNetwork::bootstrap(vec![NodeId(1)], small_config());
    let outcome = network.leave(NodeId(1));
    assert!(outcome.changes.is_empty());
    assert!(network.is_empty());
    assert_eq!(network.responsible_for(0), None);
}

#[test]
fn lookups_survive_failures_with_timeouts() {
    let mut network = ChordNetwork::bootstrap(ids(8, 256), small_config());
    let mut rng = StdRng::seed_from_u64(13);
    // Fail 25% of the nodes without any stabilization.
    let members = network.alive_ids();
    for chunk in members.chunks(4) {
        network.fail(chunk[0]);
    }
    let survivors = network.alive_ids();
    let mut total_timeouts = 0u32;
    for _ in 0..100 {
        let origin = survivors[rng.gen_range(0..survivors.len())];
        let target: u64 = rng.gen();
        let expected = network.responsible_for(target).unwrap();
        let outcome = network.lookup(origin, target).unwrap();
        assert_eq!(outcome.responsible, expected);
        total_timeouts += outcome.timeouts;
    }
    assert!(
        total_timeouts > 0,
        "failing a quarter of the ring should cause at least one timeout"
    );
}

#[test]
fn stabilization_removes_stale_references_and_timeouts() {
    let mut network = ChordNetwork::bootstrap(ids(9, 256), small_config());
    let members = network.alive_ids();
    for chunk in members.chunks(4) {
        network.fail(chunk[0]);
    }
    // Enough rounds to refresh all 64 fingers at 16 per round.
    for _ in 0..5 {
        network.stabilize();
    }
    let survivors = network.alive_ids();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..100 {
        let origin = survivors[rng.gen_range(0..survivors.len())];
        let target: u64 = rng.gen();
        let outcome = network.lookup(origin, target).unwrap();
        assert_eq!(outcome.timeouts, 0, "stabilized ring should not time out");
    }
}

#[test]
fn stabilize_reports_work_done() {
    let mut network = ChordNetwork::bootstrap(ids(10, 64), small_config());
    let victim = network.alive_ids()[0];
    network.fail(victim);
    let outcome = network.stabilize();
    assert!(outcome.messages > 0);
    assert!(outcome.refreshed_fingers > 0);
}

#[test]
fn neighbors_include_successors_and_predecessor() {
    let network = ChordNetwork::bootstrap(ids(11, 16), small_config());
    let id = network.alive_ids()[4];
    let neighbors = network.neighbors(id);
    let succ = network.truth_successor_of_node(id).unwrap();
    let pred = network.truth_predecessor_of_node(id).unwrap();
    assert!(neighbors.contains(&succ));
    assert!(neighbors.contains(&pred));
    assert!(!neighbors.contains(&id));
    assert!(network.neighbors(NodeId(0xdead)).is_empty());
}

#[test]
fn next_responsible_is_a_neighbor_of_current_responsible() {
    // The property Section 4.2.1.1 proves for Chord: when the responsible for
    // a key departs, the next responsible is one of its neighbors, so the
    // direct algorithm can hand counters over in O(1) messages.
    let mut network = ChordNetwork::bootstrap(ids(12, 64), small_config());
    let key_position = 0x7777_7777_7777_7777u64;
    for _ in 0..10 {
        let responsible = network.responsible_for(key_position).unwrap();
        let neighbors = network.neighbors(responsible);
        network.leave(responsible);
        match network.responsible_for(key_position) {
            Some(next) => assert!(
                neighbors.contains(&next),
                "next responsible {next:?} was not a neighbor of {responsible:?}"
            ),
            None => break,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any sequence of joins, leaves and failures, lookups from any live
    /// origin locate the ground-truth responsible peer.
    #[test]
    fn lookup_agrees_with_ground_truth_under_churn(
        seed in any::<u64>(),
        initial in 4usize..40,
        operations in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..60),
    ) {
        let mut network = ChordNetwork::bootstrap(ids(seed, initial), small_config());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for (op, value) in operations {
            match op % 4 {
                0 => { network.join(NodeId(value)); },
                1 => {
                    let members = network.alive_ids();
                    if members.len() > 2 {
                        network.leave(members[(value as usize) % members.len()]);
                    }
                }
                2 => {
                    let members = network.alive_ids();
                    if members.len() > 2 {
                        network.fail(members[(value as usize) % members.len()]);
                    }
                }
                _ => { network.stabilize(); },
            }
        }
        let members = network.alive_ids();
        prop_assume!(!members.is_empty());
        for _ in 0..10 {
            let origin = members[rng.gen_range(0..members.len())];
            let target: u64 = rng.gen();
            let expected = network.responsible_for(target).unwrap();
            let outcome = network.lookup(origin, target).unwrap();
            prop_assert_eq!(outcome.responsible, expected);
        }
        network.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Successor-list/finger state never references the node itself as a
    /// neighbor after bootstrap with at least two members.
    #[test]
    fn neighbors_never_contain_self(seed in any::<u64>(), count in 2usize..50) {
        let network = ChordNetwork::bootstrap(ids(seed, count), small_config());
        for id in network.alive_ids() {
            prop_assert!(!network.neighbors(id).contains(&id));
        }
    }
}
