//! A from-scratch Chord implementation (Stoica et al., SIGCOMM 2001).
//!
//! The paper's evaluation runs UMS and KTS over a Chord implementation the
//! authors wrote themselves (Section 5.1). This module reproduces the parts
//! of Chord that matter for the paper:
//!
//! * an m = 64-bit identifier ring with one successor pointer, a successor
//!   list for fault tolerance, a predecessor pointer and a finger table;
//! * iterative `find_successor` lookups in `O(log n)` hops
//!   ([`ChordNetwork::lookup`]);
//! * protocol-accurate joins (the new node takes over part of its successor's
//!   keys — which is the RLA "loss of responsibility" detection point used by
//!   KTS), graceful leaves (state handed to the successor, which is how the
//!   *direct* counter-transfer algorithm ships counters), and fail-stop
//!   failures (no hand-off; stale routing state lingers until stabilization);
//! * periodic stabilization that repairs successor lists and refreshes a
//!   configurable number of fingers per round, so that higher failure rates
//!   translate into more lookup timeouts exactly as in the paper's Figure 11.

mod lookup;
mod maintenance;
mod node;

#[cfg(test)]
mod tests;

pub use node::ChordNode;

use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::cost::{LookupError, LookupOutcome, MembershipOutcome, StabilizeOutcome};
use crate::id::NodeId;
use crate::traits::{Overlay, OverlayKind};

/// Tuning parameters of the Chord overlay.
#[derive(Clone, Debug)]
pub struct ChordConfig {
    /// Length of the successor list each node maintains (`r` in the Chord
    /// paper). Longer lists survive more simultaneous failures.
    pub successor_list_len: usize,
    /// Number of finger-table entries (m). 64 covers the whole identifier
    /// space; smaller values are useful in tests.
    pub finger_bits: u32,
    /// How many finger entries each node refreshes per stabilization round.
    /// Smaller values leave more stale fingers between rounds, increasing
    /// lookup timeouts under churn.
    pub fingers_fixed_per_round: usize,
    /// Upper bound on routing steps before a lookup is declared exhausted.
    pub max_routing_steps: u32,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            successor_list_len: 8,
            finger_bits: 64,
            fingers_fixed_per_round: 8,
            max_routing_steps: 256,
        }
    }
}

/// A complete Chord overlay: the set of live nodes plus their (possibly
/// stale) routing state.
///
/// The structure is *network-global* — it owns every node's state — because
/// both the discrete-event simulator and the threaded deployment drive the
/// overlay from a single place. Staleness is still modelled faithfully: each
/// node only "knows" what is in its own successor list / finger table, and
/// those are only updated by joins, graceful leaves, stabilization rounds and
/// lazy repair after timeouts.
#[derive(Clone, Debug)]
pub struct ChordNetwork {
    config: ChordConfig,
    nodes: HashMap<NodeId, ChordNode>,
    /// Ground-truth set of live node ids, ordered on the ring.
    ring: BTreeSet<NodeId>,
    /// The same ids as `ring`, kept sorted in a dense vector so that
    /// [`Overlay::sample_alive`] is an `O(1)` index instead of an `O(n)`
    /// collect; the order matches [`Overlay::alive_ids`] exactly.
    sorted_ids: Vec<NodeId>,
    /// Reused by [`ChordNetwork::route_lookup`] to record dead finger slots
    /// without allocating per hop.
    dead_finger_scratch: Vec<usize>,
}

impl ChordNetwork {
    /// Creates an empty overlay.
    pub fn new(config: ChordConfig) -> Self {
        ChordNetwork {
            config,
            nodes: HashMap::new(),
            ring: BTreeSet::new(),
            sorted_ids: Vec::new(),
            dead_finger_scratch: Vec::new(),
        }
    }

    /// Creates an overlay that already contains `ids`, with fully stabilized
    /// routing state (perfect successors, predecessors and fingers).
    ///
    /// This models a ring that has been running long enough to converge, and
    /// is how experiments bootstrap their initial population before churn
    /// starts (protocol-accurate joins are used for every later arrival).
    pub fn bootstrap(ids: impl IntoIterator<Item = NodeId>, config: ChordConfig) -> Self {
        let mut network = ChordNetwork::new(config);
        for id in ids {
            if network.ring.insert(id) {
                network.nodes.insert(id, ChordNode::new(id));
            }
        }
        network.sorted_ids = network.ring.iter().copied().collect();
        network.rebuild_all_routing_state();
        network
    }

    /// Adds `id` to both ground-truth membership structures. Returns whether
    /// the id was new.
    pub(super) fn ring_insert(&mut self, id: NodeId) -> bool {
        if !self.ring.insert(id) {
            return false;
        }
        let at = self.sorted_ids.partition_point(|n| *n < id);
        self.sorted_ids.insert(at, id);
        true
    }

    /// Removes `id` from both ground-truth membership structures.
    pub(super) fn ring_remove(&mut self, id: NodeId) -> bool {
        if !self.ring.remove(&id) {
            return false;
        }
        if let Ok(at) = self.sorted_ids.binary_search(&id) {
            self.sorted_ids.remove(at);
        }
        true
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChordConfig {
        &self.config
    }

    /// Immutable access to a node's state (None if dead/unknown).
    pub fn node(&self, id: NodeId) -> Option<&ChordNode> {
        self.nodes.get(&id)
    }

    /// Ground-truth successor of a position: the first live node clockwise
    /// from (and including) `position`.
    pub fn truth_successor_of(&self, position: u64) -> Option<NodeId> {
        if self.ring.is_empty() {
            return None;
        }
        self.ring
            .range(NodeId(position)..)
            .next()
            .or_else(|| self.ring.iter().next())
            .copied()
    }

    /// Ground-truth successor of a *node* (the next live node strictly
    /// clockwise from it).
    pub fn truth_successor_of_node(&self, id: NodeId) -> Option<NodeId> {
        if self.ring.is_empty() {
            return None;
        }
        self.ring
            .range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded))
            .next()
            .or_else(|| self.ring.iter().next())
            .copied()
    }

    /// Ground-truth predecessor of a node: the first live node strictly
    /// counter-clockwise from it.
    pub fn truth_predecessor_of_node(&self, id: NodeId) -> Option<NodeId> {
        if self.ring.is_empty() {
            return None;
        }
        self.ring
            .range(..id)
            .next_back()
            .or_else(|| self.ring.iter().next_back())
            .copied()
    }

    /// The first `count` ground-truth successors of `id` (excluding `id`
    /// unless the ring is smaller than `count + 1`).
    fn truth_successor_list(&self, id: NodeId, count: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(count);
        self.truth_successor_list_into(id, count, &mut out);
        out
    }

    /// Fills `out` with the first `count` ground-truth successors of `id`.
    /// The buffer is cleared first; callers on hot loops (stabilization)
    /// reuse one buffer across nodes to avoid per-node allocations.
    fn truth_successor_list_into(&self, id: NodeId, count: usize, out: &mut Vec<NodeId>) {
        out.clear();
        let mut current = id;
        for _ in 0..count {
            match self.truth_successor_of_node(current) {
                Some(next) => {
                    out.push(next);
                    current = next;
                    if next == id {
                        break;
                    }
                }
                None => break,
            }
        }
    }

    /// Checks internal consistency of the ground-truth structures; used by
    /// tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.ring.len() != self.nodes.len() {
            return Err(format!(
                "ring has {} entries but node map has {}",
                self.ring.len(),
                self.nodes.len()
            ));
        }
        for id in &self.ring {
            if !self.nodes.contains_key(id) {
                return Err(format!("ring member {id} missing from node map"));
            }
        }
        if self.sorted_ids.len() != self.ring.len()
            || !self.sorted_ids.iter().zip(&self.ring).all(|(a, b)| a == b)
        {
            return Err("sorted id vector out of sync with ring".to_string());
        }
        Ok(())
    }
}

impl Overlay for ChordNetwork {
    fn kind(&self) -> OverlayKind {
        OverlayKind::Chord
    }

    fn len(&self) -> usize {
        self.ring.len()
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    fn alive_ids(&self) -> Vec<NodeId> {
        self.sorted_ids.clone()
    }

    fn sample_alive(&self, index: usize) -> Option<NodeId> {
        self.sorted_ids.get(index).copied()
    }

    fn responsible_for(&self, position: u64) -> Option<NodeId> {
        self.truth_successor_of(position)
    }

    fn lookup(&mut self, origin: NodeId, position: u64) -> Result<LookupOutcome, LookupError> {
        self.route_lookup(origin, position)
    }

    fn join(&mut self, id: NodeId) -> MembershipOutcome {
        self.do_join(id)
    }

    fn leave(&mut self, id: NodeId) -> MembershipOutcome {
        self.do_leave(id)
    }

    fn fail(&mut self, id: NodeId) -> MembershipOutcome {
        self.do_fail(id)
    }

    fn stabilize(&mut self) -> StabilizeOutcome {
        self.do_stabilize()
    }

    fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        match self.nodes.get(&id) {
            None => Vec::new(),
            Some(node) => {
                let mut out: Vec<NodeId> = node.successors.clone();
                if let Some(pred) = node.predecessor {
                    if !out.contains(&pred) {
                        out.push(pred);
                    }
                }
                out.retain(|n| *n != id);
                out
            }
        }
    }
}
