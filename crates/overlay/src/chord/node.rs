//! Per-node Chord routing state.

use crate::id::NodeId;

/// The routing state one Chord node maintains about the rest of the ring.
///
/// Everything here is the node's *belief*, not ground truth: successor-list
/// and finger entries may point at peers that have already failed, and such
/// stale entries are only corrected by stabilization rounds or lazily after a
/// lookup times out on them. That distinction is what makes lookup cost grow
/// with the failure rate.
#[derive(Clone, Debug)]
pub struct ChordNode {
    /// This node's identifier.
    pub id: NodeId,
    /// Believed predecessor on the ring.
    pub predecessor: Option<NodeId>,
    /// Successor list; the first entry is the immediate successor.
    pub successors: Vec<NodeId>,
    /// Finger table: `fingers[i]` is the believed successor of
    /// `id + 2^i (mod 2^64)`. Entries may be missing (`None`) right after a
    /// join until the first refresh, or stale after failures.
    pub fingers: Vec<Option<NodeId>>,
    /// Round-robin cursor of the next finger index to refresh during
    /// stabilization (mirrors Chord's `fix_fingers`).
    pub next_finger_to_fix: usize,
}

impl ChordNode {
    /// Creates a node with empty routing state.
    pub fn new(id: NodeId) -> Self {
        ChordNode {
            id,
            predecessor: None,
            successors: Vec::new(),
            fingers: Vec::new(),
            next_finger_to_fix: 0,
        }
    }

    /// The node's immediate successor belief, if it has one.
    pub fn successor(&self) -> Option<NodeId> {
        self.successors.first().copied()
    }

    /// Iterates over the finger entries from the *largest* interval to the
    /// smallest — the order in which `closest_preceding_node` scans them.
    pub fn fingers_high_to_low(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        self.fingers
            .iter()
            .enumerate()
            .rev()
            .filter_map(|(i, f)| f.map(|n| (i, n)))
    }

    /// Removes every reference to `dead` from this node's routing state.
    /// Returns how many entries were dropped.
    pub fn purge_reference(&mut self, dead: NodeId) -> u32 {
        let mut purged = 0;
        let before = self.successors.len();
        self.successors.retain(|n| *n != dead);
        purged += (before - self.successors.len()) as u32;
        if self.predecessor == Some(dead) {
            self.predecessor = None;
            purged += 1;
        }
        for finger in self.fingers.iter_mut() {
            if *finger == Some(dead) {
                *finger = None;
                purged += 1;
            }
        }
        purged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_has_no_routing_state() {
        let n = ChordNode::new(NodeId(42));
        assert_eq!(n.successor(), None);
        assert_eq!(n.predecessor, None);
        assert!(n.fingers.is_empty());
    }

    #[test]
    fn fingers_iterate_high_to_low_skipping_gaps() {
        let mut n = ChordNode::new(NodeId(0));
        n.fingers = vec![Some(NodeId(1)), None, Some(NodeId(3)), Some(NodeId(4))];
        let order: Vec<_> = n.fingers_high_to_low().collect();
        assert_eq!(order, vec![(3, NodeId(4)), (2, NodeId(3)), (0, NodeId(1))]);
    }

    #[test]
    fn purge_removes_all_references() {
        let mut n = ChordNode::new(NodeId(0));
        n.predecessor = Some(NodeId(9));
        n.successors = vec![NodeId(9), NodeId(5)];
        n.fingers = vec![Some(NodeId(9)), Some(NodeId(5)), Some(NodeId(9))];
        let purged = n.purge_reference(NodeId(9));
        assert_eq!(purged, 4);
        assert_eq!(n.successors, vec![NodeId(5)]);
        assert_eq!(n.predecessor, None);
        assert_eq!(n.fingers, vec![None, Some(NodeId(5)), None]);
    }

    #[test]
    fn purge_of_unknown_node_is_noop() {
        let mut n = ChordNode::new(NodeId(0));
        n.successors = vec![NodeId(5)];
        assert_eq!(n.purge_reference(NodeId(77)), 0);
        assert_eq!(n.successors, vec![NodeId(5)]);
    }
}
