//! Node identifiers and ring-interval arithmetic.

use std::fmt;

/// A peer identifier in the m = 64-bit identifier space shared by keys and
/// peers.
///
/// Chord places these on a ring ordered modulo 2^64; CAN maps them to points
/// of its coordinate space. Key positions produced by
/// [`rdht_hashing::HashFunction::eval`](rdht_hashing::HashFunction) live in
/// the same space, so "the peer responsible for `k` wrt `h`" is well defined
/// for both overlays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the identifier `self + 2^exp (mod 2^64)`, the start of the
    /// `exp`-th Chord finger interval.
    #[inline]
    pub fn finger_start(self, exp: u32) -> u64 {
        self.0.wrapping_add(1u64.wrapping_shl(exp))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:#018x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u64 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// Whether `x` lies in the half-open ring interval `(start, end]`, taking
/// wrap-around into account.
///
/// If `start == end` the interval denotes the *entire* ring (this is the
/// single-node case in Chord, where a node is its own successor and is
/// responsible for every key).
#[inline]
pub fn in_open_closed_interval(start: u64, end: u64, x: u64) -> bool {
    if start == end {
        true
    } else if start < end {
        start < x && x <= end
    } else {
        x > start || x <= end
    }
}

/// Whether `x` lies in the open ring interval `(start, end)`, taking
/// wrap-around into account. `start == end` again denotes the full ring
/// (minus the endpoint itself).
#[inline]
pub fn in_open_open_interval(start: u64, end: u64, x: u64) -> bool {
    if start == end {
        x != start
    } else if start < end {
        start < x && x < end
    } else {
        x > start || x < end
    }
}

/// Clockwise distance from `from` to `to` on the 2^64 ring.
#[inline]
pub fn distance_clockwise(from: u64, to: u64) -> u64 {
    to.wrapping_sub(from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_closed_non_wrapping() {
        assert!(in_open_closed_interval(10, 20, 15));
        assert!(in_open_closed_interval(10, 20, 20));
        assert!(!in_open_closed_interval(10, 20, 10));
        assert!(!in_open_closed_interval(10, 20, 25));
        assert!(!in_open_closed_interval(10, 20, 5));
    }

    #[test]
    fn open_closed_wrapping() {
        assert!(in_open_closed_interval(u64::MAX - 5, 5, 2));
        assert!(in_open_closed_interval(u64::MAX - 5, 5, u64::MAX));
        assert!(in_open_closed_interval(u64::MAX - 5, 5, 5));
        assert!(!in_open_closed_interval(u64::MAX - 5, 5, u64::MAX - 5));
        assert!(!in_open_closed_interval(u64::MAX - 5, 5, 100));
    }

    #[test]
    fn open_closed_degenerate_full_ring() {
        assert!(in_open_closed_interval(7, 7, 7));
        assert!(in_open_closed_interval(7, 7, 0));
        assert!(in_open_closed_interval(7, 7, u64::MAX));
    }

    #[test]
    fn open_open_non_wrapping() {
        assert!(in_open_open_interval(10, 20, 15));
        assert!(!in_open_open_interval(10, 20, 20));
        assert!(!in_open_open_interval(10, 20, 10));
    }

    #[test]
    fn open_open_wrapping() {
        assert!(in_open_open_interval(u64::MAX - 5, 5, 0));
        assert!(!in_open_open_interval(u64::MAX - 5, 5, 5));
        assert!(!in_open_open_interval(u64::MAX - 5, 5, 1000));
    }

    #[test]
    fn open_open_degenerate_excludes_endpoint() {
        assert!(!in_open_open_interval(7, 7, 7));
        assert!(in_open_open_interval(7, 7, 8));
    }

    #[test]
    fn clockwise_distance_wraps() {
        assert_eq!(distance_clockwise(10, 20), 10);
        assert_eq!(distance_clockwise(20, 10), u64::MAX - 9);
        assert_eq!(distance_clockwise(5, 5), 0);
    }

    #[test]
    fn finger_start_wraps_around() {
        let n = NodeId(u64::MAX);
        assert_eq!(n.finger_start(0), 0);
        assert_eq!(NodeId(0).finger_start(3), 8);
        assert_eq!(NodeId(10).finger_start(63), 10u64.wrapping_add(1 << 63));
    }
}
