//! Node identifiers and ring-interval arithmetic.

use std::fmt;

/// A peer identifier in the m = 64-bit identifier space shared by keys and
/// peers.
///
/// Chord places these on a ring ordered modulo 2^64; CAN maps them to points
/// of its coordinate space. Key positions produced by
/// [`rdht_hashing::HashFunction::eval`](rdht_hashing::HashFunction) live in
/// the same space, so "the peer responsible for `k` wrt `h`" is well defined
/// for both overlays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the identifier `self + 2^exp (mod 2^64)`, the start of the
    /// `exp`-th Chord finger interval.
    #[inline]
    pub fn finger_start(self, exp: u32) -> u64 {
        self.0.wrapping_add(1u64.wrapping_shl(exp))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:#018x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u64 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// Whether `x` lies in the half-open ring interval `(start, end]`, taking
/// wrap-around into account.
///
/// If `start == end` the interval denotes the *entire* ring (this is the
/// single-node case in Chord, where a node is its own successor and is
/// responsible for every key).
#[inline]
pub fn in_open_closed_interval(start: u64, end: u64, x: u64) -> bool {
    if start == end {
        true
    } else if start < end {
        start < x && x <= end
    } else {
        x > start || x <= end
    }
}

/// Whether `x` lies in the open ring interval `(start, end)`, taking
/// wrap-around into account. `start == end` again denotes the full ring
/// (minus the endpoint itself).
#[inline]
pub fn in_open_open_interval(start: u64, end: u64, x: u64) -> bool {
    if start == end {
        x != start
    } else if start < end {
        start < x && x < end
    } else {
        x > start || x < end
    }
}

/// Clockwise distance from `from` to `to` on the 2^64 ring.
#[inline]
pub fn distance_clockwise(from: u64, to: u64) -> u64 {
    to.wrapping_sub(from)
}

/// Splits the half-open ring interval `(start, end]` at `mid`, yielding the
/// two adjacent intervals `(start, mid]` and `(mid, end]`.
///
/// This is what a **join** does to the successor's responsibility range: the
/// joiner (at `mid`) takes the counter-clockwise half, the successor keeps
/// the clockwise half. Returns `None` when `mid` does not lie strictly
/// inside the interval (splitting there would produce an empty or
/// ill-defined half). The degenerate full-ring interval `(x, x]` splits at
/// any `mid != x`.
#[inline]
pub fn split_range(start: u64, end: u64, mid: u64) -> Option<((u64, u64), (u64, u64))> {
    if !in_open_open_interval(start, end, mid) {
        return None;
    }
    Some(((start, mid), (mid, end)))
}

/// Merges the adjacent half-open ring intervals `(a.0, a.1]` and
/// `(b.0, b.1]` into `(a.0, b.1]` — the inverse of [`split_range`], and what
/// a **graceful leave** does to the successor's responsibility range: the
/// departing peer's interval `a` fuses with the successor's interval `b`.
///
/// Returns `None` unless `a` ends exactly where `b` starts, or when either
/// input is the degenerate full-ring interval (there is nothing left to
/// merge it with). Merging the two complementary halves of the whole ring
/// yields the degenerate full-ring interval `(x, x]`.
#[inline]
pub fn merge_ranges(a: (u64, u64), b: (u64, u64)) -> Option<(u64, u64)> {
    if a.0 == a.1 || b.0 == b.1 || a.1 != b.0 {
        return None;
    }
    // Rule out "merges" that would wrap past the start of `a` and cover
    // positions more than once: b must not reach beyond a's start.
    if in_open_open_interval(a.0, a.1, b.1) {
        return None;
    }
    Some((a.0, b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_closed_non_wrapping() {
        assert!(in_open_closed_interval(10, 20, 15));
        assert!(in_open_closed_interval(10, 20, 20));
        assert!(!in_open_closed_interval(10, 20, 10));
        assert!(!in_open_closed_interval(10, 20, 25));
        assert!(!in_open_closed_interval(10, 20, 5));
    }

    #[test]
    fn open_closed_wrapping() {
        assert!(in_open_closed_interval(u64::MAX - 5, 5, 2));
        assert!(in_open_closed_interval(u64::MAX - 5, 5, u64::MAX));
        assert!(in_open_closed_interval(u64::MAX - 5, 5, 5));
        assert!(!in_open_closed_interval(u64::MAX - 5, 5, u64::MAX - 5));
        assert!(!in_open_closed_interval(u64::MAX - 5, 5, 100));
    }

    #[test]
    fn open_closed_degenerate_full_ring() {
        assert!(in_open_closed_interval(7, 7, 7));
        assert!(in_open_closed_interval(7, 7, 0));
        assert!(in_open_closed_interval(7, 7, u64::MAX));
    }

    #[test]
    fn open_open_non_wrapping() {
        assert!(in_open_open_interval(10, 20, 15));
        assert!(!in_open_open_interval(10, 20, 20));
        assert!(!in_open_open_interval(10, 20, 10));
    }

    #[test]
    fn open_open_wrapping() {
        assert!(in_open_open_interval(u64::MAX - 5, 5, 0));
        assert!(!in_open_open_interval(u64::MAX - 5, 5, 5));
        assert!(!in_open_open_interval(u64::MAX - 5, 5, 1000));
    }

    #[test]
    fn open_open_degenerate_excludes_endpoint() {
        assert!(!in_open_open_interval(7, 7, 7));
        assert!(in_open_open_interval(7, 7, 8));
    }

    #[test]
    fn clockwise_distance_wraps() {
        assert_eq!(distance_clockwise(10, 20), 10);
        assert_eq!(distance_clockwise(20, 10), u64::MAX - 9);
        assert_eq!(distance_clockwise(5, 5), 0);
    }

    #[test]
    fn split_range_yields_adjacent_halves() {
        assert_eq!(split_range(10, 100, 40), Some(((10, 40), (40, 100))));
        // Wrapped interval split on either side of the origin.
        assert_eq!(
            split_range(u64::MAX - 5, 10, 3),
            Some(((u64::MAX - 5, 3), (3, 10)))
        );
        assert_eq!(
            split_range(u64::MAX - 5, 10, u64::MAX),
            Some(((u64::MAX - 5, u64::MAX), (u64::MAX, 10)))
        );
        // The split point must lie strictly inside.
        assert_eq!(split_range(10, 100, 10), None);
        assert_eq!(split_range(10, 100, 100), None);
        assert_eq!(split_range(10, 100, 200), None);
        // Degenerate full ring splits anywhere but its anchor.
        assert_eq!(split_range(7, 7, 100), Some(((7, 100), (100, 7))));
        assert_eq!(split_range(7, 7, 7), None);
    }

    #[test]
    fn merge_ranges_is_the_inverse_of_split() {
        assert_eq!(merge_ranges((10, 40), (40, 100)), Some((10, 100)));
        // Non-adjacent or degenerate inputs do not merge.
        assert_eq!(merge_ranges((10, 40), (50, 100)), None);
        assert_eq!(merge_ranges((7, 7), (7, 10)), None);
        assert_eq!(merge_ranges((10, 40), (40, 40)), None);
        // Complementary halves fuse into the full ring.
        assert_eq!(merge_ranges((10, 100), (100, 10)), Some((10, 10)));
        // A second interval wrapping back inside the first is rejected.
        assert_eq!(merge_ranges((10, 100), (100, 50)), None);
        // Round trip through a wrapped split.
        let (a, b) = split_range(u64::MAX - 5, 10, 3).unwrap();
        assert_eq!(merge_ranges(a, b), Some((u64::MAX - 5, 10)));
    }

    #[test]
    fn finger_start_wraps_around() {
        let n = NodeId(u64::MAX);
        assert_eq!(n.finger_start(0), 0);
        assert_eq!(NodeId(0).finger_start(3), 8);
        assert_eq!(NodeId(10).finger_start(63), 10u64.wrapping_add(1 << 63));
    }
}
