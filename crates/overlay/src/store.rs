//! Per-peer replica storage.
//!
//! Every peer stores the `(k, {data, stamp})` pairs it is responsible for,
//! one entry per `(hash function, key)` pair (a peer can be responsible for
//! the same key under several replication hash functions). The *stamp* is an
//! opaque `u64` interpreted by the layer above: UMS stores KTS timestamps in
//! it, the BRK baseline stores version numbers.

use std::collections::HashMap;

use rdht_hashing::{HashId, Key};

/// How a write should treat an existing entry for the same `(hash, key)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Keep whichever record has the greater stamp (UMS semantics: a peer
    /// receiving `(k, {data, ts})` only overwrites if `ts > ts0`,
    /// Section 3.2).
    KeepNewest,
    /// Unconditionally overwrite (used by maintenance/transfer paths and by
    /// stores that have no ordering, such as a naive DHT without currency).
    Overwrite,
}

/// One stored replica: the payload plus its stamp and the position of the
/// key under the hash function it was stored with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Application payload.
    pub payload: Vec<u8>,
    /// Ordering stamp (KTS timestamp for UMS, version counter for BRK).
    pub stamp: u64,
    /// Position of the key in the identifier space under the hash function
    /// the record was stored with; used to decide which records move when
    /// responsibility for a ring interval changes hands.
    pub position: u64,
}

/// The replica store of a single peer.
#[derive(Clone, Debug, Default)]
pub struct PeerStore {
    entries: HashMap<(HashId, Key), Record>,
}

impl PeerStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PeerStore {
            entries: HashMap::new(),
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or merges a record according to `policy`. Returns `true` if
    /// the store was modified.
    pub fn put(&mut self, hash: HashId, key: Key, record: Record, policy: WritePolicy) -> bool {
        use std::collections::hash_map::Entry;
        match self.entries.entry((hash, key)) {
            Entry::Vacant(v) => {
                v.insert(record);
                true
            }
            Entry::Occupied(mut o) => match policy {
                WritePolicy::Overwrite => {
                    o.insert(record);
                    true
                }
                WritePolicy::KeepNewest => {
                    if record.stamp > o.get().stamp {
                        o.insert(record);
                        true
                    } else {
                        false
                    }
                }
            },
        }
    }

    /// Reads the record stored for `(hash, key)`, if any.
    pub fn get(&self, hash: HashId, key: &Key) -> Option<&Record> {
        self.entries.get(&(hash, key.clone()))
    }

    /// Removes the record stored for `(hash, key)`, returning it.
    pub fn remove(&mut self, hash: HashId, key: &Key) -> Option<Record> {
        self.entries.remove(&(hash, key.clone()))
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = (&(HashId, Key), &Record)> {
        self.entries.iter()
    }

    /// Drains every record whose position falls inside the half-open ring
    /// interval `(range_start, range_end]`. Used when responsibility for that
    /// interval moves to another peer (join / graceful leave).
    pub fn drain_range(&mut self, range_start: u64, range_end: u64) -> Vec<(HashId, Key, Record)> {
        let moving: Vec<(HashId, Key)> = self
            .entries
            .iter()
            .filter(|(_, rec)| {
                crate::id::in_open_closed_interval(range_start, range_end, rec.position)
            })
            .map(|((h, k), _)| (*h, k.clone()))
            .collect();
        moving
            .into_iter()
            .map(|(h, k)| {
                let rec = self.entries.remove(&(h, k.clone())).expect("key just seen");
                (h, k, rec)
            })
            .collect()
    }

    /// Removes every record (used when a peer fails and its memory is lost).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The greatest stamp stored for `key` under any hash function, if any.
    /// This is what the *indirect* counter-initialization algorithm inspects
    /// locally on each replica holder.
    pub fn max_stamp_for_key(&self, key: &Key) -> Option<u64> {
        self.entries
            .iter()
            .filter(|((_, k), _)| k == key)
            .map(|(_, rec)| rec.stamp)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stamp: u64, position: u64) -> Record {
        Record {
            payload: vec![stamp as u8],
            stamp,
            position,
        }
    }

    #[test]
    fn keep_newest_rejects_stale_writes() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        assert!(store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest));
        assert!(!store.put(HashId(0), k.clone(), rec(3, 10), WritePolicy::KeepNewest));
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 5);
        assert!(store.put(HashId(0), k.clone(), rec(9, 10), WritePolicy::KeepNewest));
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 9);
    }

    #[test]
    fn keep_newest_rejects_equal_stamp() {
        // Equal timestamps must not overwrite: the stored replica already
        // reflects that update and the payloads are identical by construction.
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest);
        assert!(!store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest));
    }

    #[test]
    fn overwrite_policy_always_wins() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest);
        assert!(store.put(HashId(0), k.clone(), rec(1, 10), WritePolicy::Overwrite));
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 1);
    }

    #[test]
    fn same_key_different_hash_functions_are_independent() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest);
        store.put(HashId(1), k.clone(), rec(7, 20), WritePolicy::KeepNewest);
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 5);
        assert_eq!(store.get(HashId(1), &k).unwrap().stamp, 7);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn drain_range_moves_only_covered_positions() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("a"),
            rec(1, 100),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("b"),
            rec(2, 200),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("c"),
            rec(3, 300),
            WritePolicy::Overwrite,
        );
        let moved = store.drain_range(150, 250);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].1, Key::new("b"));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn drain_range_handles_wraparound() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("hi"),
            rec(1, u64::MAX - 2),
            WritePolicy::Overwrite,
        );
        store.put(HashId(0), Key::new("lo"), rec(2, 3), WritePolicy::Overwrite);
        store.put(
            HashId(0),
            Key::new("mid"),
            rec(3, 1 << 40),
            WritePolicy::Overwrite,
        );
        let moved = store.drain_range(u64::MAX - 10, 10);
        let keys: Vec<_> = moved.iter().map(|(_, k, _)| k.clone()).collect();
        assert!(keys.contains(&Key::new("hi")));
        assert!(keys.contains(&Key::new("lo")));
        assert_eq!(moved.len(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn max_stamp_for_key_spans_hash_functions() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::Overwrite);
        store.put(HashId(3), k.clone(), rec(12, 99), WritePolicy::Overwrite);
        store.put(
            HashId(1),
            Key::new("other"),
            rec(100, 7),
            WritePolicy::Overwrite,
        );
        assert_eq!(store.max_stamp_for_key(&k), Some(12));
        assert_eq!(store.max_stamp_for_key(&Key::new("missing")), None);
    }

    #[test]
    fn clear_empties_the_store() {
        let mut store = PeerStore::new();
        store.put(HashId(0), Key::new("x"), rec(1, 1), WritePolicy::Overwrite);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
    }
}
