//! Per-peer replica storage.
//!
//! Every peer stores the `(k, {data, stamp})` pairs it is responsible for,
//! one entry per `(hash function, key)` pair (a peer can be responsible for
//! the same key under several replication hash functions). The *stamp* is an
//! opaque `u64` interpreted by the layer above: UMS stores KTS timestamps in
//! it, the BRK baseline stores version numbers.
//!
//! The store is indexed two ways:
//!
//! * a per-key map whose entries hold the (at most `|Hr|`) per-hash records
//!   of that key — `get`/`remove` are borrowed-key lookups with no clone,
//!   and `max_stamp_for_key` scans `O(|Hr|)` records instead of the whole
//!   store;
//! * a position-sorted secondary index over the identifier ring, so the
//!   churn/join transfer path ([`PeerStore::drain_range`]) visits only the
//!   records that actually move: `O(moved · log n)` instead of two full
//!   `O(store)` passes regardless of how much moves.

use std::collections::{BTreeSet, HashMap};
use std::ops::Bound;

use rdht_hashing::{HashId, Key};

/// How a write should treat an existing entry for the same `(hash, key)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// Keep whichever record has the greater stamp (UMS semantics: a peer
    /// receiving `(k, {data, ts})` only overwrites if `ts > ts0`,
    /// Section 3.2).
    KeepNewest,
    /// Unconditionally overwrite (used by maintenance/transfer paths and by
    /// stores that have no ordering, such as a naive DHT without currency).
    Overwrite,
}

/// One stored replica: the payload plus its stamp and the position of the
/// key under the hash function it was stored with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Application payload.
    pub payload: Vec<u8>,
    /// Ordering stamp (KTS timestamp for UMS, version counter for BRK).
    pub stamp: u64,
    /// Position of the key in the identifier space under the hash function
    /// the record was stored with; used to decide which records move when
    /// responsibility for a ring interval changes hands.
    pub position: u64,
}

/// All records a peer holds for one key, one per hash function. `|Hr|` is
/// small (10 in Table 1), so a linear scan of the vector beats any nested
/// map.
#[derive(Clone, Debug, Default)]
struct KeyRecords {
    records: Vec<(HashId, Record)>,
}

impl KeyRecords {
    fn find(&self, hash: HashId) -> Option<usize> {
        self.records.iter().position(|(h, _)| *h == hash)
    }
}

/// One entry of the position index: the record's ring position first, so a
/// `BTreeSet` of these is ordered by position (key clones in the index are
/// refcount bumps — [`Key`] is `Arc`-backed).
type IndexEntry = (u64, HashId, Key);

/// The replica store of a single peer.
#[derive(Clone, Debug, Default)]
pub struct PeerStore {
    /// Per-key record tables; keys are looked up borrowed (no clone).
    keys: HashMap<Key, KeyRecords>,
    /// Ring-position index: a flat ordered set of `(position, hash, key)`
    /// entries, one per stored record.
    by_position: BTreeSet<IndexEntry>,
    /// Total number of `(hash, key)` records.
    len: usize,
}

/// The smallest possible [`IndexEntry`] with a position `>= position` (the
/// empty key is the minimum of the key order).
fn index_floor(position: u64) -> IndexEntry {
    (position, HashId(0), Key::from_bytes(Vec::new()))
}

impl PeerStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PeerStore::default()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn index_insert(&mut self, position: u64, key: &Key, hash: HashId) {
        self.by_position.insert((position, hash, key.clone()));
    }

    fn index_remove(&mut self, position: u64, key: &Key, hash: HashId) {
        self.by_position.remove(&(position, hash, key.clone()));
    }

    /// Inserts or merges a record according to `policy`. Returns `true` if
    /// the store was modified.
    ///
    /// Writes against an existing `(hash, key)` record take a fast path that
    /// never clones the key and touches the position index only when the
    /// record's ring position actually changed (it almost never does — a
    /// record's position is a pure function of `(hash, key)`): a rejected
    /// stale write and the common same-position overwrite are index-free.
    /// Only the first insert of a record pays the `O(log n)` index insert;
    /// see README "Performance" for the measured cost.
    pub fn put(&mut self, hash: HashId, key: Key, record: Record, policy: WritePolicy) -> bool {
        if let Some(entry) = self.keys.get_mut(&key) {
            match entry.find(hash) {
                Some(i) => {
                    let accept = match policy {
                        WritePolicy::Overwrite => true,
                        WritePolicy::KeepNewest => record.stamp > entry.records[i].1.stamp,
                    };
                    if !accept {
                        return false;
                    }
                    let old_position = entry.records[i].1.position;
                    let new_position = record.position;
                    entry.records[i].1 = record;
                    if old_position != new_position {
                        self.index_remove(old_position, &key, hash);
                        self.index_insert(new_position, &key, hash);
                    }
                }
                None => {
                    let position = record.position;
                    entry.records.push((hash, record));
                    self.len += 1;
                    self.index_insert(position, &key, hash);
                }
            }
        } else {
            let position = record.position;
            self.keys.insert(
                key.clone(),
                KeyRecords {
                    records: vec![(hash, record)],
                },
            );
            self.len += 1;
            self.index_insert(position, &key, hash);
        }
        true
    }

    /// Reads the record stored for `(hash, key)`, if any. Borrowed lookup —
    /// never clones the key.
    #[inline]
    pub fn get(&self, hash: HashId, key: &Key) -> Option<&Record> {
        let entry = self.keys.get(key)?;
        entry
            .records
            .iter()
            .find(|(h, _)| *h == hash)
            .map(|(_, rec)| rec)
    }

    /// Removes the record stored for `(hash, key)`, returning it. Borrowed
    /// lookup — never clones the key.
    pub fn remove(&mut self, hash: HashId, key: &Key) -> Option<Record> {
        let entry = self.keys.get_mut(key)?;
        let i = entry.find(hash)?;
        let (_, record) = entry.records.swap_remove(i);
        let now_empty = entry.records.is_empty();
        if now_empty {
            self.keys.remove(key);
        }
        self.len -= 1;
        self.index_remove(record.position, key, hash);
        Some(record)
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = (HashId, &Key, &Record)> {
        self.keys.iter().flat_map(|(key, entry)| {
            entry
                .records
                .iter()
                .map(move |(hash, rec)| (*hash, key, rec))
        })
    }

    /// Drains every record whose position falls inside the half-open ring
    /// interval `(range_start, range_end]`. Used when responsibility for that
    /// interval moves to another peer (join / graceful leave).
    ///
    /// Only the position-index entries covered by the interval are visited —
    /// `O(moved · log n)` total (a range walk to find them, then one map and
    /// one index removal per moved record) instead of a full `O(store)` scan
    /// regardless of how much moves — and the drained records come out in
    /// ascending ring-position order starting after `range_start`, which is
    /// deterministic (the old full-scan implementation iterated a `HashMap`).
    pub fn drain_range(&mut self, range_start: u64, range_end: u64) -> Vec<(HashId, Key, Record)> {
        let mut moving: Vec<(Key, HashId)> = Vec::new();
        {
            let mut collect = |entry: &IndexEntry| {
                let (_, hash, key) = entry;
                moving.push((key.clone(), *hash));
            };
            // `(position, ..]` translates to index entries `>= position + 1`
            // with the minimal hash/key, since positions sort first.
            if range_start == range_end {
                // Degenerate interval: the entire ring (single-node case).
                self.by_position.iter().for_each(&mut collect);
            } else if range_start < range_end {
                let upper = match range_end.checked_add(1) {
                    Some(next) => Bound::Excluded(index_floor(next)),
                    None => Bound::Unbounded,
                };
                self.by_position
                    .range((Bound::Included(index_floor(range_start + 1)), upper))
                    .for_each(&mut collect);
            } else {
                // Wrapped interval: (range_start, MAX] then [0, range_end].
                if range_start < u64::MAX {
                    self.by_position
                        .range(index_floor(range_start + 1)..)
                        .for_each(&mut collect);
                }
                self.by_position
                    .range(..index_floor(range_end + 1))
                    .for_each(&mut collect);
            }
        }
        moving
            .into_iter()
            .map(|(key, hash)| {
                let record = self.remove(hash, &key).expect("indexed record exists");
                (hash, key, record)
            })
            .collect()
    }

    /// Removes every record (used when a peer fails and its memory is lost).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.by_position.clear();
        self.len = 0;
    }

    /// Snapshots every record in deterministic ascending ring-position
    /// order (the position index's order, independent of `HashMap` seeding).
    /// Together with [`PeerStore::bulk_load`] this is the journaling /
    /// state-transfer surface of the store: iterate on the source, bulk-load
    /// on the destination.
    pub fn snapshot(&self) -> Vec<(HashId, Key, Record)> {
        self.by_position
            .iter()
            .map(|(_, hash, key)| {
                let record = self.get(*hash, key).expect("indexed record exists").clone();
                (*hash, key.clone(), record)
            })
            .collect()
    }

    /// Loads a batch of records (last write wins for duplicate `(hash, key)`
    /// pairs), rebuilding the position index once at the end instead of
    /// paying one `O(log n)` index insert per record — the restore half of
    /// snapshot/restore and the receiving half of a range transfer. Returns
    /// the number of records ingested.
    pub fn bulk_load(&mut self, records: impl IntoIterator<Item = (HashId, Key, Record)>) -> usize {
        let mut loaded = 0;
        for (hash, key, record) in records {
            let entry = self.keys.entry(key).or_default();
            match entry.find(hash) {
                Some(i) => entry.records[i].1 = record,
                None => {
                    entry.records.push((hash, record));
                    self.len += 1;
                }
            }
            loaded += 1;
        }
        self.rebuild_index();
        loaded
    }

    /// Rebuilds the position index from the per-key tables: collect, sort,
    /// bulk-build (a `BTreeSet` built from a sorted iterator is constructed
    /// bottom-up, cheaper than n root-down inserts).
    fn rebuild_index(&mut self) {
        let mut entries: Vec<IndexEntry> = self
            .keys
            .iter()
            .flat_map(|(key, entry)| {
                entry
                    .records
                    .iter()
                    .map(move |(hash, record)| (record.position, *hash, key.clone()))
            })
            .collect();
        entries.sort_unstable();
        self.by_position = entries.into_iter().collect();
    }

    /// The greatest stamp stored for `key` under any hash function, if any.
    /// This is what the *indirect* counter-initialization algorithm inspects
    /// locally on each replica holder. `O(|Hr|)` — only the key's own
    /// records are visited.
    pub fn max_stamp_for_key(&self, key: &Key) -> Option<u64> {
        self.keys
            .get(key)?
            .records
            .iter()
            .map(|(_, rec)| rec.stamp)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stamp: u64, position: u64) -> Record {
        Record {
            payload: vec![stamp as u8],
            stamp,
            position,
        }
    }

    #[test]
    fn keep_newest_rejects_stale_writes() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        assert!(store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest));
        assert!(!store.put(HashId(0), k.clone(), rec(3, 10), WritePolicy::KeepNewest));
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 5);
        assert!(store.put(HashId(0), k.clone(), rec(9, 10), WritePolicy::KeepNewest));
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 9);
    }

    #[test]
    fn keep_newest_rejects_equal_stamp() {
        // Equal timestamps must not overwrite: the stored replica already
        // reflects that update and the payloads are identical by construction.
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest);
        assert!(!store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest));
    }

    #[test]
    fn overwrite_policy_always_wins() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest);
        assert!(store.put(HashId(0), k.clone(), rec(1, 10), WritePolicy::Overwrite));
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 1);
    }

    #[test]
    fn same_key_different_hash_functions_are_independent() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::KeepNewest);
        store.put(HashId(1), k.clone(), rec(7, 20), WritePolicy::KeepNewest);
        assert_eq!(store.get(HashId(0), &k).unwrap().stamp, 5);
        assert_eq!(store.get(HashId(1), &k).unwrap().stamp, 7);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn drain_range_moves_only_covered_positions() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("a"),
            rec(1, 100),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("b"),
            rec(2, 200),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("c"),
            rec(3, 300),
            WritePolicy::Overwrite,
        );
        let moved = store.drain_range(150, 250);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].1, Key::new("b"));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn drain_range_handles_wraparound() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("hi"),
            rec(1, u64::MAX - 2),
            WritePolicy::Overwrite,
        );
        store.put(HashId(0), Key::new("lo"), rec(2, 3), WritePolicy::Overwrite);
        store.put(
            HashId(0),
            Key::new("mid"),
            rec(3, 1 << 40),
            WritePolicy::Overwrite,
        );
        let moved = store.drain_range(u64::MAX - 10, 10);
        let keys: Vec<_> = moved.iter().map(|(_, k, _)| k.clone()).collect();
        assert!(keys.contains(&Key::new("hi")));
        assert!(keys.contains(&Key::new("lo")));
        assert_eq!(moved.len(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn drain_range_degenerate_interval_drains_everything() {
        let mut store = PeerStore::new();
        store.put(HashId(0), Key::new("a"), rec(1, 0), WritePolicy::Overwrite);
        store.put(
            HashId(1),
            Key::new("b"),
            rec(2, u64::MAX),
            WritePolicy::Overwrite,
        );
        let moved = store.drain_range(7, 7);
        assert_eq!(moved.len(), 2);
        assert!(store.is_empty());
    }

    #[test]
    fn drain_range_of_uncovered_interval_is_a_no_op() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("a"),
            rec(1, 100),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("b"),
            rec(2, 5000),
            WritePolicy::Overwrite,
        );
        // An interval covering no stored position moves nothing...
        assert!(store.drain_range(200, 400).is_empty());
        // ...including the smallest possible non-degenerate interval.
        assert!(store.drain_range(100, 101).is_empty());
        assert_eq!(store.len(), 2);
        // The boundary semantics are (start, end]: start stays, end moves.
        let moved = store.drain_range(99, 100);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].1, Key::new("a"));
    }

    #[test]
    fn drain_range_wrapping_exactly_at_the_ring_origin() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("top"),
            rec(1, u64::MAX),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("zero"),
            rec(2, 0),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("mid"),
            rec(3, 1 << 32),
            WritePolicy::Overwrite,
        );
        // (MAX, 0] wraps across the origin and covers position 0 only.
        let moved = store.clone().drain_range(u64::MAX, 0);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].1, Key::new("zero"));
        // (MAX-1, 0] additionally covers position MAX.
        let moved = store.drain_range(u64::MAX - 1, 0);
        let keys: Vec<_> = moved.iter().map(|(_, k, _)| k.clone()).collect();
        assert!(keys.contains(&Key::new("top")));
        assert!(keys.contains(&Key::new("zero")));
        assert_eq!(moved.len(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn full_ring_drain_empties_the_store_in_position_order() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("c"),
            rec(3, 9000),
            WritePolicy::Overwrite,
        );
        store.put(HashId(1), Key::new("a"), rec(1, 10), WritePolicy::Overwrite);
        store.put(
            HashId(2),
            Key::new("b"),
            rec(2, 400),
            WritePolicy::Overwrite,
        );
        // start == end denotes the whole ring; the degenerate drain visits
        // the position index in ascending order.
        let moved = store.drain_range(500, 500);
        assert!(store.is_empty());
        let positions: Vec<u64> = moved.iter().map(|(_, _, r)| r.position).collect();
        assert_eq!(positions, vec![10, 400, 9000]);
    }

    #[test]
    fn max_stamp_for_key_spans_hash_functions() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(5, 10), WritePolicy::Overwrite);
        store.put(HashId(3), k.clone(), rec(12, 99), WritePolicy::Overwrite);
        store.put(
            HashId(1),
            Key::new("other"),
            rec(100, 7),
            WritePolicy::Overwrite,
        );
        assert_eq!(store.max_stamp_for_key(&k), Some(12));
        assert_eq!(store.max_stamp_for_key(&Key::new("missing")), None);
    }

    #[test]
    fn clear_empties_the_store() {
        let mut store = PeerStore::new();
        store.put(HashId(0), Key::new("x"), rec(1, 1), WritePolicy::Overwrite);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.drain_range(0, u64::MAX).len(), 0);
    }

    #[test]
    fn overwrite_with_new_position_moves_index_entry() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(1, 100), WritePolicy::Overwrite);
        store.put(HashId(0), k.clone(), rec(2, 5000), WritePolicy::Overwrite);
        assert_eq!(store.len(), 1);
        // The record is only draining from its new position.
        assert!(store.clone().drain_range(50, 150).is_empty());
        let moved = store.drain_range(4000, 6000);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].2.stamp, 2);
    }

    #[test]
    fn remove_cleans_both_indexes() {
        let mut store = PeerStore::new();
        let k = Key::new("doc");
        store.put(HashId(0), k.clone(), rec(1, 10), WritePolicy::Overwrite);
        store.put(HashId(1), k.clone(), rec(2, 20), WritePolicy::Overwrite);
        assert_eq!(store.remove(HashId(0), &k).unwrap().stamp, 1);
        assert_eq!(store.len(), 1);
        assert!(store.remove(HashId(0), &k).is_none());
        let moved = store.drain_range(0, u64::MAX - 1);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, HashId(1));
        assert!(store.is_empty());
    }

    #[test]
    fn snapshot_bulk_load_round_trips() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("a"),
            rec(1, 300),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(1),
            Key::new("a"),
            rec(2, 100),
            WritePolicy::Overwrite,
        );
        store.put(
            HashId(0),
            Key::new("b"),
            rec(3, 200),
            WritePolicy::Overwrite,
        );
        let snapshot = store.snapshot();
        // Deterministic: ascending ring-position order.
        let positions: Vec<u64> = snapshot.iter().map(|(_, _, r)| r.position).collect();
        assert_eq!(positions, vec![100, 200, 300]);

        let mut restored = PeerStore::new();
        assert_eq!(restored.bulk_load(snapshot.clone()), 3);
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.snapshot(), snapshot);
        // The rebuilt index drives drain correctly.
        let moved = restored.drain_range(150, 250);
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].1, Key::new("b"));
    }

    #[test]
    fn bulk_load_into_populated_store_overwrites_and_reindexes() {
        let mut store = PeerStore::new();
        store.put(
            HashId(0),
            Key::new("a"),
            rec(1, 100),
            WritePolicy::Overwrite,
        );
        let loaded = store.bulk_load(vec![
            (HashId(0), Key::new("a"), rec(9, 5000)), // overwrite, position moves
            (HashId(2), Key::new("c"), rec(4, 400)),  // fresh record
            (HashId(2), Key::new("c"), rec(5, 450)),  // duplicate: last wins
        ]);
        assert_eq!(loaded, 3);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(HashId(0), &Key::new("a")).unwrap().stamp, 9);
        assert_eq!(store.get(HashId(2), &Key::new("c")).unwrap().stamp, 5);
        // Index reflects the final positions only.
        assert!(store.clone().drain_range(50, 150).is_empty());
        assert_eq!(store.clone().drain_range(4000, 6000).len(), 1);
        assert_eq!(store.clone().drain_range(425, 475).len(), 1);
    }

    #[test]
    fn iter_visits_every_record_once() {
        let mut store = PeerStore::new();
        store.put(HashId(0), Key::new("a"), rec(1, 10), WritePolicy::Overwrite);
        store.put(HashId(1), Key::new("a"), rec(2, 20), WritePolicy::Overwrite);
        store.put(HashId(0), Key::new("b"), rec(3, 30), WritePolicy::Overwrite);
        let mut seen: Vec<(u32, String, u64)> = store
            .iter()
            .map(|(h, k, r)| (h.0, k.display_lossy(), r.stamp))
            .collect();
        seen.sort();
        assert_eq!(
            seen,
            vec![
                (0, "a".to_string(), 1),
                (0, "b".to_string(), 3),
                (1, "a".to_string(), 2),
            ]
        );
    }
}
