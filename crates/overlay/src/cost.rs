//! Cost accounting records returned by overlay operations.
//!
//! The paper's evaluation reports two metrics: response time and number of
//! messages. The overlays do not know about wall-clock or simulated time —
//! they only return *counts* (hops, timeouts, maintenance messages) that the
//! environment (simulator or threaded deployment) prices with its own network
//! model.

use crate::id::NodeId;

/// Why a lookup could not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupError {
    /// The node issuing the lookup is not a live member of the overlay.
    OriginNotAlive,
    /// The overlay has no live members at all.
    EmptyOverlay,
    /// Routing gave up after exhausting the configured retry budget; the
    /// overlay was too damaged (e.g. extreme failure rates) to make progress.
    RoutingExhausted {
        /// Messages spent before giving up.
        messages: u32,
        /// Timeouts observed before giving up.
        timeouts: u32,
    },
}

impl std::fmt::Display for LookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LookupError::OriginNotAlive => write!(f, "lookup origin is not a live overlay member"),
            LookupError::EmptyOverlay => write!(f, "overlay has no live members"),
            LookupError::RoutingExhausted { messages, timeouts } => write!(
                f,
                "routing exhausted after {messages} messages and {timeouts} timeouts"
            ),
        }
    }
}

impl std::error::Error for LookupError {}

/// The result of routing a lookup for some target identifier.
///
/// Plain counters only — the record is `Copy` and the routing path is not
/// materialized, so issuing a lookup performs no allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The live peer currently responsible for the target identifier.
    pub responsible: NodeId,
    /// Number of routing hops (request messages) used, including the final
    /// hop to the responsible. A locally resolved lookup has zero hops.
    pub hops: u32,
    /// Number of timeouts suffered while probing peers that turned out to be
    /// dead (stale fingers or successors).
    pub timeouts: u32,
}

impl LookupOutcome {
    /// Total number of messages: one per hop plus one per timed-out probe.
    pub fn messages(&self) -> u32 {
        self.hops + self.timeouts
    }
}

/// The kind of membership change that produced a [`MembershipOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipEventKind {
    /// A new peer joined the overlay.
    Join,
    /// A peer left gracefully (announced its departure and handed over state).
    Leave,
    /// A peer failed (fail-stop, no hand-over).
    Fail,
}

/// A transfer of responsibility for part of the identifier space from one
/// peer to another.
///
/// For a **join**, `from` is the previous responsible (still alive; this is
/// the "RLA" detection point of Section 4.3) and `to` is the new peer.
/// For a graceful **leave**, `from` is the departing peer and `to` the peer
/// that absorbs its identifiers; the environment uses this to run the
/// *direct* counter-transfer algorithm and to hand replicas over.
/// For a **fail**, `from` is the dead peer and `handover_possible` is false:
/// no state can be copied and KTS must later fall back to the *indirect*
/// algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponsibilityChange {
    /// The peer that was responsible before the change.
    pub from: NodeId,
    /// The peer that is responsible after the change.
    pub to: NodeId,
    /// Ring interval `(range_start, range_end]` whose responsibility moved.
    /// For CAN this is the image of the zone being moved, expressed on the
    /// 64-bit space used by keys.
    pub range_start: u64,
    /// End (inclusive) of the moved interval.
    pub range_end: u64,
    /// Whether `from` was able to hand state over (true for join/leave,
    /// false for failures).
    pub handover_possible: bool,
    /// What caused the change.
    pub kind: MembershipEventKind,
}

impl ResponsibilityChange {
    /// Whether a key position falls inside the moved range.
    pub fn covers(&self, position: u64) -> bool {
        crate::id::in_open_closed_interval(self.range_start, self.range_end, position)
    }
}

/// The outcome of a join / leave / fail operation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MembershipOutcome {
    /// Responsibility transfers triggered by the change.
    pub changes: Vec<ResponsibilityChange>,
    /// Overlay maintenance messages spent performing the change (join
    /// lookups, notifications, zone-takeover coordination, ...).
    pub messages: u32,
}

impl MembershipOutcome {
    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: MembershipOutcome) {
        self.changes.extend(other.changes);
        self.messages += other.messages;
    }
}

/// The outcome of one stabilization round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StabilizeOutcome {
    /// Maintenance messages exchanged during the round.
    pub messages: u32,
    /// Number of dead entries purged from successor lists / neighbor sets.
    pub repaired_successors: u32,
    /// Number of finger-table (or CAN neighbor) entries refreshed.
    pub refreshed_fingers: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_messages_adds_timeouts() {
        let outcome = LookupOutcome {
            responsible: NodeId(1),
            hops: 5,
            timeouts: 2,
        };
        assert_eq!(outcome.messages(), 7);
    }

    #[test]
    fn responsibility_change_covers_wrapping_range() {
        let change = ResponsibilityChange {
            from: NodeId(1),
            to: NodeId(2),
            range_start: u64::MAX - 10,
            range_end: 10,
            handover_possible: true,
            kind: MembershipEventKind::Leave,
        };
        assert!(change.covers(5));
        assert!(change.covers(u64::MAX));
        assert!(!change.covers(500));
    }

    #[test]
    fn membership_outcome_merge_accumulates() {
        let mut a = MembershipOutcome {
            changes: vec![],
            messages: 3,
        };
        let b = MembershipOutcome {
            changes: vec![ResponsibilityChange {
                from: NodeId(1),
                to: NodeId(2),
                range_start: 0,
                range_end: 5,
                handover_possible: false,
                kind: MembershipEventKind::Fail,
            }],
            messages: 4,
        };
        a.merge(b);
        assert_eq!(a.messages, 7);
        assert_eq!(a.changes.len(), 1);
    }

    #[test]
    fn lookup_error_display_mentions_cause() {
        let e = LookupError::RoutingExhausted {
            messages: 12,
            timeouts: 7,
        };
        let text = e.to_string();
        assert!(text.contains("12"));
        assert!(text.contains("7"));
    }
}
