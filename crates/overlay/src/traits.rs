//! The [`Overlay`] abstraction shared by Chord and CAN.

use crate::cost::{LookupError, LookupOutcome, MembershipOutcome, StabilizeOutcome};
use crate::id::NodeId;

/// Which overlay protocol an implementation speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlayKind {
    /// The Chord ring (Stoica et al., SIGCOMM 2001).
    Chord,
    /// The Content-Addressable Network (Ratnasamy et al., SIGCOMM 2001).
    Can,
}

impl std::fmt::Display for OverlayKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OverlayKind::Chord => write!(f, "Chord"),
            OverlayKind::Can => write!(f, "CAN"),
        }
    }
}

/// A structured overlay: responsibility resolution, cost-accounted routing and
/// churn handling.
///
/// The trait models the paper's *DHT mapping function* `m(k, h, t)`
/// (Definition 1): at any time, `responsible_for(h(k))` is the peer
/// responsible for key `k` wrt hash function `h`. `lookup` is the DHT's
/// lookup service, which locates that peer in `O(log n)` hops from any origin
/// while charging for the stale routing state produced by churn.
pub trait Overlay {
    /// The protocol implemented by this overlay.
    fn kind(&self) -> OverlayKind;

    /// Number of live peers.
    fn len(&self) -> usize;

    /// True when the overlay has no live peers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `node` is currently a live member.
    fn is_alive(&self, node: NodeId) -> bool;

    /// All live members (unspecified order). Allocates; hot paths should use
    /// [`Overlay::alive_count`] + [`Overlay::sample_alive`] instead. Kept for
    /// tests and diagnostics.
    fn alive_ids(&self) -> Vec<NodeId>;

    /// Number of live members that [`Overlay::sample_alive`] can index into.
    /// Equals [`Overlay::len`].
    fn alive_count(&self) -> usize {
        self.len()
    }

    /// The live member at `index` (in `0..alive_count()`), in the same
    /// implementation-defined but stable order as [`Overlay::alive_ids`], so
    /// callers can pick a uniformly random peer without materializing a
    /// `Vec`. Returns `None` when `index` is out of range.
    ///
    /// The default implementation still allocates; overlays used on hot
    /// paths override it with an `O(1)`/`O(log n)` lookup.
    fn sample_alive(&self, index: usize) -> Option<NodeId> {
        self.alive_ids().get(index).copied()
    }

    /// Ground-truth responsible peer for an identifier-space position — the
    /// value of the mapping function `m(k, h, now)`. Returns `None` for an
    /// empty overlay.
    fn responsible_for(&self, position: u64) -> Option<NodeId>;

    /// Routes a lookup for `position` starting at `origin`, returning the
    /// responsible peer and the cost incurred (hops, timeouts).
    fn lookup(&mut self, origin: NodeId, position: u64) -> Result<LookupOutcome, LookupError>;

    /// Adds a peer. The returned [`MembershipOutcome`] lists the
    /// responsibility ranges the new peer takes over (from peers that are
    /// still alive, so state hand-off is possible).
    fn join(&mut self, id: NodeId) -> MembershipOutcome;

    /// Gracefully removes a peer; it announces its departure and hands its
    /// responsibility ranges over.
    fn leave(&mut self, id: NodeId) -> MembershipOutcome;

    /// Fail-stop removal of a peer: no hand-off, and other peers keep stale
    /// references to it until maintenance notices.
    fn fail(&mut self, id: NodeId) -> MembershipOutcome;

    /// Runs one maintenance round (successor/neighbor repair, finger refresh).
    fn stabilize(&mut self) -> StabilizeOutcome;

    /// The peers `id` currently knows as neighbors (successor list +
    /// predecessor for Chord, zone neighbors for CAN). Empty if `id` is dead.
    fn neighbors(&self, id: NodeId) -> Vec<NodeId>;
}
