//! Prometheus text-format exposition.

use std::fmt::Write as _;

use crate::registry::{Instrument, Labels, Registry};

fn escape_label_value(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

fn escape_help(out: &mut String, help: &str) {
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

fn write_series(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &Labels,
    extra: Option<(&str, &str)>,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(out, v);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
}

/// Renders every series of `registry` in the Prometheus text exposition
/// format (one `# HELP`/`# TYPE` header per metric, histograms expanded to
/// cumulative `_bucket`/`_sum`/`_count` series) and terminates the body with
/// an OpenMetrics-style `# EOF` line so a truncated scrape is detectable.
pub fn encode(registry: &Registry) -> String {
    let mut out = String::new();
    registry.with_families(|catalog| {
        for (name, family) in catalog {
            if !family.help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                escape_help(&mut out, &family.help);
                out.push('\n');
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(c) => {
                        write_series(&mut out, name, "", labels, None);
                        let _ = writeln!(out, "{}", c.get());
                    }
                    Instrument::Gauge(g) => {
                        write_series(&mut out, name, "", labels, None);
                        let _ = writeln!(out, "{}", g.get());
                    }
                    Instrument::Histogram(h) => {
                        let snap = h.snapshot();
                        let cumulative = snap.cumulative();
                        for (boundary, cum) in snap.boundaries.iter().zip(&cumulative) {
                            let le = boundary.to_string();
                            write_series(&mut out, name, "_bucket", labels, Some(("le", &le)));
                            let _ = writeln!(out, "{cum}");
                        }
                        write_series(&mut out, name, "_bucket", labels, Some(("le", "+Inf")));
                        let _ = writeln!(out, "{}", snap.count);
                        write_series(&mut out, name, "_sum", labels, None);
                        let _ = writeln!(out, "{}", snap.sum);
                        write_series(&mut out, name, "_count", labels, None);
                        let _ = writeln!(out, "{}", snap.count);
                    }
                }
            }
        }
    });
    out.push_str("# EOF\n");
    out
}

#[cfg(all(test, not(rdht_model)))]
mod tests {
    use super::*;

    #[test]
    fn exposition_shape() {
        let registry = Registry::new();
        registry
            .counter("ops_total", "operations", &[("peer", "1")])
            .add(7);
        registry
            .gauge("queue_depth", "queued requests", &[])
            .set(-3);
        let h = registry.histogram_with_buckets("lat_ns", "latency", &[], vec![10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(5000);
        let text = encode(&registry);
        let expected = "\
# HELP lat_ns latency
# TYPE lat_ns histogram
lat_ns_bucket{le=\"10\"} 2
lat_ns_bucket{le=\"100\"} 2
lat_ns_bucket{le=\"+Inf\"} 3
lat_ns_sum 5015
lat_ns_count 3
# HELP ops_total operations
# TYPE ops_total counter
ops_total{peer=\"1\"} 7
# HELP queue_depth queued requests
# TYPE queue_depth gauge
queue_depth -3
# EOF
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter("x_total", "", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = encode(&registry);
        assert!(
            text.contains("x_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn empty_registry_is_just_eof() {
        assert_eq!(encode(&Registry::new()), "# EOF\n");
    }
}
