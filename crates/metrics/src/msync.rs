//! Sync-type aliases for the crate's lock-free structures.
//!
//! Normally these re-export the std types (zero cost). Under
//! `RUSTFLAGS='--cfg rdht_model'` they swap in the instrumented
//! `rdht-check` equivalents, so the model tests in
//! [`crate::model_tests`] can drive [`crate::Counter`],
//! [`crate::Histogram`], [`crate::SpanLog`] and friends through every
//! bounded interleaving with weak-memory semantics. Production builds
//! never pay for the instrumentation; the *same* structure source is
//! what gets checked.
//!
//! Only the modules holding lock-free code (`instruments`, `span`) use
//! these aliases; the rest of the crate sticks with `std::sync`.

#[cfg(not(rdht_model))]
mod imp {
    pub use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    pub use std::sync::Arc;

    /// Closure-style `UnsafeCell` matching `rdht_check::cell::UnsafeCell`,
    /// so seqlock-style code reads identically in both builds.
    #[derive(Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps `data`.
        pub fn new(data: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        /// Mutable access. Caller upholds the exclusivity contract (the
        /// model build checks it under every interleaving).
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }

    /// Spin-wait hint inside CAS retry loops.
    pub fn spin_yield() {
        std::hint::spin_loop();
    }
}

#[cfg(rdht_model)]
mod imp {
    pub use rdht_check::cell::UnsafeCell;
    pub use rdht_check::sync::{Arc, AtomicI64, AtomicU64, Ordering};

    /// Under the model a spin retry must deschedule the thread, or the
    /// exhaustive scheduler would explore unboundedly many spins.
    pub fn spin_yield() {
        rdht_check::thread::yield_now();
    }
}

pub(crate) use imp::*;
