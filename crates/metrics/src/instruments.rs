//! The three instrument kinds: lock-free handles over shared atomics.
//!
//! Built on [`crate::msync`] aliases so the model suite
//! (`RUSTFLAGS='--cfg rdht_model' cargo test -p rdht-metrics`) checks this
//! exact source under every bounded interleaving.

use std::time::Duration;

use crate::msync::{Arc, AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// Cloning shares the underlying atomic: hand one clone to the subsystem
/// that increments and register another into a [`crate::Registry`] — there
/// is still exactly one storage location.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // relaxed: single-location RMW; exactness needs atomicity only, and
        // scrapes tolerate observing the count slightly late.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to `total` if it is currently below it (a relaxed
    /// `fetch_max`). This is the mirror hook for subsystems that already
    /// count internally (e.g. the WAL writer's own sync count): publishing
    /// the externally tracked monotonic total keeps the registry value exact
    /// without double counting.
    #[inline]
    pub fn record_absolute(&self, total: u64) {
        // relaxed: fetch_max is monotonic under any interleaving of RMWs;
        // no other location's state is published through this one.
        self.value.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // relaxed: a scrape may read a slightly stale count; nothing is
        // ordered after this load.
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed value that can move in both directions (queue depth, in-flight
/// requests). Same handle semantics as [`Counter`].
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        // relaxed: last-writer-wins is the intended gauge semantics; no
        // cross-location ordering rides on it.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        // relaxed: single-location RMW, exact by atomicity alone.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        // relaxed: scrape-path read; staleness is acceptable.
        self.value.load(Ordering::Relaxed)
    }
}

/// The default log-scale bucket boundaries, in nanoseconds: a 1–2.5–5
/// progression per decade from 100 ns to 1 s. Suited to everything the
/// workspace measures, from a counter bump (~10 ns, underflows into the
/// first bucket) to a lossy TCP round trip with retries (~100 ms).
pub fn default_latency_buckets() -> Vec<u64> {
    let mut buckets = Vec::with_capacity(22);
    let mut decade: u64 = 100;
    while decade <= 500_000_000 {
        buckets.push(decade);
        buckets.push(decade.saturating_mul(25) / 10);
        buckets.push(decade * 5);
        decade *= 10;
    }
    buckets.push(1_000_000_000);
    buckets.sort_unstable();
    buckets.dedup();
    buckets
}

/// `count` boundaries starting at `start`, each `factor` times the previous
/// (rounded up so the sequence is strictly increasing even for small
/// factors). Panics if `start == 0`, `factor < 2` or `count == 0`.
pub fn exponential_buckets(start: u64, factor: u64, count: usize) -> Vec<u64> {
    assert!(start > 0, "exponential_buckets: start must be positive");
    assert!(
        factor >= 2,
        "exponential_buckets: factor must be at least 2"
    );
    assert!(count > 0, "exponential_buckets: count must be positive");
    let mut buckets = Vec::with_capacity(count);
    let mut next = start;
    for _ in 0..count {
        buckets.push(next);
        next = next.saturating_mul(factor);
    }
    buckets.dedup();
    buckets
}

struct HistogramInner {
    /// Inclusive upper bounds (`le`), strictly increasing.
    boundaries: Vec<u64>,
    /// Per-range counts, *not* cumulative: `counts[i]` counts observations
    /// in `(boundaries[i-1], boundaries[i]]` (the first range starts at 0,
    /// so values below the first boundary — the "underflow" — land in
    /// `counts[0]`); `counts[boundaries.len()]` is the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of every observed value.
    sum: AtomicU64,
}

/// A fixed-boundary histogram of `u64` observations (latencies in
/// nanoseconds by convention, but any unit works — batch sizes use counts).
///
/// `observe` is one binary search plus two relaxed `fetch_add`s; there is no
/// lock anywhere. Boundaries are inclusive upper bounds, matching the
/// Prometheus `le` semantics exactly: an observation equal to a boundary
/// falls in that boundary's bucket.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("buckets", &snap.boundaries.len())
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A histogram with the [`default_latency_buckets`].
    pub fn new() -> Self {
        Histogram::with_buckets(default_latency_buckets())
    }

    /// A histogram with custom inclusive upper bounds. Panics if
    /// `boundaries` is empty or not strictly increasing.
    pub fn with_buckets(boundaries: Vec<u64>) -> Self {
        assert!(
            !boundaries.is_empty(),
            "histogram needs at least one bucket"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        let counts = (0..=boundaries.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                boundaries,
                counts,
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        // partition_point returns the count of boundaries strictly below
        // `value`, i.e. the index of the first boundary >= value — exactly
        // the inclusive-upper-bound bucket. Values above every boundary
        // index one past the end: the overflow bucket.
        let idx = self.inner.boundaries.partition_point(|&b| b < value);
        // relaxed: bucket and sum are updated by independent RMWs; a scrape
        // between the two sees a histogram whose sum lags by one
        // observation, which the exposition format tolerates by design.
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed); // relaxed: see above
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner
            .counts
            .iter()
            // relaxed: scrape-path read; see `snapshot`.
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of every observed value.
    pub fn sum(&self) -> u64 {
        // relaxed: scrape-path read; see `snapshot`.
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile of the observed distribution — see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of boundaries, per-range counts (including the
    /// trailing overflow bucket), sum and count. Under concurrent writers
    /// the snapshot is a consistent-enough cut: each field is read once,
    /// atomically.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .inner
            .counts
            .iter()
            // relaxed: each bucket is read once, atomically; the snapshot
            // is documented as a consistent-enough cut, not a linearizable
            // one, so no cross-bucket ordering is required.
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            boundaries: self.inner.boundaries.clone(),
            count: counts.iter().sum(),
            sum: self.inner.sum.load(Ordering::Relaxed), // relaxed: see above
            counts,
        }
    }
}

/// A point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub boundaries: Vec<u64>,
    /// Per-range counts; `counts.len() == boundaries.len() + 1`, the last
    /// entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Cumulative count at each boundary plus the `+Inf` total — the shape
    /// Prometheus `_bucket` series report.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.counts
            .iter()
            .map(|c| {
                total += c;
                total
            })
            .collect()
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) by linear interpolation within
    /// the bucket holding the target rank — the classic Prometheus
    /// `histogram_quantile` estimator. The first bucket interpolates from 0;
    /// a rank landing in the overflow bucket clamps to the last boundary
    /// (the histogram carries no upper bound to interpolate towards).
    /// `None` for an empty histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // The rank of the target observation, 1-based; q = 0 means the
        // smallest recorded observation's bucket.
        let rank = (q * self.count as f64).max(1.0);
        let mut below = 0u64;
        for (i, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                below += bucket_count;
                continue;
            }
            let upto = below + bucket_count;
            if (upto as f64) >= rank {
                if i >= self.boundaries.len() {
                    // Overflow bucket: clamp to the largest finite boundary.
                    return Some(*self.boundaries.last().expect("non-empty boundaries") as f64);
                }
                let lower = if i == 0 {
                    0.0
                } else {
                    self.boundaries[i - 1] as f64
                };
                let upper = self.boundaries[i] as f64;
                let within = (rank - below as f64) / bucket_count as f64;
                return Some(lower + (upper - lower) * within);
            }
            below = upto;
        }
        Some(*self.boundaries.last().expect("non-empty boundaries") as f64)
    }
}

// Gated off under the model cfg: these tests exercise the instruments on
// real OS threads, while model builds construct them only inside
// `rdht_check::model` runs (see `crate::model_tests`).
#[cfg(all(test, not(rdht_model)))]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share the atomic");
    }

    #[test]
    fn counter_record_absolute_is_monotonic() {
        let c = Counter::new();
        c.record_absolute(10);
        assert_eq!(c.get(), 10);
        c.record_absolute(7);
        assert_eq!(c.get(), 10, "never moves backwards");
        c.record_absolute(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(5);
        g.add(-7);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn default_buckets_are_strictly_increasing_and_span_ns_to_s() {
        let b = default_latency_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.first().unwrap(), 100);
        assert_eq!(*b.last().unwrap(), 1_000_000_000);
    }

    #[test]
    fn exponential_buckets_grow() {
        assert_eq!(exponential_buckets(1, 4, 4), vec![1, 4, 16, 64]);
    }

    #[test]
    fn histogram_bucket_edges() {
        let h = Histogram::with_buckets(vec![10, 100, 1000]);
        // Underflow: below the first boundary lands in the first bucket.
        h.observe(0);
        h.observe(9);
        // Exact boundary values are inclusive (`le` semantics).
        h.observe(10);
        h.observe(100);
        h.observe(1000);
        // One past a boundary falls in the next bucket.
        h.observe(11);
        h.observe(101);
        // Overflow.
        h.observe(1001);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![3, 2, 2, 2]);
        assert_eq!(snap.count, 9);
        assert_eq!(snap.cumulative(), vec![3, 5, 7, 9]);
        // The sum atomic wraps on overflow (fetch_add semantics).
        assert_eq!(
            snap.sum,
            (9u64 + 10 + 100 + 1000 + 11 + 101 + 1001).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::with_buckets(vec![8, 64]);
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = c.clone();
                let g = g.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        g.add(1);
                        h.observe((t as u64 + i) % 100);
                    }
                });
            }
        });
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(c.get(), expected);
        assert_eq!(g.get(), expected as i64);
        let snap = h.snapshot();
        assert_eq!(snap.count, expected);
        assert_eq!(snap.counts.iter().sum::<u64>(), expected);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_panic() {
        Histogram::with_buckets(vec![10, 10]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::with_buckets(vec![10, 20, 40]);
        // 10 observations spread evenly through (10, 20].
        for _ in 0..10 {
            h.observe(15);
        }
        // Median rank 5 of 10 lands halfway through the second bucket.
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 15.0).abs() < 1e-9, "p50 = {p50}");
        // p100 interpolates to the bucket's upper bound.
        let p100 = h.quantile(1.0).unwrap();
        assert!((p100 - 20.0).abs() < 1e-9, "p100 = {p100}");
    }

    #[test]
    fn quantile_spans_buckets_and_clamps_overflow() {
        let h = Histogram::with_buckets(vec![10, 100]);
        for _ in 0..90 {
            h.observe(5); // first bucket
        }
        for _ in 0..9 {
            h.observe(50); // second bucket
        }
        h.observe(1_000_000); // overflow
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 <= 10.0, "p50 within the first bucket, got {p50}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((10.0..=100.0).contains(&p95), "p95 = {p95}");
        // The overflow bucket clamps to the last finite boundary.
        assert_eq!(h.quantile(1.0).unwrap(), 100.0);
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::with_buckets(vec![10]);
        assert_eq!(h.quantile(0.5), None, "empty histogram");
        h.observe(3);
        assert!(h.quantile(-0.1).is_none());
        assert!(h.quantile(1.1).is_none());
        assert!(h.quantile(0.0).is_some());
    }
}
