//! A structured, leveled, rate-limited event log with a JSONL sink.
//!
//! The workspace's answer to ad-hoc `eprintln!`: every event is one JSON
//! object per line (`ts_us`, `level`, `target`, `msg`, plus free-form
//! string fields such as the peer label or a typed error variant), so a
//! long fault-injection run produces a greppable, machine-readable stream
//! instead of interleaved prose.
//!
//! * **Leveled** — [`Level::Error`] through [`Level::Debug`]; the active
//!   threshold comes from the `RDHT_LOG` environment variable
//!   (`error`/`warn`/`info`/`debug`, default `warn`), read once.
//! * **Rate-limited** — per `(target, level)` token window: at most
//!   [`MAX_EVENTS_PER_WINDOW`] events per second are written; the first
//!   event after a suppression burst carries a `"suppressed"` field with
//!   the dropped count, so floods (a peer in a reconnect loop) cost lines,
//!   not gigabytes.
//! * **Pluggable sink** — stderr by default ([`global`]); tests capture
//!   into a shared buffer with [`EventLog::to_buffer`].

use std::collections::HashMap;
use std::io::Write;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Event severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The process lost something it should not have.
    Error,
    /// Degraded but recoverable (a dropped connection, a poisoned journal).
    Warn,
    /// Life-cycle milestones.
    Info,
    /// Diagnostic chatter.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Events per `(target, level)` per one-second window before suppression.
pub const MAX_EVENTS_PER_WINDOW: u32 = 32;

struct RateWindow {
    started: Instant,
    written: u32,
    suppressed: u64,
}

struct LogInner {
    threshold: Level,
    epoch: Instant,
    sink: Mutex<Box<dyn Write + Send>>,
    windows: Mutex<HashMap<(String, Level), RateWindow>>,
}

/// A shared, clonable event log. Cloning shares the sink and rate state.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<LogInner>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("threshold", &self.inner.threshold.as_str())
            .finish()
    }
}

fn env_threshold() -> Level {
    std::env::var("RDHT_LOG")
        .ok()
        .as_deref()
        .and_then(Level::parse)
        .unwrap_or(Level::Warn)
}

impl EventLog {
    /// A log writing JSONL to `sink`, filtering below `threshold`.
    pub fn with_sink(threshold: Level, sink: Box<dyn Write + Send>) -> Self {
        EventLog {
            inner: Arc::new(LogInner {
                threshold,
                epoch: Instant::now(),
                sink: Mutex::new(sink),
                windows: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// A log writing to stderr with the threshold from `RDHT_LOG`.
    pub fn stderr() -> Self {
        EventLog::with_sink(env_threshold(), Box::new(std::io::stderr()))
    }

    /// A log capturing into a shared byte buffer — the test sink. Returns
    /// the log and the buffer handle.
    pub fn to_buffer(threshold: Level) -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let writer = BufferWriter {
            buffer: Arc::clone(&buffer),
        };
        (EventLog::with_sink(threshold, Box::new(writer)), buffer)
    }

    /// Whether events at `level` pass the threshold filter.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.inner.threshold
    }

    /// Records one event: a JSON object on its own line with `ts_us`
    /// (microseconds since the log was created), `level`, `target`, `msg`
    /// and every `(key, value)` of `fields` as string members. Filtered by
    /// level and rate-limited per `(target, level)`.
    pub fn log(&self, level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) {
        if !self.enabled(level) {
            return;
        }
        let suppressed = {
            let mut windows = self.inner.windows.lock().expect("event log windows");
            let window = windows
                .entry((target.to_string(), level))
                .or_insert(RateWindow {
                    started: Instant::now(),
                    written: 0,
                    suppressed: 0,
                });
            if window.started.elapsed() >= Duration::from_secs(1) {
                window.started = Instant::now();
                window.written = 0;
            }
            if window.written >= MAX_EVENTS_PER_WINDOW {
                window.suppressed += 1;
                return;
            }
            window.written += 1;
            std::mem::take(&mut window.suppressed)
        };
        let ts_us = u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(level.as_str());
        line.push_str("\",\"target\":\"");
        escape_into(&mut line, target);
        line.push_str("\",\"msg\":\"");
        escape_into(&mut line, msg);
        line.push('"');
        for (key, value) in fields {
            line.push_str(",\"");
            escape_into(&mut line, key);
            line.push_str("\":\"");
            escape_into(&mut line, value);
            line.push('"');
        }
        if suppressed > 0 {
            line.push_str(",\"suppressed\":");
            line.push_str(&suppressed.to_string());
        }
        line.push_str("}\n");
        let mut sink = self.inner.sink.lock().expect("event log sink");
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
    }

    /// [`EventLog::log`] at [`Level::Error`].
    pub fn error(&self, target: &str, msg: &str, fields: &[(&str, &str)]) {
        self.log(Level::Error, target, msg, fields);
    }

    /// [`EventLog::log`] at [`Level::Warn`].
    pub fn warn(&self, target: &str, msg: &str, fields: &[(&str, &str)]) {
        self.log(Level::Warn, target, msg, fields);
    }

    /// [`EventLog::log`] at [`Level::Info`].
    pub fn info(&self, target: &str, msg: &str, fields: &[(&str, &str)]) {
        self.log(Level::Info, target, msg, fields);
    }

    /// [`EventLog::log`] at [`Level::Debug`].
    pub fn debug(&self, target: &str, msg: &str, fields: &[(&str, &str)]) {
        self.log(Level::Debug, target, msg, fields);
    }
}

struct BufferWriter {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl Write for BufferWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buffer
            .lock()
            .expect("log buffer")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The process-wide event log, writing JSONL to stderr with the threshold
/// from `RDHT_LOG` (default `warn`). Created on first use.
pub fn global() -> &'static EventLog {
    static GLOBAL: OnceLock<EventLog> = OnceLock::new();
    GLOBAL.get_or_init(EventLog::stderr)
}

#[cfg(all(test, not(rdht_model)))]
mod tests {
    use super::*;

    fn lines(buffer: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buffer.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn events_render_as_one_json_object_per_line() {
        let (log, buffer) = EventLog::to_buffer(Level::Debug);
        log.warn(
            "net.tcp",
            "dropping connection",
            &[("peer", "127.0.0.1:9999"), ("error", "Truncated")],
        );
        let lines = lines(&buffer);
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"ts_us\":"), "{line}");
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(line.contains("\"target\":\"net.tcp\""), "{line}");
        assert!(line.contains("\"msg\":\"dropping connection\""), "{line}");
        assert!(line.contains("\"peer\":\"127.0.0.1:9999\""), "{line}");
        assert!(line.contains("\"error\":\"Truncated\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn threshold_filters_lower_severities() {
        let (log, buffer) = EventLog::to_buffer(Level::Warn);
        assert!(log.enabled(Level::Error));
        assert!(!log.enabled(Level::Info));
        log.info("x", "dropped", &[]);
        log.debug("x", "dropped", &[]);
        log.error("x", "kept", &[]);
        assert_eq!(lines(&buffer).len(), 1);
    }

    #[test]
    fn floods_are_rate_limited_and_accounted() {
        let (log, buffer) = EventLog::to_buffer(Level::Debug);
        for _ in 0..(MAX_EVENTS_PER_WINDOW + 10) {
            log.warn("flood", "again", &[]);
        }
        let written = lines(&buffer);
        assert_eq!(written.len() as u32, MAX_EVENTS_PER_WINDOW);
        // A different target is not affected by the flooded window.
        log.warn("calm", "fine", &[]);
        assert_eq!(lines(&buffer).len() as u32, MAX_EVENTS_PER_WINDOW + 1);
    }

    #[test]
    fn messages_and_fields_are_json_escaped() {
        let (log, buffer) = EventLog::to_buffer(Level::Debug);
        log.warn("t", "a\"b\\c\nd", &[("k\"", "v\t")]);
        let line = lines(&buffer).remove(0);
        assert!(line.contains("a\\\"b\\\\c\\nd"), "{line}");
        assert!(line.contains("\"k\\\"\":\"v\\t\""), "{line}");
    }

    #[test]
    fn level_parsing_accepts_common_spellings() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Debug));
        assert_eq!(Level::parse("nonsense"), None);
    }
}
