//! The registry: a named, labeled catalog of instruments.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::instruments::{Counter, Gauge, Histogram};

/// Label pairs attached to one series. Stored sorted by label name so the
/// same set spelled in a different order names the same series.
pub type Labels = Vec<(String, String)>;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
pub(crate) enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> Kind {
        match self {
            Instrument::Counter(_) => Kind::Counter,
            Instrument::Gauge(_) => Kind::Gauge,
            Instrument::Histogram(_) => Kind::Histogram,
        }
    }
}

pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: Kind,
    pub(crate) series: BTreeMap<Labels, Instrument>,
}

/// A catalog of named instruments, rendered by [`crate::encode`].
///
/// Registration takes a short mutex; the instrument handles it returns are
/// lock-free, so hot paths register once up front and only touch atomics
/// afterwards. Cloning a `Registry` shares the catalog — one clone can live
/// in a peer thread while another answers scrapes.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Family>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn canonical(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    debug_assert!(
        out.iter().all(|(k, _)| valid_name(k)),
        "label names must match [a-zA-Z_:][a-zA-Z0-9_:]*"
    );
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        fresh: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(
            valid_name(name),
            "metric name {name:?} must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        let fresh = fresh();
        let kind = fresh.kind();
        let mut catalog = self.inner.lock().expect("registry mutex poisoned");
        let family = catalog.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} already registered as a {}, not a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family
            .series
            .entry(canonical(labels))
            .or_insert(fresh)
            .clone()
    }

    /// Get-or-create a [`Counter`] series. Registering the same name and
    /// labels again returns a handle to the existing series. Panics if the
    /// name is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, help, labels, || Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Get-or-create a [`Gauge`] series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, labels, || Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Get-or-create a [`Histogram`] series with the default latency
    /// buckets.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        self.get_or_insert(name, help, labels, || {
            Instrument::Histogram(Histogram::new())
        })
        .into_histogram()
    }

    /// Get-or-create a [`Histogram`] series with custom boundaries. The
    /// boundaries only apply if the series is created by this call; an
    /// existing series keeps its own.
    pub fn histogram_with_buckets(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        boundaries: Vec<u64>,
    ) -> Histogram {
        self.get_or_insert(name, help, labels, || {
            Instrument::Histogram(Histogram::with_buckets(boundaries))
        })
        .into_histogram()
    }

    /// Registers an *existing* counter handle — the `prometheus_client`
    /// `registry.register(name, help, counter.clone())` idiom. The handle
    /// keeps being the single storage location; a series already registered
    /// under the same name and labels is replaced.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Counter,
    ) {
        self.register(name, help, labels, Instrument::Counter(counter));
    }

    /// Registers an existing gauge handle (see [`Registry::register_counter`]).
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], gauge: Gauge) {
        self.register(name, help, labels, Instrument::Gauge(gauge));
    }

    /// Registers an existing histogram handle (see
    /// [`Registry::register_counter`]).
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: Histogram,
    ) {
        self.register(name, help, labels, Instrument::Histogram(histogram));
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        assert!(
            valid_name(name),
            "metric name {name:?} must match [a-zA-Z_:][a-zA-Z0-9_:]*"
        );
        let kind = instrument.kind();
        let mut catalog = self.inner.lock().expect("registry mutex poisoned");
        let family = catalog.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} already registered as a {}, not a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        family.series.insert(canonical(labels), instrument);
    }

    /// The registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Runs `f` over the catalog under the registration lock.
    pub(crate) fn with_families<R>(&self, f: impl FnOnce(&BTreeMap<String, Family>) -> R) -> R {
        f(&self.inner.lock().expect("registry mutex poisoned"))
    }
}

impl Instrument {
    fn into_histogram(self) -> Histogram {
        match self {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.names())
            .finish()
    }
}

#[cfg(all(test, not(rdht_model)))]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_series() {
        let registry = Registry::new();
        let a = registry.counter("ops_total", "ops", &[("peer", "1")]);
        let b = registry.counter("ops_total", "ops", &[("peer", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Different labels are a different series.
        let c = registry.counter("ops_total", "ops", &[("peer", "2")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = Registry::new();
        let a = registry.counter("x_total", "", &[("a", "1"), ("b", "2")]);
        let b = registry.counter("x_total", "", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn register_existing_handle_shares_storage() {
        let registry = Registry::new();
        let counter = Counter::new();
        counter.add(3);
        registry.register_counter(
            "events_dispatched",
            "dispatched events",
            &[],
            counter.clone(),
        );
        let via_registry = registry.counter("events_dispatched", "", &[]);
        counter.inc();
        assert_eq!(via_registry.get(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let registry = Registry::new();
        registry.counter("x_total", "", &[]);
        registry.gauge("x_total", "", &[]);
    }

    #[test]
    #[should_panic(expected = "metric name")]
    fn invalid_names_panic() {
        Registry::new().counter("1bad name", "", &[]);
    }

    #[test]
    fn concurrent_registration_and_increment() {
        let registry = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let registry = registry.clone();
                scope.spawn(move || {
                    let c = registry.counter("shared_total", "", &[]);
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(registry.counter("shared_total", "", &[]).get(), 8000);
    }
}
