//! A minimal parser for the Prometheus text exposition format.
//!
//! Deliberately small: it accepts exactly what [`crate::encode`] produces
//! (plus insignificant whitespace variations) and is used to *validate*
//! scrapes — by the proptest round-trip suite, by the `metrics` example and
//! by CI, which fails a build whose exposition no longer parses.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Full sample name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition: samples plus the `# TYPE` declarations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Exposition {
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
    /// Metric name to declared type (`counter`/`gauge`/`histogram`).
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// The value of the sample with this exact name and label set (labels
    /// compared order-insensitively).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples.iter().find_map(|s| {
            if s.name != name {
                return None;
            }
            let mut have = s.labels.clone();
            have.sort();
            (have == want).then_some(s.value)
        })
    }

    /// Whether any sample belongs to the metric `name` (histogram samples
    /// match through their `_bucket`/`_sum`/`_count` suffixes).
    pub fn has_metric(&self, name: &str) -> bool {
        self.types.contains_key(name)
            || self.samples.iter().any(|s| {
                s.name == name
                    || s.name
                        .strip_prefix(name)
                        .is_some_and(|rest| matches!(rest, "_bucket" | "_sum" | "_count"))
            })
    }
}

/// Why a scrape failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The exposition does not end with the `# EOF` marker — the scrape was
    /// truncated in flight.
    MissingEof,
    /// A line after `# EOF`.
    DataAfterEof {
        /// 1-based line number.
        line: usize,
    },
    /// A sample line that does not scan.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingEof => write!(f, "exposition missing trailing # EOF marker"),
            ParseError::DataAfterEof { line } => {
                write!(f, "line {line}: data after # EOF marker")
            }
            ParseError::Malformed { line, what } => write!(f, "line {line}: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_labels(raw: &str, line: usize) -> Result<Vec<(String, String)>, ParseError> {
    let mut labels = Vec::new();
    let mut chars = raw.chars().peekable();
    loop {
        // Label name up to '='.
        let mut name = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        let name = name.trim().to_string();
        if !valid_name(&name) {
            return Err(ParseError::Malformed {
                line,
                what: "bad label name",
            });
        }
        if chars.next() != Some('"') {
            return Err(ParseError::Malformed {
                line,
                what: "label value must be quoted",
            });
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => {
                        return Err(ParseError::Malformed {
                            line,
                            what: "bad escape in label value",
                        })
                    }
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => {
                    return Err(ParseError::Malformed {
                        line,
                        what: "unterminated label value",
                    })
                }
            }
        }
        labels.push((name, value));
        match chars.next() {
            Some(',') => continue,
            None => return Ok(labels),
            Some(_) => {
                return Err(ParseError::Malformed {
                    line,
                    what: "expected ',' or '}' after label",
                })
            }
        }
    }
}

/// Parses a text exposition. Requires the trailing `# EOF` marker that
/// [`crate::encode`] emits, so truncated scrapes fail loudly.
pub fn parse(text: &str) -> Result<Exposition, ParseError> {
    let mut exposition = Exposition::default();
    let mut saw_eof = false;
    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw_line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(ParseError::DataAfterEof { line });
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim_start();
            if comment == "EOF" {
                saw_eof = true;
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
                if !valid_name(name)
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    )
                {
                    return Err(ParseError::Malformed {
                        line,
                        what: "bad TYPE line",
                    });
                }
                exposition.types.insert(name.to_string(), kind.to_string());
            }
            // HELP and other comments are free-form.
            continue;
        }
        // Sample line: name[{labels}] value
        let (series, value_str) = match trimmed.find('{') {
            Some(open) => {
                let close = trimmed.rfind('}').ok_or(ParseError::Malformed {
                    line,
                    what: "unterminated label set",
                })?;
                if close < open {
                    return Err(ParseError::Malformed {
                        line,
                        what: "unterminated label set",
                    });
                }
                (
                    (&trimmed[..open], Some(&trimmed[open + 1..close])),
                    trimmed[close + 1..].trim(),
                )
            }
            None => {
                let mut parts = trimmed.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or("");
                ((name, None), parts.next().unwrap_or("").trim())
            }
        };
        let (name, raw_labels) = series;
        if !valid_name(name) {
            return Err(ParseError::Malformed {
                line,
                what: "bad metric name",
            });
        }
        let labels = match raw_labels {
            Some(raw) if !raw.trim().is_empty() => parse_labels(raw, line)?,
            _ => Vec::new(),
        };
        let value: f64 = value_str.parse().map_err(|_| ParseError::Malformed {
            line,
            what: "bad sample value",
        })?;
        exposition.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    if !saw_eof {
        return Err(ParseError::MissingEof);
    }
    Ok(exposition)
}

#[cfg(all(test, not(rdht_model)))]
mod tests {
    use super::*;

    #[test]
    fn parses_what_encode_emits() {
        let registry = crate::Registry::new();
        registry
            .counter("ops_total", "ops", &[("peer", "3")])
            .add(9);
        let h = registry.histogram_with_buckets("lat_ns", "", &[], vec![10]);
        h.observe(4);
        h.observe(40);
        let text = crate::encode(&registry);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.value("ops_total", &[("peer", "3")]), Some(9.0));
        assert_eq!(parsed.value("lat_ns_bucket", &[("le", "10")]), Some(1.0));
        assert_eq!(parsed.value("lat_ns_bucket", &[("le", "+Inf")]), Some(2.0));
        assert_eq!(parsed.value("lat_ns_count", &[]), Some(2.0));
        assert_eq!(parsed.value("lat_ns_sum", &[]), Some(44.0));
        assert!(parsed.has_metric("lat_ns"));
        assert!(parsed.has_metric("ops_total"));
        assert!(!parsed.has_metric("nope"));
        assert_eq!(
            parsed.types.get("ops_total").map(String::as_str),
            Some("counter")
        );
    }

    #[test]
    fn truncated_scrape_is_rejected() {
        assert_eq!(parse("ops_total 1\n"), Err(ParseError::MissingEof));
    }

    #[test]
    fn data_after_eof_is_rejected() {
        let err = parse("# EOF\nops_total 1\n").unwrap_err();
        assert!(matches!(err, ParseError::DataAfterEof { line: 2 }));
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let registry = crate::Registry::new();
        registry
            .counter("x_total", "", &[("p", "a\\b\"c\nd")])
            .inc();
        let parsed = parse(&crate::encode(&registry)).unwrap();
        assert_eq!(parsed.samples[0].labels[0].1, "a\\b\"c\nd");
    }

    #[test]
    fn garbage_lines_fail() {
        assert!(parse("not a metric line at all!!! 1 2 3\n# EOF\n").is_err());
        assert!(parse("x_total{le=\"unterminated} 1\n# EOF\n").is_err());
        assert!(parse("x_total notanumber\n# EOF\n").is_err());
    }
}
