//! Property-based tests: the exposition output round-trips through the
//! minimal text-format parser with every value intact.

use proptest::prelude::*;

use crate::{encode, parse, Registry};

/// Deterministic label values exercising the escaper: index selects from a
/// palette that includes every escaped character.
fn label_value(index: u32) -> String {
    const PALETTE: &[&str] = &[
        "plain",
        "with space",
        "back\\slash",
        "quo\"te",
        "new\nline",
        "mixed \\ \" \n end",
        "",
        "unicode µs → ns",
    ];
    PALETTE[index as usize % PALETTE.len()].to_string()
}

proptest! {
    /// Counters and gauges survive encode → parse with exact values and
    /// labels.
    #[test]
    fn scalar_series_round_trip(
        entries in proptest::collection::vec((0u32..1000, 0u32..64, any::<u32>()), 1..8),
        gauge_value in any::<i32>(),
    ) {
        let registry = Registry::new();
        let mut expected: Vec<(String, String, u64)> = Vec::new();
        for (name_tag, value_tag, amount) in &entries {
            let name = format!("ctr_{name_tag}_total");
            let value = label_value(*value_tag);
            let counter = registry.counter(&name, "help text", &[("label", &value)]);
            counter.add(u64::from(*amount));
            expected.push((name, value, counter.get()));
        }
        registry.gauge("depth", "", &[]).set(i64::from(gauge_value));

        let text = encode(&registry);
        let parsed = parse::parse(&text).expect("encoded exposition must parse");

        for (name, label, total) in expected {
            let got = parsed.value(&name, &[("label", &label)]);
            prop_assert!(
                got == Some(total as f64),
                "series {} label {:?}: got {:?}, want {}",
                name,
                label,
                got,
                total
            );
        }
        prop_assert_eq!(parsed.value("depth", &[]), Some(f64::from(gauge_value)));
    }

    /// Histograms round-trip: every bucket is cumulative, `_count` equals the
    /// `+Inf` bucket and the number of observations, `_sum` matches.
    #[test]
    fn histogram_round_trip(
        raw_boundaries in proptest::collection::vec(1u64..10_000, 1..6),
        observations in proptest::collection::vec(0u64..20_000, 0..40),
    ) {
        let mut boundaries = raw_boundaries;
        boundaries.sort_unstable();
        boundaries.dedup();
        let registry = Registry::new();
        let histogram = registry.histogram_with_buckets(
            "lat_ns", "latency", &[("peer", "0")], boundaries.clone());
        let mut sum = 0u64;
        for &value in &observations {
            histogram.observe(value);
            sum += value;
        }

        let parsed = parse::parse(&encode(&registry)).expect("exposition must parse");
        let labels = [("peer", "0")];
        prop_assert_eq!(
            parsed.value("lat_ns_count", &labels),
            Some(observations.len() as f64)
        );
        prop_assert_eq!(parsed.value("lat_ns_sum", &labels), Some(sum as f64));
        let mut previous = 0.0;
        for boundary in &boundaries {
            let le = boundary.to_string();
            let expected = observations.iter().filter(|&&v| v <= *boundary).count() as f64;
            let got = parsed
                .value("lat_ns_bucket", &[("peer", "0"), ("le", &le)])
                .expect("bucket sample present");
            prop_assert!(got == expected, "bucket le={le}: got {got}, want {expected}");
            prop_assert!(got >= previous, "buckets are cumulative");
            previous = got;
        }
        prop_assert_eq!(
            parsed.value("lat_ns_bucket", &[("peer", "0"), ("le", "+Inf")]),
            Some(observations.len() as f64)
        );
    }
}
