//! Property-based tests: the exposition output round-trips through the
//! minimal text-format parser with every value intact.

use proptest::prelude::*;

use crate::{encode, parse, Registry};

/// Deterministic label values exercising the escaper: index selects from a
/// palette that includes every escaped character.
fn label_value(index: u32) -> String {
    const PALETTE: &[&str] = &[
        "plain",
        "with space",
        "back\\slash",
        "quo\"te",
        "new\nline",
        "mixed \\ \" \n end",
        "",
        "unicode µs → ns",
    ];
    PALETTE[index as usize % PALETTE.len()].to_string()
}

proptest! {
    /// Counters and gauges survive encode → parse with exact values and
    /// labels.
    #[test]
    fn scalar_series_round_trip(
        entries in proptest::collection::vec((0u32..1000, 0u32..64, any::<u32>()), 1..8),
        gauge_value in any::<i32>(),
    ) {
        let registry = Registry::new();
        let mut expected: Vec<(String, String, u64)> = Vec::new();
        for (name_tag, value_tag, amount) in &entries {
            let name = format!("ctr_{name_tag}_total");
            let value = label_value(*value_tag);
            let counter = registry.counter(&name, "help text", &[("label", &value)]);
            counter.add(u64::from(*amount));
            expected.push((name, value, counter.get()));
        }
        registry.gauge("depth", "", &[]).set(i64::from(gauge_value));

        let text = encode(&registry);
        let parsed = parse::parse(&text).expect("encoded exposition must parse");

        for (name, label, total) in expected {
            let got = parsed.value(&name, &[("label", &label)]);
            prop_assert!(
                got == Some(total as f64),
                "series {} label {:?}: got {:?}, want {}",
                name,
                label,
                got,
                total
            );
        }
        prop_assert_eq!(parsed.value("depth", &[]), Some(f64::from(gauge_value)));
    }

    /// Histograms round-trip: every bucket is cumulative, `_count` equals the
    /// `+Inf` bucket and the number of observations, `_sum` matches.
    #[test]
    fn histogram_round_trip(
        raw_boundaries in proptest::collection::vec(1u64..10_000, 1..6),
        observations in proptest::collection::vec(0u64..20_000, 0..40),
    ) {
        let mut boundaries = raw_boundaries;
        boundaries.sort_unstable();
        boundaries.dedup();
        let registry = Registry::new();
        let histogram = registry.histogram_with_buckets(
            "lat_ns", "latency", &[("peer", "0")], boundaries.clone());
        let mut sum = 0u64;
        for &value in &observations {
            histogram.observe(value);
            sum += value;
        }

        let parsed = parse::parse(&encode(&registry)).expect("exposition must parse");
        let labels = [("peer", "0")];
        prop_assert_eq!(
            parsed.value("lat_ns_count", &labels),
            Some(observations.len() as f64)
        );
        prop_assert_eq!(parsed.value("lat_ns_sum", &labels), Some(sum as f64));
        let mut previous = 0.0;
        for boundary in &boundaries {
            let le = boundary.to_string();
            let expected = observations.iter().filter(|&&v| v <= *boundary).count() as f64;
            let got = parsed
                .value("lat_ns_bucket", &[("peer", "0"), ("le", &le)])
                .expect("bucket sample present");
            prop_assert!(got == expected, "bucket le={le}: got {got}, want {expected}");
            prop_assert!(got >= previous, "buckets are cumulative");
            previous = got;
        }
        prop_assert_eq!(
            parsed.value("lat_ns_bucket", &[("peer", "0"), ("le", "+Inf")]),
            Some(observations.len() as f64)
        );
    }
}

/// One randomly generated span tree, flattened to the records its emission
/// would produce: parent links index into earlier spans, so the structure
/// is always a connected tree rooted at span 0.
fn arbitrary_tree_records(
    trace_id: u64,
    parent_picks: &[u64],
    durations: &[u64],
) -> Vec<crate::SpanRecord> {
    let mut records = vec![crate::SpanRecord {
        trace_id,
        span_id: 1,
        parent_span: 0,
        name: "root".to_string(),
        start_us: 0,
        dur_us: durations.first().copied().unwrap_or(1),
    }];
    for (i, pick) in parent_picks.iter().enumerate() {
        let parent_index = (*pick as usize) % records.len();
        let parent_span = records[parent_index].span_id;
        records.push(crate::SpanRecord {
            trace_id,
            span_id: (i as u64) + 2,
            parent_span,
            name: format!("phase-{i}"),
            start_us: (i as u64 + 1) * 10,
            dur_us: durations.get(i + 1).copied().unwrap_or(1),
        });
    }
    records
}

proptest! {
    /// An arbitrary interleaving of completed span records reassembles to
    /// exactly the tree that emitted them: same root, same total, every
    /// phase present exactly once, and phases of a common parent in start
    /// order.
    #[test]
    fn span_trees_reassemble_from_any_interleaving(
        parent_picks in proptest::collection::vec(any::<u64>(), 0..12),
        durations in proptest::collection::vec(1u64..1_000_000, 1..13),
        shuffle_seed in any::<u64>(),
        trace_id in 1u64..u64::MAX,
    ) {
        let emitted = arbitrary_tree_records(trace_id, &parent_picks, &durations);
        // Deterministic Fisher-Yates driven by the seed: the "arbitrary
        // interleaved completion order" of the satellite spec.
        let mut shuffled = emitted.clone();
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }

        let trees = crate::span::assemble_trees(&shuffled);
        prop_assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        prop_assert_eq!(tree.trace_id, trace_id);
        prop_assert_eq!(&tree.name, "root");
        prop_assert_eq!(tree.total_us, emitted[0].dur_us);
        // Every non-root span appears exactly once, with its duration.
        let mut expected: Vec<(String, u64)> = emitted[1..]
            .iter()
            .map(|r| (r.name.clone(), r.dur_us))
            .collect();
        let mut got = tree.phases.clone();
        expected.sort();
        got.sort();
        prop_assert_eq!(got, expected);
        // Siblings (children of the root) appear in start order.
        let root_children: Vec<&str> = emitted[1..]
            .iter()
            .filter(|r| r.parent_span == 1)
            .map(|r| r.name.as_str())
            .collect();
        let in_tree: Vec<&str> = tree
            .phases
            .iter()
            .map(|(name, _)| name.as_str())
            .filter(|name| root_children.contains(name))
            .collect();
        // Siblings (children of the root) must appear in start order.
        prop_assert_eq!(in_tree, root_children);
    }
}
