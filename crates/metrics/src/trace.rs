//! A chrome-trace span recorder.
//!
//! [`TraceSink`] accumulates begin/end/complete/instant events and renders
//! them in the Chrome Trace Event JSON format (`catapult`), loadable by
//! `chrome://tracing` and <https://ui.perfetto.dev>. Timestamps are
//! microseconds. Two clock modes coexist:
//!
//! * wall clock — [`TraceSink::begin`]/[`TraceSink::end`]/[`TraceSink::span`]
//!   stamp events relative to the sink's creation instant (the live cluster
//!   uses these);
//! * explicit — the `*_at` variants take the timestamp from the caller, so
//!   the discrete-event simulator records spans in *simulated* time.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The event phase, mirroring the chrome-trace `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// Span begin (`B`). Pair with an [`TracePhase::End`] on the same
    /// pid/tid.
    Begin,
    /// Span end (`E`).
    End,
    /// A complete span (`X`) carrying its own duration.
    Complete,
    /// An instantaneous event (`i`).
    Instant,
}

impl TracePhase {
    fn as_str(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Complete => "X",
            TracePhase::Instant => "i",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span label).
    pub name: String,
    /// Phase.
    pub phase: TracePhase,
    /// Process lane (a peer, in this workspace's convention).
    pub pid: u64,
    /// Thread lane within the process.
    pub tid: u64,
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Duration in microseconds; only meaningful for
    /// [`TracePhase::Complete`].
    pub dur_us: u64,
    /// Free-form `args` members rendered into the chrome-trace event —
    /// the distributed-tracing layer stores the trace id (and span links)
    /// here so per-process traces can be correlated after merging.
    pub args: Vec<(String, String)>,
}

struct SinkInner {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// A shared, clonable recorder of trace events. Cloning shares the buffer.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("events", &self.len())
            .finish()
    }
}

impl TraceSink {
    /// A fresh sink; wall-clock events are stamped relative to now.
    pub fn new() -> Self {
        TraceSink {
            inner: Arc::new(SinkInner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Microseconds since the sink was created — the wall-clock timebase
    /// of every non-`_at` recording method, exposed so callers measuring
    /// their own intervals can stamp events consistently.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn push(&self, event: TraceEvent) {
        self.inner
            .events
            .lock()
            .expect("trace sink mutex poisoned")
            .push(event);
    }

    /// Records a span begin at the wall clock.
    pub fn begin(&self, name: &str, pid: u64, tid: u64) {
        self.event_at(name, TracePhase::Begin, pid, tid, self.now_us(), 0);
    }

    /// Records a span end at the wall clock.
    pub fn end(&self, name: &str, pid: u64, tid: u64) {
        self.event_at(name, TracePhase::End, pid, tid, self.now_us(), 0);
    }

    /// Opens a wall-clock span closed by dropping the returned guard (one
    /// `X` complete event is recorded at drop).
    pub fn span(&self, name: impl Into<String>, pid: u64, tid: u64) -> SpanGuard {
        SpanGuard {
            sink: self.clone(),
            name: name.into(),
            pid,
            tid,
            start_us: self.now_us(),
        }
    }

    /// Records an event with an explicit timestamp (simulated time).
    pub fn event_at(
        &self,
        name: &str,
        phase: TracePhase,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
    ) {
        self.push(TraceEvent {
            name: name.to_string(),
            phase,
            pid,
            tid,
            ts_us,
            dur_us,
            args: Vec::new(),
        });
    }

    /// Records a complete (`X`) span with explicit start and duration.
    pub fn complete_at(&self, name: &str, pid: u64, tid: u64, ts_us: u64, dur_us: u64) {
        self.event_at(name, TracePhase::Complete, pid, tid, ts_us, dur_us);
    }

    /// Records a complete (`X`) span carrying `args` members — the
    /// distributed-tracing layer's entry point: the trace id rides in
    /// `args`, so merged per-process traces stay correlatable.
    pub fn complete_with_args(
        &self,
        name: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(String, String)>,
    ) {
        self.push(TraceEvent {
            name: name.to_string(),
            phase: TracePhase::Complete,
            pid,
            tid,
            ts_us,
            dur_us,
            args,
        });
    }

    /// Records an instantaneous (`i`) event with an explicit timestamp.
    pub fn instant_at(&self, name: &str, pid: u64, tid: u64, ts_us: u64) {
        self.event_at(name, TracePhase::Instant, pid, tid, ts_us, 0);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner
            .events
            .lock()
            .expect("trace sink mutex poisoned")
            .len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .events
            .lock()
            .expect("trace sink mutex poisoned")
            .clone()
    }

    /// Renders the events as Chrome Trace Event JSON (the
    /// `{"traceEvents": [...]}` object format).
    pub fn render_chrome_trace(&self) -> String {
        let events = self.events();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json(&mut out, &event.name);
            let _ = write!(
                out,
                "\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
                event.phase.as_str(),
                event.pid,
                event.tid,
                event.ts_us
            );
            if event.phase == TracePhase::Complete {
                let _ = write!(out, ",\"dur\":{}", event.dur_us);
            }
            if event.phase == TracePhase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if !event.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (key, value)) in event.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(&mut out, key);
                    out.push_str("\":\"");
                    escape_json(&mut out, value);
                    out.push('"');
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes the rendered trace to `path` (conventionally `trace.json`).
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.render_chrome_trace())
    }
}

/// Merges several rendered chrome traces (each the `{"traceEvents":[...]}`
/// object [`TraceSink::render_chrome_trace`] produces) into one: the event
/// arrays are concatenated, so spans recorded by different OS processes
/// land in one file and correlate by the `trace_id` entry of their `args`.
/// Returns `None` if any part is not of the expected shape.
pub fn merge_chrome_traces<S: AsRef<str>>(parts: &[S]) -> Option<String> {
    const PREFIX: &str = "{\"traceEvents\":[";
    const SUFFIX: &str = "]}";
    let mut out = String::from(PREFIX);
    let mut wrote_any = false;
    for part in parts {
        let part = part.as_ref().trim();
        let inner = part.strip_prefix(PREFIX)?.strip_suffix(SUFFIX)?;
        if inner.is_empty() {
            continue;
        }
        if wrote_any {
            out.push(',');
        }
        out.push_str(inner);
        wrote_any = true;
    }
    out.push_str(SUFFIX);
    Some(out)
}

/// [`merge_chrome_traces`] over per-process sink files: reads every path
/// and merges the rendered traces into one loadable JSON document.
pub fn merge_chrome_trace_files<P: AsRef<Path>>(paths: &[P]) -> io::Result<String> {
    let mut parts = Vec::with_capacity(paths.len());
    for path in paths {
        parts.push(std::fs::read_to_string(path)?);
    }
    merge_chrome_traces(&parts).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "a trace file is not a rendered chrome trace object",
        )
    })
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Closes its span with a complete (`X`) event when dropped.
pub struct SpanGuard {
    sink: TraceSink,
    name: String,
    pid: u64,
    tid: u64,
    start_us: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = self.sink.now_us();
        self.sink.complete_at(
            &self.name,
            self.pid,
            self.tid,
            self.start_us,
            end.saturating_sub(self.start_us),
        );
    }
}

#[cfg(all(test, not(rdht_model)))]
mod tests {
    use super::*;

    #[test]
    fn explicit_timestamps_render_in_order() {
        let sink = TraceSink::new();
        sink.complete_at("query", 1, 0, 100, 50);
        sink.instant_at("drop", 2, 0, 130);
        let json = sink.render_chrome_trace();
        assert_eq!(
            json,
            "{\"traceEvents\":[\
             {\"name\":\"query\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":100,\"dur\":50},\
             {\"name\":\"drop\",\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":130,\"s\":\"t\"}]}"
        );
    }

    #[test]
    fn span_guard_records_a_complete_event() {
        let sink = TraceSink::new();
        {
            let _span = sink.span("work", 0, 7);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, TracePhase::Complete);
        assert_eq!(events[0].tid, 7);
        assert!(
            events[0].dur_us >= 1_000,
            "slept ~2ms, got {}",
            events[0].dur_us
        );
    }

    #[test]
    fn begin_end_pairs() {
        let sink = TraceSink::new();
        sink.begin("op", 3, 1);
        sink.end("op", 3, 1);
        let events = sink.events();
        assert_eq!(events[0].phase, TracePhase::Begin);
        assert_eq!(events[1].phase, TracePhase::End);
        assert!(events[0].ts_us <= events[1].ts_us);
    }

    #[test]
    fn names_are_json_escaped() {
        let sink = TraceSink::new();
        sink.instant_at("a\"b\\c\nd", 0, 0, 1);
        let json = sink.render_chrome_trace();
        assert!(json.contains("a\\\"b\\\\c\\nd"), "{json}");
    }

    #[test]
    fn write_to_produces_a_loadable_file() {
        let sink = TraceSink::new();
        sink.complete_at("q", 0, 0, 0, 1);
        let path =
            std::env::temp_dir().join(format!("rdht-trace-test-{}.json", std::process::id()));
        sink.write_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"traceEvents\":["));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn args_render_as_an_object_member() {
        let sink = TraceSink::new();
        sink.complete_with_args(
            "client.call",
            0,
            1,
            10,
            25,
            vec![
                ("trace_id".to_string(), "000000000000002a".to_string()),
                ("outcome".to_string(), "ok".to_string()),
            ],
        );
        let json = sink.render_chrome_trace();
        assert!(
            json.contains("\"args\":{\"trace_id\":\"000000000000002a\",\"outcome\":\"ok\"}"),
            "{json}"
        );
    }

    #[test]
    fn merging_concatenates_event_arrays() {
        let a = TraceSink::new();
        a.complete_at("client", 0, 0, 5, 10);
        let b = TraceSink::new();
        b.complete_at("peer", 1, 0, 7, 3);
        let empty = TraceSink::new();
        let merged = merge_chrome_traces(&[
            a.render_chrome_trace(),
            empty.render_chrome_trace(),
            b.render_chrome_trace(),
        ])
        .expect("all parts well-formed");
        assert!(merged.starts_with("{\"traceEvents\":["));
        assert!(merged.contains("\"name\":\"client\""));
        assert!(merged.contains("\"name\":\"peer\""));
        assert!(merged.ends_with("]}"));
        assert!(merge_chrome_traces(&["not a trace"]).is_none());
    }

    #[test]
    fn merging_files_round_trips() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path_a = dir.join(format!("rdht-merge-a-{pid}.json"));
        let path_b = dir.join(format!("rdht-merge-b-{pid}.json"));
        let a = TraceSink::new();
        a.complete_at("x", 0, 0, 0, 1);
        a.write_to(&path_a).unwrap();
        let b = TraceSink::new();
        b.complete_at("y", 1, 0, 2, 1);
        b.write_to(&path_b).unwrap();
        let merged = merge_chrome_trace_files(&[&path_a, &path_b]).unwrap();
        assert!(merged.contains("\"name\":\"x\"") && merged.contains("\"name\":\"y\""));
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn sinks_are_shared_across_threads() {
        let sink = TraceSink::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.complete_at("op", t, 0, i * 10, 5);
                    }
                });
            }
        });
        assert_eq!(sink.len(), 400);
    }
}
