//! A small, std-only metrics layer for the whole workspace.
//!
//! The design follows the `prometheus_client` idiom: an instrument is a
//! cheaply clonable handle over shared atomics, a [`Registry`] is a named
//! catalog of instruments, and [`encode`] renders the catalog in the
//! Prometheus text exposition format. Because the build environment is
//! offline, the crate depends on nothing but `std` — every other crate in
//! the workspace (including the storage hot path) can link it for free.
//!
//! Three instrument kinds cover everything the paper's experiments need:
//!
//! * [`Counter`] — a monotonically increasing `u64` (ops applied, fsyncs,
//!   dedup hits, retries). One relaxed `fetch_add` per increment.
//! * [`Gauge`] — a signed value that goes both ways (queue depth).
//! * [`Histogram`] — a fixed-boundary latency distribution. The default
//!   boundaries are log-scale and span 100 ns to 1 s, which covers
//!   everything from an in-memory counter bump to a lossy TCP round trip.
//!
//! Instruments are *handles*: cloning shares the underlying atomics, so the
//! same counter can live inside a `StorageEngine`, be registered into a
//! per-peer [`Registry`], and be snapshotted by a legacy stats struct — one
//! storage location, one name.
//!
//! Two more pieces round out the observability story:
//!
//! * [`parse`] — a minimal text-format parser, used by the proptest
//!   round-trip suite, the `metrics` example and CI to validate that a
//!   scrape actually parses.
//! * [`TraceSink`] — a chrome-trace (`chrome://tracing`, Perfetto) span
//!   recorder with explicit-timestamp variants so the discrete-event
//!   simulator can emit spans in *simulated* time. Per-process sink files
//!   merge with [`merge_chrome_trace_files`].
//! * [`span`] — causal distributed tracing: the [`TraceContext`] carried
//!   on the wire, span records, request-tree reassembly and the [`SpanLog`]
//!   slow-request ring the peers answer tail-attribution queries from.
//! * [`log`] — a structured, leveled, rate-limited JSONL event log
//!   (`RDHT_LOG` selects the threshold), replacing ad-hoc `eprintln!`.

// `deny`, not `forbid`: the SpanLog seqlock ring carries two audited
// `#[allow(unsafe_code)]` islands in `span`, each verified under every
// bounded interleaving by the model build (`--cfg rdht_model`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod instruments;
pub mod log;
mod msync;
pub mod parse;
mod registry;
pub mod span;
mod trace;

pub use encode::encode;
pub use instruments::{
    default_latency_buckets, exponential_buckets, Counter, Gauge, Histogram, HistogramSnapshot,
};
pub use log::{EventLog, Level};
pub use registry::{Labels, Registry};
pub use span::{
    assemble_trees, next_span_id, RequestTree, SpanLog, SpanRecord, TraceConfig, TraceContext,
    FLAG_SAMPLED,
};
pub use trace::{
    merge_chrome_trace_files, merge_chrome_traces, SpanGuard, TraceEvent, TracePhase, TraceSink,
};

#[cfg(all(test, not(rdht_model)))]
mod proptests;

#[cfg(all(test, rdht_model))]
mod model_tests;
