//! Model tests: the crate's lock-free structures driven through every
//! bounded interleaving by `rdht-check`. Compiled only under
//! `RUSTFLAGS='--cfg rdht_model' cargo test -p rdht-metrics` (the CI
//! `analysis` job); in that build [`crate::msync`] swaps the std sync
//! types for instrumented ones, so these tests exercise the *same source*
//! the production build runs.
//!
//! Each test asserts a linearizability-style invariant:
//!
//! * counter/gauge/histogram updates are exact — no interleaving loses an
//!   increment or an observation;
//! * `next_span_id` never hands out a duplicate;
//! * the `SpanLog` ring never yields a torn entry, under racing pushers
//!   and under a push racing a scrape;
//! * and — the mutation test — with the ring's Release publication
//!   deliberately weakened to Relaxed, the checker *does* report the torn
//!   entry, proving the tool can fail.

use rdht_check::{model, model_expect_violation, model_with, thread, Config};

use crate::span::next_span_id;
use crate::{Counter, Gauge, Histogram, RequestTree, SpanLog};

fn tree(trace_id: u64, name: &str, total_us: u64) -> RequestTree {
    RequestTree {
        trace_id,
        name: name.to_string(),
        total_us,
        phases: vec![(format!("{name}.phase"), total_us / 2)],
    }
}

/// A tree is intact when its fields are the consistent triple it was
/// built from — any cross-contamination between concurrently pushed trees
/// is a torn entry.
fn assert_intact(t: &RequestTree) {
    assert_eq!(t.name, format!("req{}", t.trace_id), "torn entry: {t:?}");
    assert_eq!(t.total_us, t.trace_id * 100, "torn entry: {t:?}");
    assert_eq!(
        t.phases,
        vec![(format!("req{}.phase", t.trace_id), t.trace_id * 50)],
        "torn entry: {t:?}"
    );
}

fn intact_tree(trace_id: u64) -> RequestTree {
    tree(trace_id, &format!("req{trace_id}"), trace_id * 100)
}

#[test]
fn counter_increments_are_exact() {
    let report = model_with(Config::default(), || {
        let counter = Counter::new();
        let (c2, c3) = (counter.clone(), counter.clone());
        let t2 = thread::spawn(move || c2.inc());
        let t3 = thread::spawn(move || c3.add(3));
        counter.inc();
        t2.join().unwrap();
        t3.join().unwrap();
        assert_eq!(counter.get(), 5, "lost counter update");
    });
    assert!(report.schedules >= 3, "saw {} schedules", report.schedules);
}

#[test]
fn counter_record_absolute_stays_monotonic_under_races() {
    model(|| {
        let counter = Counter::new();
        let c2 = counter.clone();
        let t = thread::spawn(move || c2.record_absolute(10));
        counter.record_absolute(7);
        t.join().unwrap();
        assert_eq!(counter.get(), 10, "high-water mark lost");
    });
}

#[test]
fn gauge_signed_updates_are_exact() {
    model(|| {
        let gauge = Gauge::new();
        let g2 = gauge.clone();
        let t = thread::spawn(move || g2.add(-4));
        gauge.add(7);
        t.join().unwrap();
        assert_eq!(gauge.get(), 3, "lost gauge update");
    });
}

#[test]
fn histogram_observations_are_exact() {
    model(|| {
        let hist = Histogram::with_buckets(vec![10]);
        let h2 = hist.clone();
        let t = thread::spawn(move || h2.observe(5));
        hist.observe(50);
        t.join().unwrap();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 2, "lost observation");
        assert_eq!(snap.sum, 55, "lost sum update");
        assert_eq!(snap.counts, vec![1, 1], "observation in wrong bucket");
    });
}

#[test]
fn span_ids_stay_unique_across_threads() {
    model(|| {
        let t = thread::spawn(next_span_id);
        let mine = next_span_id();
        let theirs = t.join().unwrap();
        assert_ne!(mine, 0);
        assert_ne!(theirs, 0);
        assert_ne!(mine, theirs, "duplicate span id");
    });
}

#[test]
fn ring_never_yields_a_torn_entry() {
    let report = model_with(Config::default(), || {
        let log = SpanLog::new(2);
        let l2 = log.clone();
        let t = thread::spawn(move || l2.push(intact_tree(1)));
        log.push(intact_tree(2));
        t.join().unwrap();
        let trees = log.slowest(10);
        assert_eq!(trees.len(), 2);
        for t in &trees {
            assert_intact(t);
        }
    });
    assert!(report.schedules >= 3, "saw {} schedules", report.schedules);
}

#[test]
fn contended_slot_keeps_exactly_one_intact_entry() {
    // Capacity 1: both pushers fight over the same slot; whichever lands
    // last must still be intact, and the loser fully evicted.
    model(|| {
        let log = SpanLog::new(1);
        let l2 = log.clone();
        let t = thread::spawn(move || l2.push(intact_tree(1)));
        log.push(intact_tree(2));
        t.join().unwrap();
        let trees = log.slowest(10);
        assert_eq!(trees.len(), 1);
        assert_intact(&trees[0]);
    });
}

#[test]
fn scrape_racing_a_push_sees_whole_entries_only() {
    model(|| {
        let log = SpanLog::new(1);
        let l2 = log.clone();
        let t = thread::spawn(move || l2.push(intact_tree(1)));
        // Scrape while the push may be mid-flight.
        for tree in log.slowest(10) {
            assert_intact(&tree);
        }
        t.join().unwrap();
        let after = log.slowest(10);
        assert_eq!(after.len(), 1);
        assert_intact(&after[0]);
    });
}

/// The mutation test: `push_weak_publication` downgrades the slot's
/// Release publication store to Relaxed. The scheduler must find the torn
/// entry (surfacing as an `UnsafeCell` data race between the writer's
/// payload write and the next accessor) within the default preemption
/// bound — proving the checker can fail, and that the Release/Acquire
/// pair on `Slot::seq` is load-bearing.
#[test]
fn weak_publication_is_caught() {
    let failure = model_expect_violation(Config::default(), || {
        let log = SpanLog::new(1);
        let l2 = log.clone();
        let t = thread::spawn(move || l2.push_weak_publication(intact_tree(1)));
        log.push(intact_tree(2));
        t.join().unwrap();
    });
    assert!(failure.contains("data race"), "{failure}");
    assert!(failure.contains("span.rs"), "{failure}");
}
