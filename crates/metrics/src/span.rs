//! Causal spans: trace contexts, span records, request trees and the
//! per-peer slow-request log.
//!
//! The workspace's distributed tracing is built from four small pieces:
//!
//! * [`TraceContext`] — the identity carried *on the wire* with every
//!   sampled request (trace id, parent span, flags). It is deliberately
//!   tiny (17 bytes encoded) so an unsampled deployment pays one option
//!   tag per frame and nothing else.
//! * [`TraceConfig`] — the client-side sampling decision: a `sample_rate`
//!   in `[0, 1]` decides which operations carry a context, and a
//!   `slow_threshold` force-records any operation that turns out slow even
//!   when the sampler skipped it.
//! * [`SpanRecord`] / [`assemble_trees`] — completed spans as flat records
//!   (each knows its trace, its own span id and its parent), and the pure
//!   function that reassembles an arbitrary interleaving of them into the
//!   per-request [`RequestTree`]s that were emitted.
//! * [`SpanLog`] — a bounded ring of the last N completed request trees a
//!   peer served, queried by the `SlowRequests` wire exchange to answer
//!   "where did the p99 go?" with a per-phase breakdown.
//!
//! Chrome-trace rendering stays in [`crate::TraceSink`]; spans recorded
//! there carry their trace id as an `args` entry so per-process sink files
//! can be merged by trace id.

use std::collections::HashMap;
use std::time::Duration;

use crate::msync::{spin_yield, Arc, AtomicU64, Ordering, UnsafeCell};

/// The sampled-flag bit of [`TraceContext::flags`].
pub const FLAG_SAMPLED: u8 = 1;

/// The causal identity a sampled request carries across process boundaries.
///
/// `trace_id` names the whole end-to-end operation; `parent_span` is the
/// span id of the sender-side span the receiver's work is causally nested
/// under (0 = root); `flags` carries the sampling decision so every hop
/// agrees without re-rolling dice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identity of the end-to-end operation, shared by every hop.
    pub trace_id: u64,
    /// Span id of the causal parent on the sending side (0 for the root).
    pub parent_span: u64,
    /// Bit flags; see [`FLAG_SAMPLED`].
    pub flags: u8,
}

impl TraceContext {
    /// A fresh sampled root context with the given trace id.
    pub fn sampled_root(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span: 0,
            flags: FLAG_SAMPLED,
        }
    }

    /// Whether the sampled bit is set — spans should be recorded.
    pub fn is_sampled(&self) -> bool {
        self.flags & FLAG_SAMPLED != 0
    }

    /// The context a child hop should carry: same trace and flags, nested
    /// under `parent_span`.
    pub fn child_of(&self, parent_span: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            parent_span,
            flags: self.flags,
        }
    }
}

/// Client-side sampling knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceConfig {
    /// Fraction of operations in `[0, 1]` that carry a [`TraceContext`].
    pub sample_rate: f64,
    /// Operations slower than this are span-recorded at the client even
    /// when the sampler skipped them, so an unlucky tail is never invisible.
    pub slow_threshold: Duration,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_rate: 0.0,
            slow_threshold: Duration::from_millis(100),
        }
    }
}

impl TraceConfig {
    /// Sample every operation — what tests and the trace example use.
    pub fn always() -> Self {
        TraceConfig {
            sample_rate: 1.0,
            ..TraceConfig::default()
        }
    }
}

/// Process-global span-id allocator. Ids are unique within a process and
/// never 0 (0 means "no parent"); cross-process uniqueness is not needed
/// because spans are always interpreted next to their pid lane.
#[cfg(not(rdht_model))]
pub fn next_span_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    // relaxed: uniqueness comes from fetch_add atomicity alone; ids carry
    // no cross-location ordering (verified by the model build's
    // span_ids_stay_unique_across_threads).
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Model-build variant: model atomics are per-execution, so the allocator
/// lives in a per-execution [`rdht_check::lazy::Lazy`] instead of a plain
/// static.
#[cfg(rdht_model)]
pub fn next_span_id() -> u64 {
    static NEXT: rdht_check::lazy::Lazy<AtomicU64> =
        rdht_check::lazy::Lazy::new(|| AtomicU64::new(1));
    // relaxed: see the production variant above.
    NEXT.get().fetch_add(1, Ordering::Relaxed)
}

/// One completed span, as a flat record: enough to rebuild the tree it was
/// emitted from ([`assemble_trees`]) regardless of completion order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The operation this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the emitting process, never 0).
    pub span_id: u64,
    /// Id of the parent span (0 = this is the root).
    pub parent_span: u64,
    /// Phase name (`client.call`, `peer.queue_wait`, `peer.fsync`, ...).
    pub name: String,
    /// Start timestamp in microseconds (sink-relative).
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// One completed request as its per-phase breakdown: the root span's name
/// and total duration plus every descendant phase, in causal order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestTree {
    /// The operation's trace id.
    pub trace_id: u64,
    /// Root span name (the request kind, by convention).
    pub name: String,
    /// Root span duration in microseconds — the request's wall time as
    /// observed by the recording process.
    pub total_us: u64,
    /// `(phase name, duration in µs)` of every non-root span, depth-first
    /// in `(start_us, span_id)` order.
    pub phases: Vec<(String, u64)>,
}

impl RequestTree {
    /// Microseconds attributed to named phases — compare against
    /// [`RequestTree::total_us`] to see how much of the request's wall time
    /// the recorded phases explain. Nested phases double-count by design;
    /// callers wanting a partition should pick one level.
    pub fn attributed_us(&self) -> u64 {
        self.phases.iter().map(|(_, us)| *us).sum()
    }
}

/// Reassembles an arbitrary interleaving of completed [`SpanRecord`]s into
/// the [`RequestTree`]s they were emitted from: records are grouped by
/// trace id, each group's root is the record with `parent_span == 0`, and
/// descendants are attached by parent id and ordered `(start_us, span_id)`.
/// Groups without exactly one root are skipped (a half-collected trace has
/// no meaningful total). Trees come back sorted by trace id.
pub fn assemble_trees(records: &[SpanRecord]) -> Vec<RequestTree> {
    let mut by_trace: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for record in records {
        by_trace.entry(record.trace_id).or_default().push(record);
    }
    let mut trees: Vec<RequestTree> = Vec::new();
    for (trace_id, group) in by_trace {
        let mut roots = group.iter().filter(|r| r.parent_span == 0);
        let (Some(root), None) = (roots.next(), roots.next()) else {
            continue;
        };
        let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        for record in &group {
            if record.parent_span != 0 {
                children.entry(record.parent_span).or_default().push(record);
            }
        }
        for siblings in children.values_mut() {
            siblings.sort_by_key(|r| (r.start_us, r.span_id));
        }
        // Depth-first walk from the root, iterative to stay panic-free on
        // adversarial (cyclic) parent links: a span is visited at most once.
        let mut phases = Vec::new();
        let mut stack: Vec<&SpanRecord> = children
            .get(&root.span_id)
            .map(|c| c.iter().rev().copied().collect())
            .unwrap_or_default();
        let mut visited: HashMap<u64, ()> = HashMap::new();
        visited.insert(root.span_id, ());
        while let Some(record) = stack.pop() {
            if visited.insert(record.span_id, ()).is_some() {
                continue;
            }
            phases.push((record.name.clone(), record.dur_us));
            if let Some(grandchildren) = children.get(&record.span_id) {
                stack.extend(grandchildren.iter().rev().copied());
            }
        }
        trees.push(RequestTree {
            trace_id,
            name: root.name.clone(),
            total_us: root.dur_us,
            phases,
        });
    }
    trees.sort_by_key(|t| t.trace_id);
    trees
}

/// One ring slot: a per-slot sequence lock over the payload.
///
/// `seq` is even when the slot is stable and odd while a writer (or a
/// scraping reader) holds it; it only ever grows. Mutual exclusion comes
/// from the CAS on `seq` being atomic; *visibility* of the payload comes
/// from the Acquire CAS / Release publication pair — that pair is exactly
/// what the model build's mutation test weakens to prove the checker can
/// catch a torn entry (see `SpanLog::push_weak_publication`).
struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<Option<RequestTree>>,
}

struct Ring {
    slots: Vec<Slot>,
    /// Ticket counter; ticket `t` maps to slot `t % capacity`, so the ring
    /// overwrites oldest-first without any shared write cursor state
    /// beyond this one atomic.
    head: AtomicU64,
}

// SAFETY: the payload cells are only touched between a successful
// even->odd CAS on the owning slot's `seq` and the closing store — a
// critical section that excludes writers and scrapers alike. The model
// build proves the claim under every bounded interleaving
// (`model_tests::ring_never_yields_a_torn_entry`).
#[allow(unsafe_code)]
unsafe impl Send for Ring {}
#[allow(unsafe_code)]
unsafe impl Sync for Ring {}

#[allow(unsafe_code)]
impl Ring {
    /// Runs `f` on the slot's payload while holding its sequence lock.
    fn with_slot<R>(&self, index: usize, f: impl FnOnce(&mut Option<RequestTree>) -> R) -> R {
        let slot = &self.slots[index];
        let seq = loop {
            // relaxed: a stale (odd or already-bumped) value only costs a
            // retry; the CAS below re-validates against the live value.
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq.is_multiple_of(2)
                && slot
                    .seq
                    // relaxed: failure ordering only — a lost race is just
                    // a retry.
                    .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break seq;
            }
            spin_yield();
        };
        // SAFETY contract of `Ring`: `seq` is odd, so this thread is the
        // slot's only accessor until the closing store.
        let result = slot.data.with_mut(|p| f(unsafe { &mut *p }));
        slot.seq.store(seq + 2, Ordering::Release);
        result
    }
}

/// A bounded lock-free ring of the last N completed [`RequestTree`]s —
/// the peer-side slow-request log. Cloning shares the ring. Writers on
/// the request path never contend on a global lock: a push takes one
/// `fetch_add` ticket plus its target slot's sequence lock.
#[derive(Clone)]
pub struct SpanLog {
    ring: Arc<Ring>,
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanLog")
            .field("capacity", &self.ring.slots.len())
            .field("len", &self.len())
            .finish()
    }
}

impl SpanLog {
    /// A log keeping the most recent `capacity` trees (at least 1).
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                data: UnsafeCell::new(None),
            })
            .collect();
        SpanLog {
            ring: Arc::new(Ring {
                slots,
                head: AtomicU64::new(0),
            }),
        }
    }

    /// Records one completed request tree, evicting the oldest at capacity.
    pub fn push(&self, tree: RequestTree) {
        // relaxed: the ticket needs only fetch_add atomicity for
        // uniqueness; payload visibility is carried by the slot's
        // Acquire/Release sequence lock, not by this counter.
        let ticket = self.ring.head.fetch_add(1, Ordering::Relaxed);
        let index = (ticket % self.ring.slots.len() as u64) as usize;
        self.ring.with_slot(index, |slot| *slot = Some(tree));
    }

    /// Number of retained trees.
    pub fn len(&self) -> usize {
        (0..self.ring.slots.len())
            .filter(|&i| self.ring.with_slot(i, |slot| slot.is_some()))
            .count()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` slowest retained trees, slowest first (ties broken by trace
    /// id for determinism).
    pub fn slowest(&self, k: usize) -> Vec<RequestTree> {
        let mut trees: Vec<RequestTree> = (0..self.ring.slots.len())
            .filter_map(|i| self.ring.with_slot(i, |slot| slot.clone()))
            .collect();
        trees.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then(a.trace_id.cmp(&b.trace_id))
        });
        trees.truncate(k);
        trees
    }
}

/// Mutation-test hooks, model build only: deliberately weakened push
/// variants that `model_tests::weak_publication_is_caught` proves the
/// checker rejects. Production builds do not compile these.
#[cfg(rdht_model)]
#[allow(unsafe_code)]
impl SpanLog {
    /// `push` with the closing slot store downgraded to `Relaxed`: the
    /// payload write is no longer released to the next slot holder, so a
    /// concurrent scraper may observe a torn entry. The model checker
    /// reports it as an `UnsafeCell` data race.
    pub fn push_weak_publication(&self, tree: RequestTree) {
        // relaxed: ticket draw, same as `push`.
        let ticket = self.ring.head.fetch_add(1, Ordering::Relaxed);
        let index = (ticket % self.ring.slots.len() as u64) as usize;
        let slot = &self.ring.slots[index];
        let seq = loop {
            // relaxed: stale reads only cost a retry, same as `with_slot`.
            let seq = slot.seq.load(Ordering::Relaxed);
            if seq.is_multiple_of(2)
                && slot
                    .seq
                    // relaxed: failure ordering only, same as `with_slot`.
                    .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break seq;
            }
            spin_yield();
        };
        slot.data.with_mut(|p| unsafe { *p = Some(tree) });
        // relaxed: THE SEEDED BUG — the publication store must be Release;
        // this is the weakening the mutation test proves the checker
        // catches.
        slot.seq.store(seq + 2, Ordering::Relaxed);
    }
}

#[cfg(all(test, not(rdht_model)))]
mod tests {
    use super::*;

    fn record(trace: u64, span: u64, parent: u64, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_span: parent,
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn context_flags_and_children() {
        let root = TraceContext::sampled_root(42);
        assert!(root.is_sampled());
        assert_eq!(root.parent_span, 0);
        let child = root.child_of(7);
        assert_eq!(child.trace_id, 42);
        assert_eq!(child.parent_span, 7);
        assert!(child.is_sampled());
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn trees_reassemble_in_causal_order() {
        // Emit out of order: fsync completes before queue_wait is pushed.
        let records = vec![
            record(9, 4, 2, "peer.fsync", 30, 5),
            record(9, 1, 0, "peer.request", 0, 50),
            record(9, 3, 2, "peer.apply", 20, 8),
            record(9, 2, 1, "peer.batch", 10, 40),
            record(9, 5, 1, "peer.queue_wait", 0, 10),
        ];
        let trees = assemble_trees(&records);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace_id, 9);
        assert_eq!(tree.name, "peer.request");
        assert_eq!(tree.total_us, 50);
        assert_eq!(
            tree.phases,
            vec![
                ("peer.queue_wait".to_string(), 10),
                ("peer.batch".to_string(), 40),
                ("peer.apply".to_string(), 8),
                ("peer.fsync".to_string(), 5),
            ]
        );
        assert_eq!(tree.attributed_us(), 63, "nested phases double-count");
    }

    #[test]
    fn rootless_and_multirooted_groups_are_skipped() {
        let records = vec![
            record(1, 2, 1, "orphan", 0, 5),
            record(2, 1, 0, "root-a", 0, 5),
            record(2, 2, 0, "root-b", 0, 5),
            record(3, 1, 0, "good", 0, 7),
        ];
        let trees = assemble_trees(&records);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].trace_id, 3);
    }

    #[test]
    fn cyclic_parent_links_terminate() {
        let records = vec![
            record(5, 1, 0, "root", 0, 10),
            record(5, 2, 3, "a", 1, 2),
            record(5, 3, 2, "b", 2, 2),
        ];
        // The cycle (2 <-> 3) is unreachable from the root; must not hang.
        let trees = assemble_trees(&records);
        assert_eq!(trees.len(), 1);
        assert!(trees[0].phases.is_empty());
    }

    #[test]
    fn span_log_keeps_the_last_n_and_ranks_by_duration() {
        let log = SpanLog::new(3);
        for (id, total) in [(1u64, 10u64), (2, 50), (3, 20), (4, 40)] {
            log.push(RequestTree {
                trace_id: id,
                name: "req".into(),
                total_us: total,
                phases: vec![],
            });
        }
        // Capacity 3: tree 1 was evicted.
        assert_eq!(log.len(), 3);
        let slowest = log.slowest(2);
        assert_eq!(slowest[0].trace_id, 2);
        assert_eq!(slowest[1].trace_id, 4);
        assert_eq!(log.slowest(10).len(), 3);
    }
}
