//! Criterion micro-benchmarks for the per-operation hot path: `PeerStore`
//! put/get/drain, hash-family evaluation, and end-to-end `ums::insert` /
//! `ums::retrieve` against the in-memory DHT.
//!
//! The same operations are timed by the `hotpath` binary, which additionally
//! emits a machine-readable `BENCH_hotpath.json` for CI artifact tracking.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rdht_bench::workload::{bench_keys as keys, filled_store};
use rdht_core::{ums, InMemoryDht};
use rdht_hashing::HashFamily;
use rdht_overlay::WritePolicy;

fn bench_store(c: &mut Criterion) {
    let family = HashFamily::new(10, 7);
    let workload = keys(256);
    let mut group = c.benchmark_group("peer_store");

    group.bench_function("put_fill_256x10", |b| {
        b.iter(|| filled_store(&family, &workload).len())
    });

    let store = filled_store(&family, &workload);
    group.bench_function("get_all_256x10", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in &workload {
                for h in family.replication_ids() {
                    if let Some(rec) = store.get(h, black_box(key)) {
                        acc = acc.wrapping_add(rec.stamp);
                    }
                }
            }
            acc
        })
    });

    group.bench_function("max_stamp_256", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for key in &workload {
                acc = acc.wrapping_add(store.max_stamp_for_key(black_box(key)).unwrap_or(0));
            }
            acc
        })
    });

    let mut churn_store = filled_store(&family, &workload);
    group.bench_function("drain_eighth_and_restore", |b| {
        b.iter(|| {
            let moved = churn_store.drain_range(0, u64::MAX / 8);
            let count = moved.len();
            for (hash, key, rec) in moved {
                churn_store.put(hash, key, rec, WritePolicy::Overwrite);
            }
            count
        })
    });
    group.finish();
}

fn bench_hash_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_eval_cached_digest");
    for &replicas in &[10usize, 40] {
        let family = HashFamily::new(replicas, 7);
        let workload = keys(64);
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for key in &workload {
                    for h in family.replication_functions() {
                        acc ^= h.eval(black_box(key));
                    }
                    acc ^= family.eval_timestamp(black_box(key));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_ums_end_to_end(c: &mut Criterion) {
    let workload = keys(32);
    let mut group = c.benchmark_group("ums_inmemory");

    let mut dht = InMemoryDht::new(10, 7);
    group.bench_function("insert_32", |b| {
        b.iter(|| {
            for key in &workload {
                ums::insert(&mut dht, black_box(key), vec![1u8; 32]).expect("insert");
            }
        })
    });

    let mut dht = InMemoryDht::new(10, 7);
    for key in &workload {
        ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
    }
    group.bench_function("retrieve_32", |b| {
        b.iter(|| {
            let mut probed = 0usize;
            for key in &workload {
                probed += ums::retrieve(&mut dht, black_box(key))
                    .expect("retrieve")
                    .replicas_probed;
            }
            probed
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store, bench_hash_eval, bench_ums_end_to_end);
criterion_main!(benches);
