//! Micro-benchmarks of the Chord substrate: lookups on converged and damaged
//! rings, joins and stabilization rounds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdht_overlay::chord::{ChordConfig, ChordNetwork};
use rdht_overlay::{NodeId, Overlay};

fn ring(size: usize, seed: u64) -> ChordNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = std::collections::BTreeSet::new();
    while ids.len() < size {
        ids.insert(NodeId(rng.gen()));
    }
    ChordNetwork::bootstrap(ids, ChordConfig::default())
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_lookup");
    for &size in &[256usize, 1024, 4096] {
        let mut network = ring(size, 1);
        let members = network.alive_ids();
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let origin = members[rng.gen_range(0..members.len())];
                let target: u64 = rng.gen();
                black_box(network.lookup(origin, target).unwrap().hops)
            })
        });
    }
    group.finish();
}

fn bench_lookup_under_failures(c: &mut Criterion) {
    let mut network = ring(2048, 3);
    // Fail a quarter of the ring without stabilizing: lookups pay timeouts
    // and perform lazy repair.
    let members = network.alive_ids();
    for chunk in members.chunks(4) {
        network.fail(chunk[0]);
    }
    let survivors = network.alive_ids();
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("chord_lookup_25pct_failed", |b| {
        b.iter(|| {
            let origin = survivors[rng.gen_range(0..survivors.len())];
            let target: u64 = rng.gen();
            black_box(network.lookup(origin, target).unwrap().messages())
        })
    });
}

fn bench_join_and_stabilize(c: &mut Criterion) {
    c.bench_function("chord_join", |b| {
        let mut network = ring(1024, 5);
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            let id = NodeId(rng.gen());
            black_box(network.join(id).messages)
        })
    });
    c.bench_function("chord_stabilize_round_1024", |b| {
        let mut network = ring(1024, 7);
        b.iter(|| black_box(network.stabilize().messages))
    });
}

criterion_group!(
    benches,
    bench_lookup,
    bench_lookup_under_failures,
    bench_join_and_stabilize
);
criterion_main!(benches);
