//! Micro-benchmarks of the Key-based Timestamping Service: timestamp
//! generation with a valid counter, with direct transfer, and with the
//! indirect initialization (the ablation behind UMS-Direct vs UMS-Indirect).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rdht_core::kts::{IndirectObservation, KtsNode};
use rdht_core::{LastTsInitPolicy, Timestamp};
use rdht_hashing::Key;

fn bench_gen_ts_valid_counter(c: &mut Criterion) {
    let mut node = KtsNode::new(false);
    let key = Key::new("doc");
    node.gen_ts(&key, IndirectObservation::nothing);
    c.bench_function("kts_gen_ts_valid_counter", |b| {
        b.iter(|| black_box(node.gen_ts(&key, IndirectObservation::nothing).timestamp))
    });
}

fn bench_gen_ts_with_indirect_init(c: &mut Criterion) {
    // Every iteration starts from a fresh responsible (as after a failure),
    // so the counter must be re-initialized from an observation.
    let key = Key::new("doc");
    c.bench_function("kts_gen_ts_indirect_init", |b| {
        b.iter(|| {
            let mut node = KtsNode::new(false);
            black_box(
                node.gen_ts(&key, || IndirectObservation::observed(Timestamp(41)))
                    .timestamp,
            )
        })
    });
}

fn bench_direct_transfer(c: &mut Criterion) {
    // The direct algorithm: export the departing responsible's counters and
    // import them at the next responsible, for a realistic number of keys.
    c.bench_function("kts_direct_transfer_256_keys", |b| {
        b.iter_batched(
            || {
                let mut node = KtsNode::new(false);
                for i in 0..256 {
                    node.gen_ts(&Key::new(format!("key-{i}")), IndirectObservation::nothing);
                }
                node
            },
            |mut departing| {
                let exported = departing.export_counters_in_range(|_| true);
                let mut next = KtsNode::new(false);
                next.receive_transferred_counters(exported);
                black_box(next.vcs().len())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_last_ts(c: &mut Criterion) {
    let mut node = KtsNode::new(false);
    let key = Key::new("doc");
    node.gen_ts(&key, IndirectObservation::nothing);
    c.bench_function("kts_last_ts", |b| {
        b.iter(|| {
            black_box(
                node.last_ts(
                    &key,
                    LastTsInitPolicy::ObservedMax,
                    IndirectObservation::nothing,
                )
                .timestamp,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_gen_ts_valid_counter,
    bench_gen_ts_with_indirect_init,
    bench_direct_transfer,
    bench_last_ts
);
criterion_main!(benches);
