//! One Criterion benchmark per figure of the paper's evaluation.
//!
//! Each benchmark runs a miniature version of the corresponding experiment
//! end to end (simulation construction, workload, queries) so that
//! `cargo bench` exercises every figure-regeneration path and tracks its
//! cost over time. The full-size sweeps — the ones whose numbers go into
//! `EXPERIMENTS.md` — are produced by the `experiments` binary instead
//! (`cargo run --release -p rdht-bench --bin experiments -- all`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use rdht_sim::{Algorithm, SimConfig, Simulation};

fn mini(config: SimConfig) -> f64 {
    let report = Simulation::new(config).run();
    report.summary(Algorithm::UmsDirect).mean_response_time
        + report.summary(Algorithm::Brk).mean_response_time
}

fn mini_config(peers: usize, seed: u64) -> SimConfig {
    let mut config = SimConfig::small_test(peers, seed);
    config.queries = 8;
    config.duration = 600.0;
    config
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_cluster_point", |b| {
        b.iter(|| {
            let mut config = SimConfig::cluster(32);
            config.duration = 600.0;
            config.queries = 8;
            black_box(mini(config))
        })
    });
}

fn bench_fig7_fig8(c: &mut Criterion) {
    c.bench_function("fig7_fig8_scaleup_point", |b| {
        b.iter(|| black_box(mini(mini_config(128, 1))))
    });
}

fn bench_fig9_fig10(c: &mut Criterion) {
    c.bench_function("fig9_fig10_replicas_point", |b| {
        b.iter(|| black_box(mini(mini_config(96, 2).with_num_replicas(20))))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_failure_rate_point", |b| {
        b.iter(|| black_box(mini(mini_config(96, 3).with_failure_rate(0.8))))
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_update_rate_point", |b| {
        b.iter(|| black_box(mini(mini_config(96, 4).with_update_rate(0.25))))
    });
}

fn bench_ablation_maintenance(c: &mut Criterion) {
    // Ablation: how much overlay maintenance (stabilization frequency and
    // fingers refreshed per round) buys under churn. Sparse maintenance
    // leaves more stale routing entries, so lookups pay more timeouts and the
    // same end-to-end workload takes longer in simulated time — the measured
    // quantity here is the harness cost of running that workload.
    let mut group = c.benchmark_group("ablation_maintenance");
    group.bench_function("aggressive_stabilization", |b| {
        b.iter(|| {
            let mut config = mini_config(96, 6);
            config.stabilize_interval = 15.0;
            config.fingers_fixed_per_round = 16;
            black_box(mini(config))
        })
    });
    group.bench_function("sparse_stabilization", |b| {
        b.iter(|| {
            let mut config = mini_config(96, 6);
            config.stabilize_interval = 120.0;
            config.fingers_fixed_per_round = 2;
            black_box(mini(config))
        })
    });
    group.finish();
}

fn bench_ablation_data_transfer(c: &mut Criterion) {
    // Ablation: replica hand-off on membership changes (off in the paper's
    // model) vs on. The measured quantity is the same end-to-end simulation.
    let mut group = c.benchmark_group("ablation_data_handoff");
    group.bench_function("without_handoff", |b| {
        b.iter(|| black_box(mini(mini_config(96, 5))))
    });
    group.bench_function("with_handoff", |b| {
        b.iter(|| {
            let mut config = mini_config(96, 5);
            config.transfer_data_on_membership_change = true;
            black_box(mini(config))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6, bench_fig7_fig8, bench_fig9_fig10, bench_fig11, bench_fig12,
              bench_ablation_data_transfer, bench_ablation_maintenance
}
criterion_main!(benches);
