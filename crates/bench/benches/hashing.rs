//! Micro-benchmarks of the hash family: key fingerprinting and evaluation of
//! the replication / timestamping hash functions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rdht_hashing::{HashFamily, Key};

fn bench_fingerprint(c: &mut Criterion) {
    let key = Key::new("agenda:room-42/2026-06-14/slot-09");
    c.bench_function("key_digest", |b| b.iter(|| black_box(&key).digest()));
}

fn bench_family_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_family_eval_all");
    for &replicas in &[5usize, 10, 20, 40] {
        let family = HashFamily::new(replicas, 7);
        let key = Key::new("auction:item-991");
        group.bench_with_input(BenchmarkId::from_parameter(replicas), &replicas, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for h in family.replication_functions() {
                    acc ^= h.eval(black_box(&key));
                }
                acc ^ family.eval_timestamp(black_box(&key))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fingerprint, bench_family_eval);
criterion_main!(benches);
