//! Head-to-head micro-benchmarks of UMS and BRK client operations over the
//! in-memory reference DHT, across replica counts — the algorithmic half of
//! the Figure 9/10 comparison (DHT routing costs excluded).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rdht_baseline::InMemoryBrk;
use rdht_core::{ums, InMemoryDht};
use rdht_hashing::Key;

fn bench_retrieve(c: &mut Criterion) {
    let mut group = c.benchmark_group("retrieve_inmemory");
    for &replicas in &[5usize, 10, 20, 40] {
        let key = Key::new("doc");
        let mut ums_dht = InMemoryDht::new(replicas, 1);
        ums::insert(&mut ums_dht, &key, b"payload".to_vec()).unwrap();
        let mut brk_dht = InMemoryBrk::new(replicas, 1);
        rdht_baseline::insert(&mut brk_dht, &key, b"payload".to_vec()).unwrap();

        group.bench_with_input(BenchmarkId::new("UMS", replicas), &replicas, |b, _| {
            b.iter(|| black_box(ums::retrieve(&mut ums_dht, &key).unwrap().replicas_probed))
        });
        group.bench_with_input(BenchmarkId::new("BRK", replicas), &replicas, |b, _| {
            b.iter(|| {
                black_box(
                    rdht_baseline::retrieve(&mut brk_dht, &key)
                        .unwrap()
                        .replicas_probed,
                )
            })
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_inmemory");
    for &replicas in &[10usize, 40] {
        let key = Key::new("doc");
        let mut ums_dht = InMemoryDht::new(replicas, 2);
        let mut brk_dht = InMemoryBrk::new(replicas, 2);
        group.bench_with_input(BenchmarkId::new("UMS", replicas), &replicas, |b, _| {
            b.iter(|| {
                black_box(
                    ums::insert(&mut ums_dht, &key, b"v".to_vec())
                        .unwrap()
                        .replicas_written,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("BRK", replicas), &replicas, |b, _| {
            b.iter(|| {
                black_box(
                    rdht_baseline::insert(&mut brk_dht, &key, b"v".to_vec())
                        .unwrap()
                        .replicas_written,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_retrieve, bench_insert);
criterion_main!(benches);
