//! Result containers and table rendering for experiments.

use std::fmt::Write as _;

/// Provenance header every `BENCH_*.json` emitter writes ahead of its rows,
/// so a committed benchmark file records what was actually measured: the
/// schema version, the run mode (`quick`/`full`), the cargo profile the
/// binary was compiled with, the fsync policy in effect and the transport
/// the workload crossed. Numbers from a `debug` build or a different fsync
/// policy are not comparable — the header makes such mismatches visible
/// instead of silently poisoning a perf trajectory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchMeta {
    /// Schema identifier, e.g. `"rdht-bench-storage/v2"`.
    pub schema: String,
    /// Repetition scale: `"quick"` (CI) or `"full"`.
    pub mode: String,
    /// Cargo profile the emitting binary was compiled with
    /// (`"release"`/`"debug"`, from `cfg!(debug_assertions)`).
    pub profile: &'static str,
    /// Fsync policy the measured workload ran under; `"swept per bench"`
    /// when individual rows vary it, `"none"` when nothing journals.
    pub fsync: String,
    /// Transport the measured operations crossed (`"in-process"`,
    /// `"channel"`, `"tcp"`, or a per-row note).
    pub transport: String,
}

impl BenchMeta {
    /// A header for `schema`/`mode` with the compile-time profile filled in
    /// and `fsync`/`transport` at their "nothing journaled, no wire"
    /// defaults.
    pub fn new(schema: impl Into<String>, mode: impl Into<String>) -> Self {
        BenchMeta {
            schema: schema.into(),
            mode: mode.into(),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
            fsync: "none".to_string(),
            transport: "in-process".to_string(),
        }
    }

    /// Sets the fsync-policy note.
    pub fn with_fsync(mut self, fsync: impl Into<String>) -> Self {
        self.fsync = fsync.into();
        self
    }

    /// Sets the transport note.
    pub fn with_transport(mut self, transport: impl Into<String>) -> Self {
        self.transport = transport.into();
        self
    }

    /// Renders the header as the opening member lines of a JSON object —
    /// `"schema"` through `"transport"`, each indented two spaces and
    /// comma-terminated, ready for the emitter to append its own arrays.
    pub fn header_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  \"schema\": \"{}\",", self.schema);
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(out, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(out, "  \"fsync\": \"{}\",", self.fsync);
        let _ = writeln!(out, "  \"transport\": \"{}\",", self.transport);
        out
    }
}

/// One plotted series (one line of a paper figure).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "UMS-Direct").
    pub label: String,
    /// `(x, y)` points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Whether the series is monotonically non-decreasing in y.
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12)
    }

    /// Whether the series is monotonically non-increasing in y.
    pub fn is_non_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12)
    }
}

/// The reproduction of one table or figure.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentResult {
    /// Short identifier ("fig7", "theorem1", ...).
    pub id: String,
    /// Human-readable title, matching the paper's caption.
    pub title: String,
    /// Label of the x axis (swept parameter).
    pub x_label: String,
    /// Label of the y axis (reported metric).
    pub y_label: String,
    /// One series per algorithm (or per reported quantity).
    pub series: Vec<Series>,
    /// Free-form notes (scale used, interpretation caveats).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the result as a GitHub-flavoured markdown table (one row per
    /// x value, one column per series).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let mut header = format!("| {} |", self.x_label);
        let mut rule = String::from("|---|");
        for series in &self.series {
            let _ = write!(header, " {} |", series.label);
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for x in xs {
            let mut row = format!("| {} |", trim_float(x));
            for series in &self.series {
                match series.y_at(x) {
                    Some(y) => {
                        let _ = write!(row, " {} |", trim_float(y));
                    }
                    None => row.push_str(" — |"),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for note in &self.notes {
                let _ = writeln!(out, "- {note}");
            }
        }
        let _ = writeln!(out, "\n*y axis: {}*", self.y_label);
        out
    }

    /// Renders the result as CSV (`x,label,y` rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,y\n");
        for series in &self.series {
            for (x, y) in &series.points {
                let _ = writeln!(out, "{x},{},{y}", series.label);
            }
        }
        out
    }
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> ExperimentResult {
        let mut result = ExperimentResult::new("figX", "demo", "peers", "seconds");
        let mut a = Series::new("A");
        a.push(10.0, 1.0);
        a.push(20.0, 2.0);
        let mut b = Series::new("B");
        b.push(10.0, 3.5);
        b.push(20.0, 3.0);
        result.series = vec![a, b];
        result.notes.push("quick scale".into());
        result
    }

    #[test]
    fn series_lookup_and_trends() {
        let result = sample_result();
        assert_eq!(result.series("A").unwrap().y_at(20.0), Some(2.0));
        assert!(result.series("A").unwrap().is_non_decreasing());
        assert!(result.series("B").unwrap().is_non_increasing());
        assert!(result.series("missing").is_none());
    }

    #[test]
    fn markdown_contains_all_points_and_notes() {
        let md = sample_result().to_markdown();
        assert!(md.contains("### figX — demo"));
        assert!(md.contains("| peers | A | B |"));
        assert!(md.contains("| 10 | 1 | 3.500 |"));
        assert!(md.contains("quick scale"));
    }

    #[test]
    fn csv_has_one_row_per_point() {
        let csv = sample_result().to_csv();
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.contains("20,B,3"));
    }

    #[test]
    fn trim_float_renders_integers_compactly() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_float(5.25), "5.250");
    }

    #[test]
    fn bench_meta_header_lists_all_provenance_fields() {
        let meta = BenchMeta::new("rdht-bench-demo/v2", "quick")
            .with_fsync("group_commit(64, 0ms)")
            .with_transport("channel");
        let header = meta.header_json();
        assert!(header.contains("\"schema\": \"rdht-bench-demo/v2\","));
        assert!(header.contains("\"mode\": \"quick\","));
        assert!(header.contains("\"fsync\": \"group_commit(64, 0ms)\","));
        assert!(header.contains("\"transport\": \"channel\","));
        // The profile is whatever this test binary was compiled as — just
        // assert it is one of the two legal values.
        assert!(
            header.contains("\"profile\": \"release\",")
                || header.contains("\"profile\": \"debug\",")
        );
        // Every line is a comma-terminated member, ready to be embedded.
        assert!(header.lines().all(|l| l.ends_with(',')));
    }

    #[test]
    fn bench_meta_defaults_describe_no_journal_no_wire() {
        let meta = BenchMeta::new("s/v2", "full");
        assert_eq!(meta.fsync, "none");
        assert_eq!(meta.transport, "in-process");
    }
}
