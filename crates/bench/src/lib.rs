//! The experiment harness: one module per table/figure of the paper's
//! evaluation (Section 5), plus shared result types and rendering.
//!
//! Each experiment builds the workload described in the paper (Table 1 as the
//! base configuration, one parameter swept per figure), runs the simulator,
//! and reports the same series the paper plots:
//!
//! | Experiment | Paper | Swept parameter | Metric |
//! |---|---|---|---|
//! | [`experiments::table1`] | Table 1 | — | simulation parameters |
//! | [`experiments::fig6`] | Figure 6 | peers 10–64 (cluster) | response time |
//! | [`experiments::fig7_fig8`] | Figures 7–8 | peers 2,000–10,000 | response time, messages |
//! | [`experiments::fig9_fig10`] | Figures 9–10 | replicas 5–40 | response time, messages |
//! | [`experiments::fig11`] | Figure 11 | failure rate 5–90 % | response time |
//! | [`experiments::fig12`] | Figure 12 | update frequency 1/16–4 per hour | response time |
//! | [`experiments::theorem1`] | Theorem 1 / Eq. 1–5 | churn (⇒ p_t) | probes vs bound |
//!
//! Every experiment accepts a [`Scale`]: `Quick` shrinks peer counts and
//! durations so the whole suite runs in seconds (CI, `cargo bench`), `Paper`
//! uses the paper's sizes (10,000 peers). The absolute times differ from the
//! published numbers — the network model is a simulator, not the authors'
//! 2007 testbed — but the orderings, growth trends and crossovers are the
//! comparison targets, recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parallel;
mod result;
pub mod workload;

pub use result::{BenchMeta, ExperimentResult, Series};

/// How large an experiment run should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small populations and short durations — the full suite runs in seconds.
    Quick,
    /// The paper's populations (up to 10,000 peers) and longer simulated
    /// durations. A full suite run takes a few minutes.
    Paper,
}

impl Scale {
    /// Parses a command-line flag.
    pub fn from_flag(paper: bool) -> Self {
        if paper {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}
