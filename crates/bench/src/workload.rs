//! Shared workload builders for the hot-path benchmark targets.
//!
//! Both `benches/hotpath.rs` (criterion suite) and `src/bin/hotpath.rs` (the
//! JSON-emitting harness) time the same operations; building their inputs
//! here keeps the two sets of numbers comparable — a tweak to key counts,
//! payload sizes or drain widths lands in both automatically.

use rdht_hashing::{HashFamily, Key};
use rdht_overlay::{PeerStore, Record, WritePolicy};

/// Replica payload size used by every store/UMS benchmark.
pub const PAYLOAD_BYTES: usize = 32;

/// `n` distinct workload keys, named like the simulator's data items.
pub fn bench_keys(n: usize) -> Vec<Key> {
    (0..n).map(|i| Key::new(format!("data-{i}"))).collect()
}

/// A record carrying the standard benchmark payload.
pub fn bench_record(stamp: u64, position: u64) -> Record {
    Record {
        payload: vec![0u8; PAYLOAD_BYTES],
        stamp,
        position,
    }
}

/// A store holding one record per (key, replication hash) pair, at the
/// positions the family actually maps the keys to.
pub fn filled_store(family: &HashFamily, keys: &[Key]) -> PeerStore {
    let mut store = PeerStore::new();
    for (i, key) in keys.iter().enumerate() {
        for h in family.replication_functions() {
            store.put(
                h.id(),
                key.clone(),
                bench_record(i as u64 + 1, h.eval(key)),
                WritePolicy::Overwrite,
            );
        }
    }
    store
}

/// The same records as [`filled_store`], as a flat batch — input for the
/// `bulk_load` fill path (one deferred index build instead of one `O(log n)`
/// index insert per record).
pub fn store_records(
    family: &HashFamily,
    keys: &[Key],
) -> Vec<(rdht_hashing::HashId, Key, Record)> {
    let mut records = Vec::with_capacity(keys.len() * family.num_replication());
    for (i, key) in keys.iter().enumerate() {
        for h in family.replication_functions() {
            records.push((h.id(), key.clone(), bench_record(i as u64 + 1, h.eval(key))));
        }
    }
    records
}
