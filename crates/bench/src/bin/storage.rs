//! Storage benchmark harness: quantifies the durability tax and the
//! recovery cost of `rdht-storage`, and emits a machine-readable
//! `BENCH_storage.json` alongside `BENCH_hotpath.json`.
//!
//! Measured:
//!
//! * `ums_insert` against an in-memory DHT vs the same DHT journaling to a
//!   write-ahead log under each [`FsyncPolicy`] — the per-operation price of
//!   durability;
//! * recovery time (`StorageEngine::recover`) as a function of WAL length,
//!   and for the same state compacted into a snapshot — why compaction
//!   exists.
//!
//! ```text
//! cargo run --release -p rdht-bench --bin storage                 # full
//! cargo run --release -p rdht-bench --bin storage -- --quick      # CI mode
//! cargo run --release -p rdht-bench --bin storage -- --out out.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use rdht_bench::workload::bench_keys;
use rdht_core::{ums, InMemoryDht, Timestamp};
use rdht_hashing::{HashId, Key};
use rdht_storage::{FsyncPolicy, StorageEngine, StorageOp, StorageOptions};

/// One measured benchmark: mean wall-clock nanoseconds per operation.
struct BenchLine {
    name: String,
    iters: u64,
    ns_per_op: f64,
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdht-bench-storage-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Times `calls` invocations of `routine` (performing `batch` ops each)
/// after one untimed warm-up call.
fn measure(
    name: impl Into<String>,
    calls: u64,
    batch: u64,
    mut routine: impl FnMut(),
) -> BenchLine {
    routine();
    let start = Instant::now();
    for _ in 0..calls {
        routine();
    }
    let elapsed = start.elapsed();
    let ops = calls * batch;
    BenchLine {
        name: name.into(),
        iters: ops,
        ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
    }
}

/// `ums::insert` throughput against a DHT journaling with the given policy
/// (or not journaling at all when `policy` is `None`).
fn bench_ums_insert(label: &str, policy: Option<FsyncPolicy>, calls: u64) -> BenchLine {
    let keys = bench_keys(32);
    let name = format!("ums_insert_{label}");
    match policy {
        None => {
            let mut dht = InMemoryDht::new(10, 7);
            measure(name, calls, keys.len() as u64, || {
                for key in &keys {
                    ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
                }
            })
        }
        Some(policy) => {
            let dir = temp_dir(label);
            let mut options = StorageOptions::with_fsync(policy);
            // Keep compaction out of this measurement; it is timed separately.
            options.snapshot_every = 0;
            let engine = StorageEngine::open(&dir, options).expect("open engine");
            let mut dht = InMemoryDht::with_durability(10, 7, engine);
            let line = measure(name, calls, keys.len() as u64, || {
                for key in &keys {
                    ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
                }
            });
            assert!(
                !dht.durability_mut().is_poisoned(),
                "journal must stay healthy during the bench"
            );
            drop(dht);
            let _ = std::fs::remove_dir_all(&dir);
            line
        }
    }
}

fn sample_put(i: u64) -> StorageOp {
    // A heavily-overwriting workload (1010 distinct records regardless of
    // log length): this is the case compaction exists for — the WAL grows
    // with the op count, the snapshot stays the size of the live state.
    StorageOp::PutReplica {
        hash: HashId((i % 10) as u32),
        key: Key::new(format!("data-{}", i % 101)),
        payload: vec![0u8; 32],
        stamp: Timestamp(i + 1),
        position: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    }
}

/// Recovery wall-clock vs log length: replaying `n_ops` from a pure WAL,
/// and recovering the same state after compaction into a snapshot.
fn bench_recovery(n_ops: u64, repeats: u64) -> Vec<BenchLine> {
    let mut lines = Vec::new();
    for compacted in [false, true] {
        let tag = if compacted { "snapshot" } else { "wal" };
        let dir = temp_dir(&format!("recover-{tag}-{n_ops}"));
        {
            let mut engine =
                StorageEngine::open(&dir, StorageOptions::with_fsync(FsyncPolicy::Never))
                    .expect("open engine");
            for i in 0..n_ops {
                engine.apply(&sample_put(i)).expect("apply");
            }
            if compacted {
                engine.compact().expect("compact");
            }
            engine.sync().expect("sync");
        }
        let line = measure(format!("recover_{tag}_{n_ops}_ops"), repeats, 1, || {
            let (replicas, _) = StorageEngine::recover(&dir).expect("recover");
            std::hint::black_box(replicas.len());
        });
        lines.push(line);
        let _ = std::fs::remove_dir_all(&dir);
    }
    lines
}

fn to_json(mode: &str, lines: &[BenchLine]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rdht-bench-storage/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"benches\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 == lines.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_op\": {:.2}}}{comma}\n",
            line.name, line.iters, line.ns_per_op
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_storage.json".to_string());

    let insert_calls = if quick { 3 } else { 20 };
    // fsync=Always pays a real disk round-trip per op; keep its op count low
    // enough for CI while still averaging over hundreds of syncs.
    let always_calls = if quick { 1 } else { 4 };
    let mut lines = vec![
        bench_ums_insert("inmem", None, insert_calls),
        bench_ums_insert("wal_fsync_never", Some(FsyncPolicy::Never), insert_calls),
        bench_ums_insert(
            "wal_fsync_every64",
            Some(FsyncPolicy::EveryN(64)),
            insert_calls,
        ),
        bench_ums_insert("wal_fsync_always", Some(FsyncPolicy::Always), always_calls),
    ];
    let recovery_sizes: &[u64] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let recovery_repeats = if quick { 2 } else { 5 };
    for &n_ops in recovery_sizes {
        lines.extend(bench_recovery(n_ops, recovery_repeats));
    }

    let mode = if quick { "quick" } else { "full" };
    for line in &lines {
        println!(
            "{:<32} {:>14.2} ns/op  ({} ops)",
            line.name, line.ns_per_op, line.iters
        );
    }
    let json = to_json(mode, &lines);
    if let Err(error) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {error}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
