//! Storage benchmark harness: quantifies the durability tax, the
//! group-commit amortization and the recovery cost of `rdht-storage`, and
//! emits a machine-readable `BENCH_storage.json` alongside
//! `BENCH_hotpath.json`.
//!
//! Measured:
//!
//! * `ums_insert` against an in-memory DHT vs the same DHT journaling to a
//!   write-ahead log under each [`FsyncPolicy`] — the per-operation price of
//!   durability;
//! * `ums_insert` under **group commit**, swept over the number of
//!   concurrent writers: `w` logical writers each have one insert pending
//!   per commit round, the round's ops are journaled with deferred syncs and
//!   made durable by a *single* covering fsync before any of the round's
//!   inserts is acknowledged (`ums_insert_group_commit_w{w}`) — full
//!   `Always`-grade ack-after-fsync semantics at a fraction of the fsyncs;
//! * the same comparison end to end through the threaded deployment
//!   (`cluster_insert_{always,group_commit}_w{w}`): real writer threads and
//!   real mailboxes against a single storage-backed peer running the
//!   drain-apply-sync-reply request loop — plus a
//!   `cluster_insert_group_commit_nometrics_w8` control with the per-peer
//!   instruments off (`ClusterConfig::with_metrics(false)`), bounding the
//!   observability tax;
//! * recovery time (`StorageEngine::recover`) as a function of WAL length,
//!   and for the same state compacted into a snapshot — why compaction
//!   exists.
//!
//! ```text
//! cargo run --release -p rdht-bench --bin storage                 # full
//! cargo run --release -p rdht-bench --bin storage -- --quick      # CI mode
//! cargo run --release -p rdht-bench --bin storage -- --out out.json
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rdht_bench::workload::bench_keys;
use rdht_bench::BenchMeta;
use rdht_core::{ums, InMemoryDht, Timestamp};
use rdht_hashing::{HashId, Key};
use rdht_metrics::Histogram;
use rdht_net::{
    Cluster, ClusterConfig, ClusterStorage, FaultPlan, RetryPolicy, TraceConfig, TraceSink,
    TransportKind,
};
use rdht_storage::{FsyncPolicy, StorageEngine, StorageOp, StorageOptions};

/// One measured benchmark: mean wall-clock nanoseconds per operation, plus
/// per-op p50/p99 estimated from the per-call (or, for the cluster rows,
/// per-insert) latency distribution.
struct BenchLine {
    name: String,
    iters: u64,
    ns_per_op: f64,
    p50_ns: f64,
    p99_ns: f64,
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdht-bench-storage-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Times `calls` invocations of `routine` (performing `batch` ops each)
/// after one untimed warm-up call.
fn measure(
    name: impl Into<String>,
    calls: u64,
    batch: u64,
    mut routine: impl FnMut(),
) -> BenchLine {
    routine();
    let latency = Histogram::new();
    let start = Instant::now();
    for _ in 0..calls {
        let call_start = Instant::now();
        routine();
        latency.observe(u64::try_from(call_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let elapsed = start.elapsed();
    let ops = calls * batch;
    let per_op = |q: f64| latency.quantile(q).unwrap_or(0.0) / batch as f64;
    BenchLine {
        name: name.into(),
        iters: ops,
        ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
        p50_ns: per_op(0.5),
        p99_ns: per_op(0.99),
    }
}

/// `ums::insert` throughput against a DHT journaling with the given policy
/// (or not journaling at all when `policy` is `None`).
fn bench_ums_insert(label: &str, policy: Option<FsyncPolicy>, calls: u64) -> BenchLine {
    let keys = bench_keys(32);
    let name = format!("ums_insert_{label}");
    match policy {
        None => {
            let mut dht = InMemoryDht::new(10, 7);
            measure(name, calls, keys.len() as u64, || {
                for key in &keys {
                    ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
                }
            })
        }
        Some(policy) => {
            let dir = temp_dir(label);
            let mut options = StorageOptions::with_fsync(policy);
            // Keep compaction out of this measurement; it is timed separately.
            options.snapshot_every = 0;
            let engine = StorageEngine::open(&dir, options).expect("open engine");
            let mut dht = InMemoryDht::with_durability(10, 7, engine);
            let line = measure(name, calls, keys.len() as u64, || {
                for key in &keys {
                    ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
                }
            });
            assert!(
                !dht.durability_mut().is_poisoned(),
                "journal must stay healthy during the bench"
            );
            drop(dht);
            let _ = std::fs::remove_dir_all(&dir);
            line
        }
    }
}

/// `ums::insert` throughput under group commit at `writers` concurrent
/// writers: each commit round journals one pending insert per writer with
/// deferred syncs, then a single covering fsync makes the whole round
/// durable before any insert in it is acknowledged — the leader/follower
/// write-group model at the engine level.
fn bench_ums_insert_group_commit(writers: usize, calls: u64) -> BenchLine {
    let keys = bench_keys(64);
    let name = format!("ums_insert_group_commit_w{writers}");
    let dir = temp_dir(&format!("group-w{writers}"));
    let mut options = StorageOptions::with_fsync(FsyncPolicy::group_commit(
        1 << 20,
        Duration::from_micros(100),
    ));
    options.snapshot_every = 0;
    let engine = StorageEngine::open(&dir, options).expect("open engine");
    let mut dht = InMemoryDht::with_durability(10, 7, engine);
    let line = measure(name, calls, keys.len() as u64, || {
        for round in keys.chunks(writers) {
            for key in round {
                ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
            }
            // The batch boundary: one fsync covers every op of the round;
            // only now are the round's inserts acknowledged.
            dht.durability_mut().sync().expect("covering sync");
        }
    });
    let stats = dht.durability_mut().stats();
    assert!(
        !dht.durability_mut().is_poisoned(),
        "journal must stay healthy during the bench"
    );
    assert!(
        stats.wal_syncs <= stats.ops_appended / writers as u64 + 1,
        "group commit must amortize syncs over the round"
    );
    drop(dht);
    let _ = std::fs::remove_dir_all(&dir);
    line
}

/// End-to-end `ums::insert` through the threaded cluster: `writers` real
/// writer threads with their own clients against a storage-backed peer.
/// The deployment is deliberately a single-peer ring — it concentrates all
/// write concurrency at one WAL, which is exactly the unit the
/// drain-apply-sync-reply request loop batches over; more peers would just
/// dilute the per-peer queue depth without changing what is measured. Under
/// `FsyncPolicy::GroupCommit` the peer drains every queued request, applies
/// and journals them, issues **one** covering fsync and then sends all the
/// replies; under `Always` every journaled op pays its own. (Note these
/// numbers also carry the full message-passing cost — thread wake-ups bound
/// them long before the fsync amortization runs out, especially on
/// few-core CI boxes.)
fn bench_cluster_insert(
    label: &str,
    policy: FsyncPolicy,
    writers: usize,
    inserts_per_writer: usize,
    transport: TransportKind,
    metrics: bool,
) -> BenchLine {
    let dir = temp_dir(&format!("cluster-{label}-w{writers}"));
    let mut options = StorageOptions::with_fsync(policy);
    options.snapshot_every = 0;
    let config = ClusterConfig::new(1, 8, 0xc0ffee)
        .with_storage(ClusterStorage::with_options(&dir, options))
        .with_transport(transport)
        .with_metrics(metrics);
    let cluster = Arc::new(Cluster::spawn_with(config));
    {
        // Warm-up outside the clock (thread spin-up, first-touch paths).
        let mut client = cluster.client();
        ums::insert(&mut client, &Key::new("warm-up"), vec![0u8; 32]).expect("warm-up");
    }
    let ops = (writers * inserts_per_writer) as u64;
    // Per-insert latencies land in one shared histogram (a handle over
    // atomics — cloning shares the buckets), so the row's p50/p99 are true
    // per-op tails across every writer, not per-thread means.
    let latency = Histogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let cluster = Arc::clone(&cluster);
            let latency = latency.clone();
            scope.spawn(move || {
                let mut client = cluster.client();
                for i in 0..inserts_per_writer {
                    let key = Key::new(format!("w{w}-k{i}"));
                    let insert_start = Instant::now();
                    ums::insert(&mut client, &key, vec![1u8; 32]).expect("insert");
                    latency.observe(
                        u64::try_from(insert_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
            });
        }
    });
    let elapsed = start.elapsed();
    if let Ok(cluster) = Arc::try_unwrap(cluster) {
        cluster.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
    BenchLine {
        name: format!("cluster_insert_{label}_w{writers}"),
        iters: ops,
        ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
        p50_ns: latency.quantile(0.5).unwrap_or(0.0),
        p99_ns: latency.quantile(0.99).unwrap_or(0.0),
    }
}

/// End-to-end `ums::insert` on a *lossy* network: a seeded
/// [`FaultPlan`] drops `percent`% of frames on every directed link (requests
/// and replies alike) and the aggressive retry policy wins them back. No
/// storage is attached — the row isolates the **retry tax**: the p0 row is
/// the same deployment with no faults, so the delta is what timeouts,
/// backoff and re-sends cost per operation at that loss rate.
fn bench_cluster_insert_lossy(
    percent: u32,
    writers: usize,
    inserts_per_writer: usize,
) -> BenchLine {
    let mut config = ClusterConfig::new(4, 4, 0xfa17).with_transport(TransportKind::Channel);
    if percent > 0 {
        let p = f64::from(percent) / 100.0;
        config = config.with_faults(FaultPlan::lossy(0xbeef + u64::from(percent), p));
    }
    let cluster = Arc::new(Cluster::spawn_with(config));
    {
        let mut client = cluster
            .client()
            .with_retry_policy(RetryPolicy::aggressive());
        ums::insert(&mut client, &Key::new("warm-up"), vec![0u8; 32]).expect("warm-up");
    }
    let ops = (writers * inserts_per_writer) as u64;
    let latency = Histogram::new();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..writers {
            let cluster = Arc::clone(&cluster);
            let latency = latency.clone();
            scope.spawn(move || {
                let mut client = cluster
                    .client()
                    .with_retry_policy(RetryPolicy::aggressive());
                for i in 0..inserts_per_writer {
                    let key = Key::new(format!("lossy-w{w}-k{i}"));
                    let insert_start = Instant::now();
                    ums::insert(&mut client, &key, vec![1u8; 32]).expect("insert");
                    latency.observe(
                        u64::try_from(insert_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
            });
        }
    });
    let elapsed = start.elapsed();
    if let Ok(cluster) = Arc::try_unwrap(cluster) {
        cluster.shutdown();
    }
    BenchLine {
        name: format!("cluster_insert_lossy_p{percent}"),
        iters: ops,
        ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
        p50_ns: latency.quantile(0.5).unwrap_or(0.0),
        p99_ns: latency.quantile(0.99).unwrap_or(0.0),
    }
}

/// A traced rerun of the cluster-insert deployment: every insert is
/// sampled, the peer's slow-request ring attributes each request's wall
/// time to its phases (queue-wait, apply, batch-wait, fsync, reply), and
/// the report says where the tail actually goes — e.g.
/// `p99 = 3.1 ms: 78% queue_wait, 14% fsync`. Run outside the timed sweep:
/// sampling at rate 1.0 is exactly the overhead the sweep must not carry.
fn slowlog_report(writers: usize, inserts_per_writer: usize) -> Option<String> {
    let dir = temp_dir(&format!("slowlog-w{writers}"));
    let mut options = StorageOptions::with_fsync(FsyncPolicy::group_commit(64, Duration::ZERO));
    options.snapshot_every = 0;
    let config = ClusterConfig::new(1, 8, 0x510e)
        .with_storage(ClusterStorage::with_options(&dir, options))
        .with_transport(TransportKind::Channel);
    let cluster = Arc::new(Cluster::spawn_with(config));
    std::thread::scope(|scope| {
        for w in 0..writers {
            let cluster = Arc::clone(&cluster);
            scope.spawn(move || {
                let mut client = cluster.client();
                client.attach_trace(TraceSink::new(), TraceConfig::always());
                for i in 0..inserts_per_writer {
                    let key = Key::new(format!("slow-w{w}-k{i}"));
                    ums::insert(&mut client, &key, vec![1u8; 32]).expect("insert");
                }
            });
        }
    });
    let peer = cluster.peer_ids()[0];
    let mut scraper = cluster.client();
    let mut trees = scraper.slow_requests(peer, 128).expect("slowlog scrape");
    if let Ok(cluster) = Arc::try_unwrap(cluster) {
        cluster.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);

    trees.sort_by_key(|tree| std::cmp::Reverse(tree.total_us));
    // The ~p99 entry: 1% of the recorded population sits above it.
    let tree = trees.get(trees.len() / 100)?;
    let total = tree.total_us.max(1);
    let mut phases: Vec<(&str, u64)> = tree
        .phases
        .iter()
        .map(|(name, us)| (name.as_str(), us * 100 / total))
        .collect();
    phases.sort_by_key(|&(_, pct)| std::cmp::Reverse(pct));
    let breakdown = phases
        .iter()
        .filter(|&&(_, pct)| pct > 0)
        .map(|(name, pct)| format!("{pct}% {name}"))
        .collect::<Vec<_>>()
        .join(", ");
    Some(format!(
        "slowlog cluster_insert_group_commit_w{writers} ({}): p99 = {:.1} ms: {breakdown}",
        tree.name,
        tree.total_us as f64 / 1_000.0,
    ))
}

fn sample_put(i: u64) -> StorageOp {
    // A heavily-overwriting workload (1010 distinct records regardless of
    // log length): this is the case compaction exists for — the WAL grows
    // with the op count, the snapshot stays the size of the live state.
    StorageOp::PutReplica {
        hash: HashId((i % 10) as u32),
        key: Key::new(format!("data-{}", i % 101)),
        payload: vec![0u8; 32],
        stamp: Timestamp(i + 1),
        position: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    }
}

/// Recovery wall-clock vs log length: replaying `n_ops` from a pure WAL,
/// and recovering the same state after compaction into a snapshot.
fn bench_recovery(n_ops: u64, repeats: u64) -> Vec<BenchLine> {
    let mut lines = Vec::new();
    for compacted in [false, true] {
        let tag = if compacted { "snapshot" } else { "wal" };
        let dir = temp_dir(&format!("recover-{tag}-{n_ops}"));
        {
            // Automatic compaction off: the `wal` leg must actually replay
            // `n_ops` from the log (with the default snapshot cadence a
            // "10k-op WAL" would silently be a snapshot plus a short tail),
            // and the `snapshot` leg compacts explicitly below.
            let mut options = StorageOptions::with_fsync(FsyncPolicy::Never);
            options.snapshot_every = 0;
            let mut engine = StorageEngine::open(&dir, options).expect("open engine");
            for i in 0..n_ops {
                engine.apply(&sample_put(i)).expect("apply");
            }
            if compacted {
                engine.compact().expect("compact");
            }
            engine.sync().expect("sync");
        }
        let line = measure(format!("recover_{tag}_{n_ops}_ops"), repeats, 1, || {
            let (replicas, _) = StorageEngine::recover(&dir).expect("recover");
            std::hint::black_box(replicas.len());
        });
        lines.push(line);
        let _ = std::fs::remove_dir_all(&dir);
    }
    lines
}

fn to_json(mode: &str, lines: &[BenchLine]) -> String {
    let meta = BenchMeta::new("rdht-bench-storage/v2", mode)
        .with_fsync("swept per row (never/every64/always/group_commit)")
        .with_transport("swept per row (in-process/channel/tcp)");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&meta.header_json());
    out.push_str("  \"benches\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 == lines.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_op\": {:.2}, \
             \"p50_ns\": {:.2}, \"p99_ns\": {:.2}}}{comma}\n",
            line.name, line.iters, line.ns_per_op, line.p50_ns, line.p99_ns
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_storage.json".to_string());

    let insert_calls = if quick { 3 } else { 20 };
    // fsync=Always pays a real disk round-trip per op; keep its op count low
    // enough for CI while still averaging over hundreds of syncs.
    let always_calls = if quick { 1 } else { 4 };
    let group_calls = if quick { 2 } else { 8 };
    let mut lines = vec![
        bench_ums_insert("inmem", None, insert_calls),
        bench_ums_insert("wal_fsync_never", Some(FsyncPolicy::Never), insert_calls),
        bench_ums_insert(
            "wal_fsync_every64",
            Some(FsyncPolicy::EveryN(64)),
            insert_calls,
        ),
        bench_ums_insert("wal_fsync_always", Some(FsyncPolicy::Always), always_calls),
    ];
    // The group-commit sweep: concurrent-writer counts per commit round.
    for writers in [1usize, 8, 16, 64] {
        lines.push(bench_ums_insert_group_commit(writers, group_calls));
    }
    // End to end through the threaded cluster: per-op Always vs the
    // drain-apply-sync-reply loop, at 1 and 8+ concurrent writer threads.
    let cluster_inserts = if quick { 4 } else { 16 };
    for writers in [1usize, 8, 16, 32, 64] {
        lines.push(bench_cluster_insert(
            "always",
            FsyncPolicy::Always,
            writers,
            cluster_inserts,
            TransportKind::Channel,
            true,
        ));
        // Clients here are closed-loop (each writer has one request in
        // flight), so every op that can join a batch is already queued when
        // the leader drains — a straggler window (`max_delay > 0`) would
        // only add timer latency. Batch size is bounded by the per-peer
        // write concurrency, which is what the writer sweep varies.
        lines.push(bench_cluster_insert(
            "group_commit",
            FsyncPolicy::group_commit(64, Duration::ZERO),
            writers,
            cluster_inserts,
            TransportKind::Channel,
            true,
        ));
    }
    // The observability tax: the same 8-writer group-commit deployment with
    // per-peer metrics disabled (`ClusterConfig::with_metrics(false)`). The
    // delta against `cluster_insert_group_commit_w8` is what the request
    // counters, queue-depth gauge and service-time histogram cost per
    // insert end to end — the budget is < 2%.
    lines.push(bench_cluster_insert(
        "group_commit_nometrics",
        FsyncPolicy::group_commit(64, Duration::ZERO),
        8,
        cluster_inserts,
        TransportKind::Channel,
        false,
    ));
    // The same end-to-end path over the TCP transport: every insert's
    // messages cross the wire codec and loopback sockets, so the rows
    // quantify the framing + socket tax relative to the channel rows.
    for writers in [1usize, 8, 16] {
        lines.push(bench_cluster_insert(
            "tcp_always",
            FsyncPolicy::Always,
            writers,
            cluster_inserts,
            TransportKind::Tcp,
            true,
        ));
        lines.push(bench_cluster_insert(
            "tcp_group_commit",
            FsyncPolicy::group_commit(64, Duration::ZERO),
            writers,
            cluster_inserts,
            TransportKind::Tcp,
            true,
        ));
    }
    // The retry tax: the same 8-writer insert workload with 0%, 1% and 5%
    // of frames dropped on every link (p0 is the faultless baseline).
    for percent in [0u32, 1, 5] {
        lines.push(bench_cluster_insert_lossy(percent, 8, cluster_inserts));
    }
    let recovery_sizes: &[u64] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let recovery_repeats = if quick { 2 } else { 5 };
    for &n_ops in recovery_sizes {
        lines.extend(bench_recovery(n_ops, recovery_repeats));
    }

    // Where does the insert tail go? A traced rerun of the 8-writer
    // group-commit deployment, reported from the peer's slow-request ring.
    let slowlog = slowlog_report(8, cluster_inserts * 4);

    let mode = if quick { "quick" } else { "full" };
    for line in &lines {
        println!(
            "{:<32} {:>14.2} ns/op  p50 {:>12.2}  p99 {:>12.2}  ({} ops)",
            line.name, line.ns_per_op, line.p50_ns, line.p99_ns, line.iters
        );
    }
    if let Some(report) = &slowlog {
        println!("{report}");
    }
    let json = to_json(mode, &lines);
    if let Err(error) = std::fs::write(&out_path, &json) {
        rdht_metrics::log::global().error(
            "bench.storage",
            "cannot write output file",
            &[("path", &out_path), ("error", &error.to_string())],
        );
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
