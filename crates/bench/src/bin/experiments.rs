//! Command-line experiment runner: regenerates the paper's tables and
//! figures.
//!
//! ```text
//! cargo run --release -p rdht-bench --bin experiments -- all
//! cargo run --release -p rdht-bench --bin experiments -- fig7 fig8 --paper
//! cargo run --release -p rdht-bench --bin experiments -- table1
//! ```
//!
//! Without `--paper`, experiments run at quick scale (small populations,
//! short durations) so the whole suite finishes in well under a minute; with
//! `--paper` the sweeps use the paper's population sizes (up to 10,000
//! peers). Pass `--csv <dir>` to additionally write one CSV file per
//! experiment.

use std::collections::BTreeSet;
use std::path::PathBuf;

use rdht_bench::{experiments, ExperimentResult, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let scale = Scale::from_flag(paper);

    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let mut requested: BTreeSet<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            csv_dir
                .as_ref()
                .map(|dir| dir.as_os_str() != a.as_str())
                .unwrap_or(true)
        })
        .map(|a| a.to_lowercase())
        .collect();
    if requested.is_empty() {
        requested.insert("all".to_string());
    }

    let run_all = requested.contains("all");
    let wants = |name: &str| run_all || requested.contains(name);

    println!("# Experiment run ({:?} scale)\n", scale);

    if wants("table1") {
        println!("{}", experiments::table1());
    }

    let mut results: Vec<ExperimentResult> = Vec::new();
    if wants("fig6") {
        results.push(experiments::fig6(scale));
    }
    if wants("fig7") || wants("fig8") {
        let (fig7, fig8) = experiments::fig7_fig8(scale);
        if wants("fig7") {
            results.push(fig7);
        }
        if wants("fig8") {
            results.push(fig8);
        }
    }
    if wants("fig9") || wants("fig10") {
        let (fig9, fig10) = experiments::fig9_fig10(scale);
        if wants("fig9") {
            results.push(fig9);
        }
        if wants("fig10") {
            results.push(fig10);
        }
    }
    if wants("fig11") {
        results.push(experiments::fig11(scale));
    }
    if wants("fig12") {
        results.push(experiments::fig12(scale));
    }
    if wants("theorem1") {
        results.push(experiments::theorem1(scale));
    }

    for result in &results {
        println!("{}", result.to_markdown());
    }

    if let Some(dir) = csv_dir {
        if let Err(error) = std::fs::create_dir_all(&dir) {
            rdht_metrics::log::global().error(
                "bench.experiments",
                "cannot create csv directory",
                &[
                    ("path", &dir.display().to_string()),
                    ("error", &error.to_string()),
                ],
            );
            std::process::exit(1);
        }
        for result in &results {
            let path = dir.join(format!("{}.csv", result.id));
            if let Err(error) = std::fs::write(&path, result.to_csv()) {
                rdht_metrics::log::global().error(
                    "bench.experiments",
                    "cannot write csv file",
                    &[
                        ("path", &path.display().to_string()),
                        ("error", &error.to_string()),
                    ],
                );
                std::process::exit(1);
            }
            println!("wrote {}", path.display());
        }
    }
}
