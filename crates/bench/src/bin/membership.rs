//! Membership benchmark harness: measures what the elastic ring costs and
//! what the direct algorithm saves, and emits `BENCH_membership.json`
//! alongside the hotpath and storage artifacts.
//!
//! Measured:
//!
//! * **join/leave latency vs keys held** — wall-clock of
//!   `Cluster::join_peer` / `Cluster::leave_peer` on a storage-backed
//!   threaded cluster as the number of stored keys grows (the hand-off
//!   ships more replicas);
//! * **direct vs crash recovery cost, threaded** — indirect counter
//!   initializations a fresh client observes after a graceful leave (zero
//!   by construction) vs after a crash of the same peer;
//! * **direct vs crash recovery cost, simulated** — the same comparison at
//!   population scale in `rdht-sim`, via the uncompensated
//!   `GracefulLeave`/`Crash` churn events.
//!
//! ```text
//! cargo run --release -p rdht-bench --bin membership                # full
//! cargo run --release -p rdht-bench --bin membership -- --quick    # CI mode
//! cargo run --release -p rdht-bench --bin membership -- --out out.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use rdht_core::ums;
use rdht_hashing::Key;
use rdht_metrics::Histogram;
use rdht_net::{Cluster, ClusterConfig, ClusterStorage, PeerId};
use rdht_sim::{Algorithm, SimConfig, Simulation};
use rdht_storage::{FsyncPolicy, StorageOptions};

/// One point of the join/leave latency sweep.
struct MembershipPoint {
    keys_held: usize,
    join_ms: f64,
    leave_ms: f64,
    /// Median / p99 latency of the point's preload inserts, microseconds —
    /// the write-path tail while the ring is stable, the baseline the
    /// join/leave disruption is judged against.
    insert_p50_us: f64,
    insert_p99_us: f64,
    replicas_moved_join: usize,
    replicas_moved_leave: usize,
    counters_moved_leave: usize,
}

/// The threaded direct-vs-crash comparison.
struct RecoveryComparison {
    graceful_indirect_inits: u64,
    crash_indirect_inits: u64,
}

/// The simulated direct-vs-crash comparison.
struct SimComparison {
    graceful_leaves: u64,
    crashes: u64,
    graceful_indirect_inits: u64,
    crash_indirect_inits: u64,
    counters_transferred: u64,
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rdht-bench-membership-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn unused_peer_id(cluster: &Cluster, seed: u64) -> PeerId {
    let mut candidate = seed;
    while cluster.peer_ids().contains(&PeerId(candidate)) {
        candidate = candidate.wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    PeerId(candidate)
}

/// Spawns a storage-backed cluster pre-loaded with `keys_held` keys, then
/// times one join and one graceful leave (of the freshly joined peer, which
/// now holds part of the load).
fn bench_membership_point(keys_held: usize, seed: u64) -> MembershipPoint {
    let root = temp_root(&format!("latency-{keys_held}"));
    let mut options = StorageOptions::with_fsync(FsyncPolicy::Never);
    options.snapshot_every = 0; // keep compaction out of the measurement
    let config =
        ClusterConfig::new(8, 10, seed).with_storage(ClusterStorage::with_options(&root, options));
    let mut cluster = Cluster::spawn_with(config);
    let mut client = cluster.client();
    let insert_latency = Histogram::new();
    for i in 0..keys_held {
        let key = Key::new(format!("data-{i}"));
        let start = Instant::now();
        ums::insert(&mut client, &key, vec![7u8; 32]).expect("insert");
        insert_latency.observe(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    let joiner = unused_peer_id(&cluster, 0x00c0_ffee_0000_0001 ^ seed);
    let start = Instant::now();
    let join = cluster.join_peer(joiner).expect("join");
    let join_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let leave = cluster.leave_peer(joiner).expect("leave");
    let leave_ms = start.elapsed().as_secs_f64() * 1e3;

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    MembershipPoint {
        keys_held,
        join_ms,
        leave_ms,
        insert_p50_us: insert_latency.quantile(0.5).unwrap_or(0.0) / 1_000.0,
        insert_p99_us: insert_latency.quantile(0.99).unwrap_or(0.0) / 1_000.0,
        replicas_moved_join: join.replicas_moved,
        replicas_moved_leave: leave.replicas_moved,
        counters_moved_leave: leave.counters_moved,
    }
}

/// Same cluster shape twice: the timestamp responsible of half the keys
/// leaves gracefully in one universe and crashes in the other; a fresh
/// client then retrieves everything and counts the indirect
/// initializations it had to run.
fn bench_recovery_comparison(keys_held: usize, seed: u64) -> RecoveryComparison {
    let keys: Vec<Key> = (0..keys_held)
        .map(|i| Key::new(format!("data-{i}")))
        .collect();
    let run = |graceful: bool| -> u64 {
        let mut cluster = Cluster::spawn_with(ClusterConfig::new(8, 10, seed));
        let mut client = cluster.client();
        for key in &keys {
            ums::insert(&mut client, key, vec![3u8; 32]).expect("insert");
        }
        let victim = cluster
            .timestamp_responsible(&keys[0])
            .expect("cluster is non-empty");
        if graceful {
            cluster.leave_peer(victim).expect("leave");
        } else {
            cluster.crash_peer(victim).expect("crash");
        }
        let mut fresh = cluster.client();
        for key in &keys {
            let _ = ums::retrieve(&mut fresh, key).expect("retrieve");
        }
        let inits = fresh.indirect_initializations();
        cluster.shutdown();
        inits
    };
    RecoveryComparison {
        graceful_indirect_inits: run(true),
        crash_indirect_inits: run(false),
    }
}

/// The population-scale comparison in simulated time: identical workloads,
/// one churned by graceful leaves, one by crashes, at the same rate.
fn bench_sim_comparison(peers: usize, seed: u64) -> SimComparison {
    let base = |seed: u64| {
        let mut config = SimConfig::small_test(peers, seed);
        config.churn_rate_per_second = 0.0;
        config.update_rate_per_hour = 60.0;
        config.queries = 20;
        config
    };
    let rate = peers as f64 / 200.0;

    let mut graceful = Simulation::new(base(seed).with_graceful_leave_rate(rate));
    let graceful_report = graceful.run();
    let graceful_stats = graceful
        .total_kts_stats(Algorithm::UmsDirect)
        .expect("UMS universe");

    let mut crashed = Simulation::new(base(seed).with_crash_rate(rate));
    let crashed_report = crashed.run();
    let crashed_stats = crashed
        .total_kts_stats(Algorithm::UmsDirect)
        .expect("UMS universe");

    SimComparison {
        graceful_leaves: graceful_report.stats.leaves,
        crashes: crashed_report.stats.failures,
        graceful_indirect_inits: graceful_stats.indirect_initializations,
        crash_indirect_inits: crashed_stats.indirect_initializations,
        counters_transferred: graceful_stats.counters_received_directly,
    }
}

fn to_json(
    mode: &str,
    points: &[MembershipPoint],
    recovery: &RecoveryComparison,
    sim: &SimComparison,
) -> String {
    let meta = rdht_bench::BenchMeta::new("rdht-bench-membership/v2", mode)
        .with_fsync("never")
        .with_transport("channel");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&meta.header_json());
    out.push_str("  \"join_leave_latency\": [\n");
    for (i, point) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"keys_held\": {}, \"join_ms\": {:.3}, \"leave_ms\": {:.3}, \
             \"insert_p50_us\": {:.2}, \"insert_p99_us\": {:.2}, \
             \"replicas_moved_join\": {}, \"replicas_moved_leave\": {}, \
             \"counters_moved_leave\": {}}}{comma}\n",
            point.keys_held,
            point.join_ms,
            point.leave_ms,
            point.insert_p50_us,
            point.insert_p99_us,
            point.replicas_moved_join,
            point.replicas_moved_leave,
            point.counters_moved_leave
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"cluster_recovery\": {{\"graceful_indirect_inits\": {}, \
         \"crash_indirect_inits\": {}}},\n",
        recovery.graceful_indirect_inits, recovery.crash_indirect_inits
    ));
    out.push_str(&format!(
        "  \"sim_recovery\": {{\"graceful_leaves\": {}, \"crashes\": {}, \
         \"graceful_indirect_inits\": {}, \"crash_indirect_inits\": {}, \
         \"counters_transferred_directly\": {}}}\n",
        sim.graceful_leaves,
        sim.crashes,
        sim.graceful_indirect_inits,
        sim.crash_indirect_inits,
        sim.counters_transferred
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_membership.json".to_string());

    let key_sweep: &[usize] = if quick { &[50, 200] } else { &[100, 500, 2000] };
    let points: Vec<MembershipPoint> = key_sweep
        .iter()
        .map(|&keys| bench_membership_point(keys, 0x51a7 + keys as u64))
        .collect();
    let recovery = bench_recovery_comparison(if quick { 32 } else { 64 }, 0xbeef);
    let sim = bench_sim_comparison(if quick { 24 } else { 48 }, 0xfeed);

    for point in &points {
        println!(
            "join  {:>6} keys: {:>10.3} ms  ({} replicas moved)",
            point.keys_held, point.join_ms, point.replicas_moved_join
        );
        println!(
            "leave {:>6} keys: {:>10.3} ms  ({} replicas, {} counters moved)",
            point.keys_held, point.leave_ms, point.replicas_moved_leave, point.counters_moved_leave
        );
        println!(
            "      {:>6} keys: insert p50 {:.2} µs, p99 {:.2} µs (stable ring)",
            point.keys_held, point.insert_p50_us, point.insert_p99_us
        );
    }
    println!(
        "cluster recovery: graceful {} vs crash {} indirect inits",
        recovery.graceful_indirect_inits, recovery.crash_indirect_inits
    );
    println!(
        "sim recovery:     graceful {} vs crash {} indirect inits ({} counters direct)",
        sim.graceful_indirect_inits, sim.crash_indirect_inits, sim.counters_transferred
    );

    let mode = if quick { "quick" } else { "full" };
    let json = to_json(mode, &points, &recovery, &sim);
    if let Err(error) = std::fs::write(&out_path, &json) {
        rdht_metrics::log::global().error(
            "bench.membership",
            "cannot write output file",
            &[("path", &out_path), ("error", &error.to_string())],
        );
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
