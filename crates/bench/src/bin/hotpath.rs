//! Hot-path benchmark harness: times the per-operation building blocks the
//! simulator leans on (key digests, hash-family evaluation, `PeerStore`
//! put/get/drain, end-to-end UMS insert/retrieve, the `rdht-metrics`
//! counter/histogram instruments the request loops pay) plus one quick-scale
//! `Simulation::run`, and emits a machine-readable `BENCH_hotpath.json` so
//! the perf trajectory can be tracked across PRs.
//!
//! ```text
//! cargo run --release -p rdht-bench --bin hotpath                  # full
//! cargo run --release -p rdht-bench --bin hotpath -- --quick       # CI mode
//! cargo run --release -p rdht-bench --bin hotpath -- --out out.json
//! ```

use std::time::Instant;

use rdht_bench::workload::{bench_keys, filled_store};
use rdht_bench::{experiments, BenchMeta, Scale};
use rdht_core::{ums, InMemoryDht};
use rdht_hashing::HashFamily;
use rdht_metrics::{Counter, Histogram};
use rdht_overlay::WritePolicy;
use rdht_sim::Simulation;

/// One measured benchmark: mean wall-clock nanoseconds per operation, plus
/// the per-op p50/p99 estimated from the per-call latency distribution.
struct BenchLine {
    name: &'static str,
    iters: u64,
    ns_per_op: f64,
    p50_ns: f64,
    p99_ns: f64,
}

/// Times `op_count` operations produced by repeatedly calling `routine`
/// (which must perform `batch` operations per call). Each call's wall time
/// feeds a histogram, so the line carries tail quantiles alongside the
/// mean — a bench that is fast on average but occasionally stalls (an
/// allocation spike, a page fault storm) shows up in its p99 row.
fn measure<F: FnMut()>(name: &'static str, calls: u64, batch: u64, mut routine: F) -> BenchLine {
    // One untimed warm-up call to touch caches and page in the data.
    routine();
    let latency = Histogram::new();
    let start = Instant::now();
    for _ in 0..calls {
        let call_start = Instant::now();
        routine();
        latency.observe(u64::try_from(call_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let elapsed = start.elapsed();
    let ops = calls * batch;
    let per_op = |q: f64| latency.quantile(q).unwrap_or(0.0) / batch as f64;
    BenchLine {
        name,
        iters: ops,
        ns_per_op: elapsed.as_nanos() as f64 / ops as f64,
        p50_ns: per_op(0.5),
        p99_ns: per_op(0.99),
    }
}

fn bench_key_digest(calls: u64) -> BenchLine {
    let keys = bench_keys(64);
    let mut acc = 0u64;
    let line = measure("key_digest", calls, keys.len() as u64, || {
        for key in &keys {
            acc = acc.wrapping_add(key.digest().0);
        }
    });
    std::hint::black_box(acc);
    line
}

fn bench_family_eval(calls: u64) -> BenchLine {
    let family = HashFamily::new(10, 7);
    let keys = bench_keys(64);
    let mut acc = 0u64;
    // One "op" is the full |Hr|+1 evaluation a UMS operation performs.
    let line = measure("family_eval_hr_plus_ts", calls, keys.len() as u64, || {
        for key in &keys {
            for h in family.replication_functions() {
                acc ^= h.eval(key);
            }
            acc ^= family.eval_timestamp(key);
        }
    });
    std::hint::black_box(acc);
    line
}

fn bench_store_put(calls: u64) -> BenchLine {
    let family = HashFamily::new(10, 7);
    let keys = bench_keys(256);
    let ops = (keys.len() * family.num_replication()) as u64;
    measure("store_put", calls, ops, || {
        let store = filled_store(&family, &keys);
        std::hint::black_box(store.len());
    })
}

fn bench_store_fill_bulk(calls: u64) -> BenchLine {
    let family = HashFamily::new(10, 7);
    let keys = bench_keys(256);
    let records = rdht_bench::workload::store_records(&family, &keys);
    let ops = records.len() as u64;
    measure("store_fill_bulk_load", calls, ops, || {
        let mut store = rdht_overlay::PeerStore::new();
        store.bulk_load(records.iter().cloned());
        std::hint::black_box(store.len());
    })
}

fn bench_store_get(calls: u64) -> BenchLine {
    let family = HashFamily::new(10, 7);
    let keys = bench_keys(256);
    let store = filled_store(&family, &keys);
    let ops = (keys.len() * family.num_replication()) as u64;
    let mut acc = 0u64;
    let line = measure("store_get", calls, ops, || {
        for key in &keys {
            for h in family.replication_ids() {
                if let Some(rec) = store.get(h, key) {
                    acc = acc.wrapping_add(rec.stamp);
                }
            }
        }
    });
    std::hint::black_box(acc);
    line
}

fn bench_store_max_stamp(calls: u64) -> BenchLine {
    let family = HashFamily::new(10, 7);
    let keys = bench_keys(256);
    let store = filled_store(&family, &keys);
    let mut acc = 0u64;
    let line = measure("store_max_stamp_for_key", calls, keys.len() as u64, || {
        for key in &keys {
            acc = acc.wrapping_add(store.max_stamp_for_key(key).unwrap_or(0));
        }
    });
    std::hint::black_box(acc);
    line
}

fn bench_store_drain(calls: u64) -> BenchLine {
    let family = HashFamily::new(10, 7);
    let keys = bench_keys(256);
    let mut store = filled_store(&family, &keys);
    // Drain one eighth of the ring and hand the records back, modelling the
    // join/leave transfer path (records move between two stores under churn).
    measure("store_drain_transfer", calls, 1, || {
        let moved = store.drain_range(0, u64::MAX / 8);
        let count = moved.len();
        for (hash, key, rec) in moved {
            store.put(hash, key, rec, WritePolicy::Overwrite);
        }
        std::hint::black_box(count);
    })
}

fn bench_store_drain_narrow(calls: u64) -> BenchLine {
    let family = HashFamily::new(10, 7);
    let keys = bench_keys(2048);
    let mut store = filled_store(&family, &keys);
    // The realistic churn shape: one join/leave moves a narrow slice of the
    // ring (~1/n of the identifier space), not an eighth of it.
    let mut start = 0u64;
    measure("store_drain_narrow", calls, 1, || {
        let moved = store.drain_range(start, start.wrapping_add(u64::MAX / 1024));
        let count = moved.len();
        for (hash, key, rec) in moved {
            store.put(hash, key, rec, WritePolicy::Overwrite);
        }
        start = start.wrapping_add(u64::MAX / 512);
        std::hint::black_box(count);
    })
}

fn bench_ums_insert(calls: u64) -> BenchLine {
    let keys = bench_keys(32);
    let mut dht = InMemoryDht::new(10, 7);
    measure("ums_insert", calls, keys.len() as u64, || {
        for key in &keys {
            ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
        }
    })
}

fn bench_ums_retrieve(calls: u64) -> BenchLine {
    let keys = bench_keys(32);
    let mut dht = InMemoryDht::new(10, 7);
    for key in &keys {
        ums::insert(&mut dht, key, vec![1u8; 32]).expect("insert");
    }
    let mut acc = 0usize;
    let line = measure("ums_retrieve", calls, keys.len() as u64, || {
        for key in &keys {
            let report = ums::retrieve(&mut dht, key).expect("retrieve");
            acc += report.replicas_probed;
        }
    });
    std::hint::black_box(acc);
    line
}

/// One `Counter::inc` — the instrument every request-loop hot path pays
/// per message when metrics are on; the row keeps its cost (one relaxed
/// atomic add) honest across PRs.
fn bench_counter_inc(calls: u64) -> BenchLine {
    const BATCH: u64 = 1024;
    let counter = Counter::new();
    let line = measure("counter_inc", calls, BATCH, || {
        for _ in 0..BATCH {
            counter.inc();
        }
    });
    std::hint::black_box(counter.get());
    line
}

/// One `Histogram::observe` with the default latency buckets — the
/// service-time instrument's per-request cost (a branchless bucket scan
/// plus three relaxed atomics).
fn bench_histogram_observe(calls: u64) -> BenchLine {
    const BATCH: u64 = 1024;
    let histogram = Histogram::new();
    // Values spanning the whole bucket range, so the scan depth averaged
    // over the batch is representative rather than best-case.
    let values: Vec<u64> = (0..BATCH).map(|i| 1u64 << (i % 32)).collect();
    let line = measure("histogram_observe", calls, BATCH, || {
        for &v in &values {
            histogram.observe(v);
        }
    });
    std::hint::black_box(histogram.snapshot().count);
    line
}

fn bench_sim_quick_run(runs: u32) -> BenchLine {
    // Best-of-N wall clock: a full simulation is long enough that scheduler
    // noise dominates the mean, while the minimum tracks the code.
    let mut best = u128::MAX;
    for _ in 0..runs {
        let config = experiments::base_config(Scale::Quick);
        let start = Instant::now();
        let report = Simulation::new(config).run();
        best = best.min(start.elapsed().as_nanos());
        std::hint::black_box(report.samples.len());
    }
    // One op = one full simulation run; the extra repetitions are a
    // measurement detail, not extra operations.
    BenchLine {
        name: "sim_quick_run",
        iters: 1,
        ns_per_op: best as f64,
        // A best-of-N single-shot measurement has no distribution to
        // estimate tails from; report the measured value for both.
        p50_ns: best as f64,
        p99_ns: best as f64,
    }
}

fn to_json(mode: &str, lines: &[BenchLine]) -> String {
    let meta = BenchMeta::new("rdht-bench-hotpath/v2", mode);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&meta.header_json());
    out.push_str("  \"benches\": [\n");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 == lines.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_op\": {:.2}, \
             \"p50_ns\": {:.2}, \"p99_ns\": {:.2}}}{comma}\n",
            line.name, line.iters, line.ns_per_op, line.p50_ns, line.p99_ns
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());

    // --quick divides the repetition counts so CI finishes in seconds; the
    // measured operations are identical.
    let scale = if quick { 1 } else { 10 };
    let mut lines = vec![
        bench_key_digest(2_000 * scale),
        bench_family_eval(500 * scale),
        bench_store_put(20 * scale),
        bench_store_fill_bulk(20 * scale),
        bench_store_get(100 * scale),
        bench_store_max_stamp(200 * scale),
        bench_store_drain(50 * scale),
        bench_store_drain_narrow(100 * scale),
        bench_ums_insert(50 * scale),
        bench_ums_retrieve(50 * scale),
        bench_counter_inc(200 * scale),
        bench_histogram_observe(200 * scale),
    ];
    lines.push(bench_sim_quick_run(if quick { 3 } else { 5 }));

    let mode = if quick { "quick" } else { "full" };
    for line in &lines {
        println!(
            "{:<28} {:>14.2} ns/op  p50 {:>12.2}  p99 {:>12.2}  ({} ops)",
            line.name, line.ns_per_op, line.p50_ns, line.p99_ns, line.iters
        );
    }
    let json = to_json(mode, &lines);
    if let Err(error) = std::fs::write(&out_path, &json) {
        rdht_metrics::log::global().error(
            "bench.hotpath",
            "cannot write output file",
            &[("path", &out_path), ("error", &error.to_string())],
        );
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
