//! One function per table/figure of the paper's evaluation.

use rdht_core::analysis;
use rdht_sim::{Algorithm, SimConfig, Simulation, SimulationReport};

use crate::result::{ExperimentResult, Series};
use crate::Scale;

/// Runs one simulation configuration to completion.
pub fn run_config(config: SimConfig) -> SimulationReport {
    Simulation::new(config).run()
}

/// Runs a whole sweep, one simulation per configuration, across worker
/// threads. Reports come back in input order and are bit-identical to a
/// sequential run (see [`crate::parallel::run_configs`]).
pub fn run_sweep(configs: Vec<SimConfig>) -> Vec<SimulationReport> {
    crate::parallel::run_configs(configs)
}

/// The base configuration for wide-area experiments at the given scale:
/// Table 1 for [`Scale::Paper`], a shrunk but otherwise identical setup for
/// [`Scale::Quick`].
pub fn base_config(scale: Scale) -> SimConfig {
    match scale {
        Scale::Paper => SimConfig::table1(),
        Scale::Quick => {
            let mut config = SimConfig::table1();
            config.num_peers = 600;
            config.num_keys = 24;
            config.duration = 1800.0;
            config.queries = 24;
            config.churn_rate_per_second = 600.0 / 10_000.0;
            config.update_rate_per_hour = 2.0;
            config
        }
    }
}

fn scale_note(scale: Scale) -> String {
    match scale {
        Scale::Paper => "paper scale (Table 1 population)".to_string(),
        Scale::Quick => {
            "quick scale (shrunk population/duration; trends, not absolute values)".to_string()
        }
    }
}

fn algorithm_series<F>(xs: &[f64], reports: &[SimulationReport], metric: F) -> Vec<Series>
where
    F: Fn(&SimulationReport, Algorithm) -> f64,
{
    Algorithm::ALL
        .iter()
        .map(|&algorithm| {
            let mut series = Series::new(algorithm.label());
            for (x, report) in xs.iter().zip(reports) {
                series.push(*x, metric(report, algorithm));
            }
            series
        })
        .collect()
}

/// Table 1 — the simulation parameters, rendered for the experiment log.
pub fn table1() -> String {
    let c = SimConfig::table1();
    let net = c.network.model();
    format!(
        "### Table 1 — simulation parameters\n\n\
         | Parameter | Value |\n|---|---|\n\
         | Bandwidth | normal, mean {} kbps, std {} |\n\
         | Latency | normal, mean {} ms, std {} |\n\
         | Number of peers | {} |\n\
         | |Hr| (replication hash functions) | {} |\n\
         | Peer departures/joins | Poisson, λ = {} /s (population kept constant) |\n\
         | Updates on each data | Poisson, λ = {} /hour |\n\
         | Failure rate | {}% of departures |\n",
        net.bandwidth_kbps.mean,
        net.bandwidth_kbps.std_dev,
        net.latency.mean * 1000.0,
        net.latency.std_dev * 1000.0,
        c.num_peers,
        c.num_replicas,
        c.churn_rate_per_second,
        c.update_rate_per_hour,
        c.failure_rate * 100.0,
    )
}

/// Figure 6 — response time vs. number of peers on the 64-node cluster
/// profile (Section 5.2, experimental results).
pub fn fig6(scale: Scale) -> ExperimentResult {
    let peer_counts = [10usize, 20, 30, 40, 50, 64];
    let xs: Vec<f64> = peer_counts.iter().map(|p| *p as f64).collect();
    let configs: Vec<SimConfig> = peer_counts
        .iter()
        .map(|&peers| {
            let mut config = SimConfig::cluster(peers);
            if scale == Scale::Quick {
                config.duration = 900.0;
                config.queries = 20;
            }
            config
        })
        .collect();
    let reports = run_sweep(configs);
    let mut result = ExperimentResult::new(
        "fig6",
        "Response time vs. number of peers (cluster, 10-64 peers)",
        "peers",
        "response time (s)",
    );
    result.series = algorithm_series(&xs, &reports, |r, a| r.summary(a).mean_response_time);
    result.notes.push(scale_note(scale));
    result
        .notes
        .push("cluster network profile: 1 Gbps links, low latency".into());
    result
}

/// Figures 7 and 8 — response time and communication cost vs. number of peers
/// (simulation, up to 10,000 peers). Both figures come from the same sweep,
/// so they are produced together.
pub fn fig7_fig8(scale: Scale) -> (ExperimentResult, ExperimentResult) {
    let peer_counts: Vec<usize> = match scale {
        Scale::Paper => vec![2_000, 4_000, 6_000, 8_000, 10_000],
        Scale::Quick => vec![200, 400, 600, 800, 1_000],
    };
    let xs: Vec<f64> = peer_counts.iter().map(|p| *p as f64).collect();
    let configs: Vec<SimConfig> = peer_counts
        .iter()
        .map(|&peers| base_config(scale).with_num_peers(peers))
        .collect();
    let reports = run_sweep(configs);
    let mut fig7 = ExperimentResult::new(
        "fig7",
        "Response time vs. number of peers (simulation)",
        "peers",
        "response time (s)",
    );
    fig7.series = algorithm_series(&xs, &reports, |r, a| r.summary(a).mean_response_time);
    fig7.notes.push(scale_note(scale));

    let mut fig8 = ExperimentResult::new(
        "fig8",
        "Communication cost vs. number of peers (simulation)",
        "peers",
        "total messages",
    );
    fig8.series = algorithm_series(&xs, &reports, |r, a| r.summary(a).mean_messages);
    fig8.notes.push(scale_note(scale));
    (fig7, fig8)
}

/// Figures 9 and 10 — response time and communication cost vs. the number of
/// replicas `|Hr|` (Section 5.3).
pub fn fig9_fig10(scale: Scale) -> (ExperimentResult, ExperimentResult) {
    let replica_counts = [5usize, 10, 15, 20, 25, 30, 35, 40];
    let xs: Vec<f64> = replica_counts.iter().map(|r| *r as f64).collect();
    let configs: Vec<SimConfig> = replica_counts
        .iter()
        .map(|&replicas| base_config(scale).with_num_replicas(replicas))
        .collect();
    let reports = run_sweep(configs);
    let mut fig9 = ExperimentResult::new(
        "fig9",
        "Response time vs. number of replicas",
        "replicas (|Hr|)",
        "response time (s)",
    );
    fig9.series = algorithm_series(&xs, &reports, |r, a| r.summary(a).mean_response_time);
    fig9.notes.push(scale_note(scale));

    let mut fig10 = ExperimentResult::new(
        "fig10",
        "Communication cost vs. number of replicas",
        "replicas (|Hr|)",
        "total messages",
    );
    fig10.series = algorithm_series(&xs, &reports, |r, a| r.summary(a).mean_messages);
    fig10.notes.push(scale_note(scale));
    (fig9, fig10)
}

/// Figure 11 — response time vs. failure rate (Section 5.4).
pub fn fig11(scale: Scale) -> ExperimentResult {
    let failure_rates = [5.0f64, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0];
    let configs: Vec<SimConfig> = failure_rates
        .iter()
        .map(|&rate| base_config(scale).with_failure_rate(rate / 100.0))
        .collect();
    let reports = run_sweep(configs);
    let mut result = ExperimentResult::new(
        "fig11",
        "Response time vs. failure rate",
        "failure rate (%)",
        "response time (s)",
    );
    result.series = algorithm_series(&failure_rates, &reports, |r, a| {
        r.summary(a).mean_response_time
    });
    result.notes.push(scale_note(scale));
    result
}

/// Figure 12 — response time vs. frequency of updates (Section 5.5); the
/// paper plots only the two UMS variants here.
pub fn fig12(scale: Scale) -> ExperimentResult {
    let frequencies = [0.0625f64, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0];
    let configs: Vec<SimConfig> = frequencies
        .iter()
        .map(|&rate| base_config(scale).with_update_rate(rate))
        .collect();
    let reports = run_sweep(configs);
    let mut result = ExperimentResult::new(
        "fig12",
        "Response time vs. frequency of updates",
        "updates per hour",
        "response time (s)",
    );
    result.series = [Algorithm::UmsIndirect, Algorithm::UmsDirect]
        .iter()
        .map(|&algorithm| {
            let mut series = Series::new(algorithm.label());
            for (x, report) in frequencies.iter().zip(&reports) {
                series.push(*x, report.summary(algorithm).mean_response_time);
            }
            series
        })
        .collect();
    result.notes.push(scale_note(scale));
    result
}

/// Theorem 1 / Equations 1–5 — measured number of probed replicas vs. the
/// probability of currency and availability, compared against the paper's
/// closed-form bounds. The failure rate is swept to move `p_t` (failed peers
/// lose their replicas, so more failures means fewer current replicas
/// available at query time).
pub fn theorem1(scale: Scale) -> ExperimentResult {
    let base = base_config(scale);
    let failure_rates = [0.05f64, 0.2, 0.4, 0.6, 0.8, 0.95];
    let replicas = base.num_replicas;

    let mut measured = Series::new("measured E(X)");
    let mut measured_hits = Series::new("measured E(X) (current found)");
    let mut eq1 = Series::new("Eq.1 prediction");
    let mut bound = Series::new("1/p_t bound (Thm 1)");
    let mut eq5 = Series::new("min(1/p_t, |Hr|) (Eq.5)");

    let configs: Vec<SimConfig> = failure_rates
        .iter()
        .enumerate()
        .map(|(i, &failure_rate)| {
            let mut config = base
                .clone()
                .with_seed(base.seed.wrapping_add(i as u64))
                .with_failure_rate(failure_rate);
            config.churn_rate_per_second = base.churn_rate_per_second * 4.0;
            config.update_rate_per_hour = base.update_rate_per_hour.min(0.5);
            config
        })
        .collect();
    for report in run_sweep(configs) {
        let samples: Vec<_> = report.samples_for(Algorithm::UmsDirect).collect();
        if samples.is_empty() {
            continue;
        }
        let n = samples.len() as f64;
        let mean_pt = samples.iter().map(|s| s.currency_availability).sum::<f64>() / n;
        let mean_probes = samples
            .iter()
            .map(|s| s.replicas_probed as f64)
            .sum::<f64>()
            / n;
        let hits: Vec<_> = samples.iter().filter(|s| s.certified_current).collect();
        let mean_probes_hits = if hits.is_empty() {
            mean_probes
        } else {
            hits.iter().map(|s| s.replicas_probed as f64).sum::<f64>() / hits.len() as f64
        };
        let x = (mean_pt * 1000.0).round() / 1000.0;
        measured.push(x, mean_probes);
        measured_hits.push(x, mean_probes_hits);
        eq1.push(x, analysis::expected_probes_exact(mean_pt, replicas));
        bound.push(x, analysis::theorem1_upper_bound(mean_pt));
        eq5.push(x, analysis::bounded_expectation(mean_pt, replicas));
    }
    for series in [
        &mut measured,
        &mut measured_hits,
        &mut eq1,
        &mut bound,
        &mut eq5,
    ] {
        series.points.sort_by(|a, b| a.0.total_cmp(&b.0));
    }

    let mut result = ExperimentResult::new(
        "theorem1",
        "Measured replica probes vs. probability of currency and availability",
        "measured p_t",
        "replicas retrieved per query (E(X))",
    );
    result.series = vec![measured, measured_hits, eq1, bound, eq5];
    result.notes.push(scale_note(scale));
    result
        .notes
        .push("failure rate swept to move p_t; UMS-Direct universe measured".into());
    result.notes.push(
        "the 1/p_t bound applies per query; the unconditioned mean also counts queries that \
         find no current replica and probe all |Hr| slots, so it can sit slightly above the \
         bound computed from the averaged p_t"
            .into(),
    );
    result
}

/// Runs every experiment at the given scale, in the order the paper presents
/// them. Returns `(id, markdown)` pairs plus the raw results for programmatic
/// checks.
pub fn run_all(scale: Scale) -> Vec<ExperimentResult> {
    let mut results = Vec::new();
    results.push(fig6(scale));
    let (fig7, fig8) = fig7_fig8(scale);
    results.push(fig7);
    results.push(fig8);
    let (fig9, fig10) = fig9_fig10(scale);
    results.push(fig9);
    results.push(fig10);
    results.push(fig11(scale));
    results.push(fig12(scale));
    results.push(theorem1(scale));
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimConfig {
        SimConfig::small_test(48, 11)
    }

    #[test]
    fn run_config_produces_samples() {
        let report = run_config(tiny());
        assert!(!report.samples.is_empty());
    }

    #[test]
    fn base_config_scales() {
        assert_eq!(base_config(Scale::Paper).num_peers, 10_000);
        assert!(base_config(Scale::Quick).num_peers < 10_000);
        assert!(base_config(Scale::Quick).validate().is_ok());
    }

    #[test]
    fn table1_mentions_key_parameters() {
        let text = table1();
        assert!(text.contains("10000"));
        assert!(text.contains("56"));
        assert!(text.contains("200"));
    }

    #[test]
    fn theorem1_series_are_labelled() {
        // Use the quick scale but a single tiny sweep by reusing the function
        // end to end would be slow here; instead check label wiring through a
        // direct construction of the analysis series from known p_t values.
        let bound = analysis::theorem1_upper_bound(0.35);
        assert!(bound < 3.0);
    }
}
