//! Deterministic parallel execution of experiment sweeps.
//!
//! Every sweep in [`crate::experiments`] is a list of independent
//! [`SimConfig`]s (each carries its own seed), so the simulations can run on
//! worker threads with no shared state. Results are collected back into
//! input order, which makes the output **bit-identical** to running the
//! configs sequentially — the only thing that changes is wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;

use rdht_sim::{SimConfig, Simulation, SimulationReport};

/// Runs every configuration to completion, using up to
/// `available_parallelism` worker threads, and returns the reports in input
/// order.
///
/// Determinism: each simulation is seeded by its own `SimConfig::seed` and
/// shares nothing with its siblings, so the report produced for slot `i` is
/// the same whether the sweep runs on one thread or many (asserted by the
/// `parallel_matches_sequential` test).
pub fn run_configs(configs: Vec<SimConfig>) -> Vec<SimulationReport> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_configs_with_threads(configs, threads)
}

/// [`run_configs`] with an explicit worker count (also used by the
/// determinism test, which must exercise the threaded path even on a
/// single-core machine).
pub fn run_configs_with_threads(configs: Vec<SimConfig>, threads: usize) -> Vec<SimulationReport> {
    let threads = threads.min(configs.len());
    if threads <= 1 {
        return configs
            .into_iter()
            .map(|config| Simulation::new(config).run())
            .collect();
    }

    let total = configs.len();
    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<(usize, SimulationReport)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let configs = &configs;
            scope.spawn(move || loop {
                // relaxed: work-claim ticket; only RMW uniqueness matters,
                // results flow back through the channel (its own sync).
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= configs.len() {
                    break;
                }
                let report = Simulation::new(configs[index].clone()).run();
                if tx.send((index, report)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<SimulationReport>> = (0..total).map(|_| None).collect();
    for (index, report) in rx.iter() {
        slots[index] = Some(report);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every sweep point produced a report"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<SimConfig> {
        (0..4)
            .map(|i| SimConfig::small_test(32 + 4 * i, 100 + i as u64))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let sequential: Vec<SimulationReport> = sweep()
            .into_iter()
            .map(|config| Simulation::new(config).run())
            .collect();
        // Force real worker threads — `run_configs` may pick 1 on a
        // single-core CI machine, which would test nothing.
        let parallel = run_configs_with_threads(sweep(), 3);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn preserves_input_order() {
        let reports = run_configs_with_threads(sweep(), 2);
        let expected: Vec<usize> = sweep().iter().map(|c| c.num_peers).collect();
        let got: Vec<usize> = reports.iter().map(|r| r.num_peers).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_configs(Vec::new()).is_empty());
    }
}
