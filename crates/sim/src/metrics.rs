//! Query samples and aggregate statistics produced by a simulation run.

use crate::algo::Algorithm;

/// One measured retrieve operation.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySample {
    /// Simulated time at which the query was issued.
    pub time: f64,
    /// Algorithm the query was executed with.
    pub algorithm: Algorithm,
    /// Index of the queried data item in the workload key set.
    pub key_index: usize,
    /// Simulated response time, in seconds (what Figures 6, 7, 9, 11 and 12
    /// plot).
    pub response_time: f64,
    /// Total messages used to answer the query (what Figures 8 and 10 plot).
    pub messages: u64,
    /// Replica probes issued (`get_h` calls) — the random variable `X` of the
    /// Theorem 1 analysis.
    pub replicas_probed: usize,
    /// Whether the algorithm certified the returned replica as current (UMS's
    /// timestamp match). BRK can never certify currency, so this is always
    /// false for it.
    pub certified_current: bool,
    /// Whether the returned payload actually equals the latest committed
    /// update for the key — the ground-truth currency check the simulator can
    /// do because it knows the full update history.
    pub returned_latest: bool,
    /// The measured probability of currency and availability `p_t` for this
    /// key at query time (fraction of replica slots whose ground-truth
    /// responsible holds the latest payload).
    pub currency_availability: f64,
}

/// Aggregate statistics for one algorithm over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SummaryStatistics {
    /// Number of samples aggregated.
    pub count: usize,
    /// Mean response time (seconds).
    pub mean_response_time: f64,
    /// Maximum response time (seconds).
    pub max_response_time: f64,
    /// Mean number of messages per query.
    pub mean_messages: f64,
    /// Mean number of replica probes per query.
    pub mean_replicas_probed: f64,
    /// Fraction of queries whose returned payload was the latest committed
    /// update.
    pub returned_latest_fraction: f64,
    /// Fraction of queries the algorithm certified as current.
    pub certified_current_fraction: f64,
    /// Mean measured probability of currency and availability at query time.
    pub mean_currency_availability: f64,
}

/// Operational counters of a run (how much churn and update activity the
/// workload generated).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Graceful leaves processed.
    pub leaves: u64,
    /// Failures processed.
    pub failures: u64,
    /// Joins processed (equals leaves + failures in the constant-population
    /// model, plus the initial bootstrap is not counted).
    pub joins: u64,
    /// Update events applied.
    pub updates: u64,
    /// Stabilization rounds executed.
    pub stabilize_rounds: u64,
    /// Periodic-inspection rounds executed.
    pub inspection_rounds: u64,
    /// Counters corrected by periodic inspection (across both UMS universes).
    pub inspection_corrections: u64,
    /// Query events executed (each runs every algorithm once).
    pub queries: u64,
}

/// The full outcome of a simulation run.
///
/// `PartialEq` compares every sample and counter exactly (including the
/// `f64` fields bit-for-bit via `==`), which is what the parallel experiment
/// driver's determinism test relies on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimulationReport {
    /// Every measured query.
    pub samples: Vec<QuerySample>,
    /// Workload counters.
    pub stats: RunStats,
    /// Number of peers in the overlay (constant over the run).
    pub num_peers: usize,
    /// Number of replication hash functions used.
    pub num_replicas: usize,
    /// Simulated duration in seconds.
    pub duration: f64,
}

impl SimulationReport {
    /// Samples for one algorithm.
    pub fn samples_for(&self, algorithm: Algorithm) -> impl Iterator<Item = &QuerySample> {
        self.samples
            .iter()
            .filter(move |s| s.algorithm == algorithm)
    }

    /// Aggregates the samples of one algorithm.
    pub fn summary(&self, algorithm: Algorithm) -> SummaryStatistics {
        let samples: Vec<&QuerySample> = self.samples_for(algorithm).collect();
        if samples.is_empty() {
            return SummaryStatistics::default();
        }
        let count = samples.len();
        let n = count as f64;
        SummaryStatistics {
            count,
            mean_response_time: samples.iter().map(|s| s.response_time).sum::<f64>() / n,
            max_response_time: samples
                .iter()
                .map(|s| s.response_time)
                .fold(f64::MIN, f64::max),
            mean_messages: samples.iter().map(|s| s.messages as f64).sum::<f64>() / n,
            mean_replicas_probed: samples
                .iter()
                .map(|s| s.replicas_probed as f64)
                .sum::<f64>()
                / n,
            returned_latest_fraction: samples.iter().filter(|s| s.returned_latest).count() as f64
                / n,
            certified_current_fraction: samples.iter().filter(|s| s.certified_current).count()
                as f64
                / n,
            mean_currency_availability: samples
                .iter()
                .map(|s| s.currency_availability)
                .sum::<f64>()
                / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(
        algorithm: Algorithm,
        response_time: f64,
        messages: u64,
        latest: bool,
    ) -> QuerySample {
        QuerySample {
            time: 1.0,
            algorithm,
            key_index: 0,
            response_time,
            messages,
            replicas_probed: 2,
            certified_current: latest,
            returned_latest: latest,
            currency_availability: 0.8,
        }
    }

    #[test]
    fn summary_aggregates_per_algorithm() {
        let report = SimulationReport {
            samples: vec![
                sample(Algorithm::UmsDirect, 2.0, 10, true),
                sample(Algorithm::UmsDirect, 4.0, 20, true),
                sample(Algorithm::Brk, 10.0, 100, false),
            ],
            stats: RunStats::default(),
            num_peers: 100,
            num_replicas: 10,
            duration: 60.0,
        };
        let ums = report.summary(Algorithm::UmsDirect);
        assert_eq!(ums.count, 2);
        assert!((ums.mean_response_time - 3.0).abs() < 1e-12);
        assert!((ums.max_response_time - 4.0).abs() < 1e-12);
        assert!((ums.mean_messages - 15.0).abs() < 1e-12);
        assert!((ums.returned_latest_fraction - 1.0).abs() < 1e-12);
        let brk = report.summary(Algorithm::Brk);
        assert_eq!(brk.count, 1);
        assert!((brk.mean_response_time - 10.0).abs() < 1e-12);
        assert_eq!(brk.returned_latest_fraction, 0.0);
    }

    #[test]
    fn summary_of_missing_algorithm_is_default() {
        let report = SimulationReport::default();
        let s = report.summary(Algorithm::UmsIndirect);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_response_time, 0.0);
    }

    #[test]
    fn samples_for_filters_by_algorithm() {
        let report = SimulationReport {
            samples: vec![
                sample(Algorithm::UmsDirect, 1.0, 1, true),
                sample(Algorithm::Brk, 2.0, 2, true),
            ],
            ..Default::default()
        };
        assert_eq!(report.samples_for(Algorithm::Brk).count(), 1);
        assert_eq!(report.samples_for(Algorithm::UmsIndirect).count(), 0);
    }
}
