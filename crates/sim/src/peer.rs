//! Per-peer simulated state.

use rdht_core::kts::KtsNode;
use rdht_overlay::PeerStore;

use crate::algo::Algorithm;

/// Everything one simulated peer stores, for the three algorithm universes
/// that share the same overlay and churn history.
///
/// Keeping the universes separate (instead of re-running the whole simulation
/// once per algorithm) means every algorithm sees exactly the same joins,
/// leaves, failures and update times — the comparison in each figure is
/// paired, which reduces variance, and one simulation run produces all three
/// series.
#[derive(Debug, Default)]
pub struct PeerState {
    /// Replica store of the UMS-Direct universe (stamps are KTS timestamps).
    pub store_direct: PeerStore,
    /// Replica store of the UMS-Indirect universe.
    pub store_indirect: PeerStore,
    /// Replica store of the BRK universe (stamps are version numbers).
    pub store_brk: PeerStore,
    /// KTS state of the UMS-Direct universe.
    pub kts_direct: KtsNode,
    /// KTS state of the UMS-Indirect universe.
    pub kts_indirect: KtsNode,
}

impl PeerState {
    /// Fresh state for a peer that just joined (empty stores, empty VCS —
    /// KTS Rule 1).
    pub fn new() -> Self {
        PeerState {
            store_direct: PeerStore::new(),
            store_indirect: PeerStore::new(),
            store_brk: PeerStore::new(),
            kts_direct: KtsNode::new(false),
            kts_indirect: KtsNode::new(false),
        }
    }

    /// The replica store used by `algorithm`.
    pub fn store(&self, algorithm: Algorithm) -> &PeerStore {
        match algorithm {
            Algorithm::UmsDirect => &self.store_direct,
            Algorithm::UmsIndirect => &self.store_indirect,
            Algorithm::Brk => &self.store_brk,
        }
    }

    /// Mutable access to the replica store used by `algorithm`.
    pub fn store_mut(&mut self, algorithm: Algorithm) -> &mut PeerStore {
        match algorithm {
            Algorithm::UmsDirect => &mut self.store_direct,
            Algorithm::UmsIndirect => &mut self.store_indirect,
            Algorithm::Brk => &mut self.store_brk,
        }
    }

    /// The KTS node used by `algorithm` (`None` for BRK, which has no
    /// timestamping service).
    pub fn kts(&self, algorithm: Algorithm) -> Option<&KtsNode> {
        match algorithm {
            Algorithm::UmsDirect => Some(&self.kts_direct),
            Algorithm::UmsIndirect => Some(&self.kts_indirect),
            Algorithm::Brk => None,
        }
    }

    /// Mutable access to the KTS node used by `algorithm`.
    pub fn kts_mut(&mut self, algorithm: Algorithm) -> Option<&mut KtsNode> {
        match algorithm {
            Algorithm::UmsDirect => Some(&mut self.kts_direct),
            Algorithm::UmsIndirect => Some(&mut self.kts_indirect),
            Algorithm::Brk => None,
        }
    }

    /// Total number of replicas stored across the three universes (used by
    /// capacity assertions in tests).
    pub fn total_stored(&self) -> usize {
        self.store_direct.len() + self.store_indirect.len() + self.store_brk.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdht_hashing::{HashId, Key};
    use rdht_overlay::{Record, WritePolicy};

    #[test]
    fn stores_are_per_algorithm() {
        let mut peer = PeerState::new();
        peer.store_mut(Algorithm::UmsDirect).put(
            HashId(0),
            Key::new("k"),
            Record {
                payload: b"x".to_vec(),
                stamp: 1,
                position: 7,
            },
            WritePolicy::KeepNewest,
        );
        assert_eq!(peer.store(Algorithm::UmsDirect).len(), 1);
        assert_eq!(peer.store(Algorithm::UmsIndirect).len(), 0);
        assert_eq!(peer.store(Algorithm::Brk).len(), 0);
        assert_eq!(peer.total_stored(), 1);
    }

    #[test]
    fn brk_has_no_kts() {
        let mut peer = PeerState::new();
        assert!(peer.kts(Algorithm::Brk).is_none());
        assert!(peer.kts_mut(Algorithm::Brk).is_none());
        assert!(peer.kts(Algorithm::UmsDirect).is_some());
        assert!(peer.kts(Algorithm::UmsIndirect).is_some());
    }

    #[test]
    fn new_peer_starts_empty() {
        let peer = PeerState::new();
        assert_eq!(peer.total_stored(), 0);
        assert!(peer.kts_direct.vcs().is_empty());
        assert!(peer.kts_indirect.vcs().is_empty());
    }
}
