//! Simulation configuration (Table 1 of the paper plus harness knobs).

use rdht_net::FaultPlan;

use crate::network::NetworkModel;

/// Which network model the simulation prices messages with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkProfile {
    /// Wide-area parameters of Table 1 (used by Figures 7–12).
    Internet,
    /// The 64-node cluster of Section 5.2 (used by Figure 6).
    Cluster,
}

impl NetworkProfile {
    /// Builds the corresponding [`NetworkModel`].
    pub fn model(self) -> NetworkModel {
        match self {
            NetworkProfile::Internet => NetworkModel::internet(),
            NetworkProfile::Cluster => NetworkModel::cluster(),
        }
    }
}

/// All parameters of one simulation run.
///
/// [`SimConfig::table1`] reproduces Table 1; the experiment harness derives
/// the per-figure sweeps from it by overriding one field at a time.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of peers in the overlay (Table 1: 10,000).
    pub num_peers: usize,
    /// Number of replication hash functions `|Hr|` (Table 1: 10).
    pub num_replicas: usize,
    /// Number of distinct data items shared in the DHT.
    pub num_keys: usize,
    /// Rate of the departure Poisson process, in departures per second
    /// (Table 1: λ = 1/s). Every departure is immediately compensated by a
    /// join so the population stays constant, as in the paper's setup.
    pub churn_rate_per_second: f64,
    /// Rate of the *uncompensated* join Poisson process, in joins per
    /// second: each event grows the population by one through the membership
    /// protocol (range split + direct counter hand-off). `0.0` (the default
    /// everywhere) disables the process and preserves the constant-population
    /// model.
    pub join_rate_per_second: f64,
    /// Rate of the *uncompensated* graceful-leave Poisson process, in leaves
    /// per second: each event shrinks the population by one with a direct
    /// hand-off to the successor. `0.0` disables it.
    pub graceful_leave_rate_per_second: f64,
    /// Rate of the *uncompensated* crash Poisson process, in crashes per
    /// second: each event shrinks the population by one with no hand-off.
    /// Running the same workload once with this and once with
    /// `graceful_leave_rate_per_second` isolates the cost gap between the
    /// direct algorithm and crash-and-indirect recovery. `0.0` disables it.
    pub crash_rate_per_second: f64,
    /// Fraction of departures that are failures rather than graceful leaves
    /// (Table 1: 5%).
    pub failure_rate: f64,
    /// Rate of the per-data update Poisson process, in updates per hour
    /// (Table 1: λ = 1/hour).
    pub update_rate_per_hour: f64,
    /// Total simulated time, in seconds. The paper runs ~3 hours; the default
    /// uses 2 simulated hours to keep full sweeps affordable.
    pub duration: f64,
    /// Number of retrieve queries issued at uniformly random times over the
    /// run (the paper issues 30 and averages).
    pub queries: usize,
    /// Interval between stabilization rounds, in seconds.
    pub stabilize_interval: f64,
    /// Finger-table entries refreshed per node per stabilization round.
    pub fingers_fixed_per_round: usize,
    /// Successor-list length.
    pub successor_list_len: usize,
    /// Probability that an individual replica write during an update does not
    /// reach its holder (models transiently unreachable peers, the paper's
    /// motivating "p2 cannot be reached" scenario). Such replicas stay stale
    /// until a later update reaches them.
    pub put_failure_probability: f64,
    /// Interval of the *periodic inspection* strategy (Section 4.2.2): every
    /// this many simulated seconds, each timestamping responsible compares
    /// its counters with the timestamps stored in the DHT and corrects any
    /// counter found to be behind. `0.0` disables inspection.
    pub inspection_interval: f64,
    /// Whether replicas are handed over when responsibility moves through a
    /// graceful leave or a join (the standard Chord/CAN key hand-off the
    /// paper describes in Section 4.3: the new responsible asks the previous
    /// one for its `(k, data)` pairs). Failures always lose the replicas held
    /// by the failed peer — they are only restored by the next update.
    /// Defaults to `true`; the ablation benches flip it to study a DHT with
    /// no hand-off at all.
    pub transfer_data_on_membership_change: bool,
    /// Network model to price messages with.
    pub network: NetworkProfile,
    /// Optional link-fault plan shared with the threaded deployment
    /// (`rdht_net::FaultPlan`): per-directed-link drop probabilities rolled
    /// on every simulated data message, so the same lossy-network scenarios
    /// run in virtual time here and in real time on the cluster. A plan
    /// carries its own seeded per-link RNG state — give each run a freshly
    /// constructed plan to keep runs reproducible.
    pub fault_plan: Option<FaultPlan>,
    /// Random seed; two runs with the same config and seed are identical.
    pub seed: u64,
}

impl SimConfig {
    /// The configuration of Table 1.
    pub fn table1() -> Self {
        SimConfig {
            num_peers: 10_000,
            num_replicas: 10,
            num_keys: 64,
            churn_rate_per_second: 1.0,
            join_rate_per_second: 0.0,
            graceful_leave_rate_per_second: 0.0,
            crash_rate_per_second: 0.0,
            failure_rate: 0.05,
            update_rate_per_hour: 1.0,
            duration: 2.0 * 3600.0,
            queries: 30,
            stabilize_interval: 30.0,
            fingers_fixed_per_round: 16,
            successor_list_len: 8,
            put_failure_probability: 0.02,
            inspection_interval: 600.0,
            transfer_data_on_membership_change: true,
            network: NetworkProfile::Internet,
            fault_plan: None,
            seed: 0x5103_0d07,
        }
    }

    /// The cluster setup of Section 5.2 / Figure 6: `peers` nodes (10–64), a
    /// fast network, and churn scaled down proportionally to the population
    /// so that a 64-node cluster is not wiped out by one departure per
    /// second.
    pub fn cluster(peers: usize) -> Self {
        let mut config = SimConfig::table1();
        config.num_peers = peers;
        config.network = NetworkProfile::Cluster;
        config.churn_rate_per_second = peers as f64 / 10_000.0;
        config.duration = 3600.0;
        config.num_keys = 16;
        config
    }

    /// A small, fast configuration for unit and integration tests.
    pub fn small_test(peers: usize, seed: u64) -> Self {
        SimConfig {
            num_peers: peers,
            num_replicas: 5,
            num_keys: 8,
            churn_rate_per_second: peers as f64 / 2_000.0,
            join_rate_per_second: 0.0,
            graceful_leave_rate_per_second: 0.0,
            crash_rate_per_second: 0.0,
            failure_rate: 0.1,
            update_rate_per_hour: 20.0,
            duration: 900.0,
            queries: 12,
            stabilize_interval: 30.0,
            fingers_fixed_per_round: 8,
            successor_list_len: 4,
            put_failure_probability: 0.02,
            inspection_interval: 300.0,
            transfer_data_on_membership_change: true,
            network: NetworkProfile::Internet,
            fault_plan: None,
            seed,
        }
    }

    /// Returns a copy with a different peer count.
    pub fn with_num_peers(mut self, num_peers: usize) -> Self {
        self.num_peers = num_peers;
        self
    }

    /// Returns a copy with a different replica count `|Hr|`.
    pub fn with_num_replicas(mut self, num_replicas: usize) -> Self {
        self.num_replicas = num_replicas;
        self
    }

    /// Returns a copy with a different failure rate (fraction of departures
    /// that are failures).
    pub fn with_failure_rate(mut self, failure_rate: f64) -> Self {
        self.failure_rate = failure_rate;
        self
    }

    /// Returns a copy with a different uncompensated-join rate (per second).
    pub fn with_join_rate(mut self, join_rate_per_second: f64) -> Self {
        self.join_rate_per_second = join_rate_per_second;
        self
    }

    /// Returns a copy with a different uncompensated graceful-leave rate
    /// (per second).
    pub fn with_graceful_leave_rate(mut self, graceful_leave_rate_per_second: f64) -> Self {
        self.graceful_leave_rate_per_second = graceful_leave_rate_per_second;
        self
    }

    /// Returns a copy with a different uncompensated crash rate (per
    /// second).
    pub fn with_crash_rate(mut self, crash_rate_per_second: f64) -> Self {
        self.crash_rate_per_second = crash_rate_per_second;
        self
    }

    /// Returns a copy with a different per-data update rate (per hour).
    pub fn with_update_rate(mut self, update_rate_per_hour: f64) -> Self {
        self.update_rate_per_hour = update_rate_per_hour;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy dropping simulated data messages per `plan` (see
    /// [`SimConfig::fault_plan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_peers == 0 {
            return Err("num_peers must be at least 1".into());
        }
        if self.num_replicas == 0 {
            return Err("num_replicas must be at least 1".into());
        }
        if self.num_keys == 0 {
            return Err("num_keys must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.failure_rate) {
            return Err("failure_rate must be within [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.put_failure_probability) {
            return Err("put_failure_probability must be within [0, 1]".into());
        }
        if self.duration <= 0.0 {
            return Err("duration must be positive".into());
        }
        if self.churn_rate_per_second < 0.0 {
            return Err("churn_rate_per_second must be non-negative".into());
        }
        if self.join_rate_per_second < 0.0 {
            return Err("join_rate_per_second must be non-negative".into());
        }
        if self.graceful_leave_rate_per_second < 0.0 {
            return Err("graceful_leave_rate_per_second must be non-negative".into());
        }
        if self.crash_rate_per_second < 0.0 {
            return Err("crash_rate_per_second must be non-negative".into());
        }
        if self.update_rate_per_hour < 0.0 {
            return Err("update_rate_per_hour must be non-negative".into());
        }
        if self.inspection_interval < 0.0 {
            return Err("inspection_interval must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_parameters() {
        let c = SimConfig::table1();
        assert_eq!(c.num_peers, 10_000);
        assert_eq!(c.num_replicas, 10);
        assert!((c.churn_rate_per_second - 1.0).abs() < f64::EPSILON);
        assert!((c.failure_rate - 0.05).abs() < f64::EPSILON);
        assert!((c.update_rate_per_hour - 1.0).abs() < f64::EPSILON);
        assert_eq!(c.network, NetworkProfile::Internet);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cluster_profile_scales_churn_down() {
        let c = SimConfig::cluster(64);
        assert_eq!(c.num_peers, 64);
        assert_eq!(c.network, NetworkProfile::Cluster);
        assert!(c.churn_rate_per_second < 0.01);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_override_individual_fields() {
        let c = SimConfig::table1()
            .with_num_peers(2000)
            .with_num_replicas(40)
            .with_failure_rate(0.9)
            .with_update_rate(0.0625)
            .with_seed(9);
        assert_eq!(c.num_peers, 2000);
        assert_eq!(c.num_replicas, 40);
        assert!((c.failure_rate - 0.9).abs() < f64::EPSILON);
        assert!((c.update_rate_per_hour - 0.0625).abs() < f64::EPSILON);
        assert_eq!(c.seed, 9);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SimConfig::table1().with_num_peers(0).validate().is_err());
        assert!(SimConfig::table1().with_num_replicas(0).validate().is_err());
        assert!(SimConfig::table1()
            .with_failure_rate(1.5)
            .validate()
            .is_err());
        let mut c = SimConfig::table1();
        c.duration = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn profiles_produce_models() {
        assert!(
            NetworkProfile::Internet.model().latency.mean
                > NetworkProfile::Cluster.model().latency.mean
        );
    }
}
