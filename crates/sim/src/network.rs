//! The network cost model: how simulated time and messages are charged.

use rand::Rng;

use crate::rng::Normal;

/// Prices messages exchanged between peers.
///
/// Every routing hop, request and response is one message. Its delay is
/// `latency + bits / bandwidth`; latency and bandwidth are drawn per message
/// from the normal distributions of Table 1 (or of the cluster profile for
/// the Figure 6 experiment). Probing a peer that has failed costs a timeout
/// instead — the prober waits `timeout` seconds before giving up on it.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Per-message one-way latency distribution, in seconds.
    pub latency: Normal,
    /// Bandwidth distribution, in kilobits per second.
    pub bandwidth_kbps: Normal,
    /// Size of a control message (lookup step, timestamp request, ack), in
    /// bytes.
    pub control_bytes: u64,
    /// Size of a message carrying a data replica, in bytes.
    pub data_bytes: u64,
    /// How long a peer waits before concluding that a probed peer is dead,
    /// in seconds.
    pub timeout: f64,
}

impl NetworkModel {
    /// The wide-area model of Table 1: latency ~ N(200 ms, 100 ms), bandwidth
    /// ~ N(56 kbps, 32 kbps), 1 KiB data payloads.
    pub fn internet() -> Self {
        NetworkModel {
            latency: Normal::new(0.200, 0.100, 0.010),
            bandwidth_kbps: Normal::new(56.0, 32.0, 8.0),
            control_bytes: 128,
            data_bytes: 1024,
            timeout: 1.0,
        }
    }

    /// The 64-node cluster of Section 5.2: 1 Gbps links, sub-millisecond
    /// latency, but a per-message processing overhead comparable to the
    /// authors' implementation (their measured per-hop cost on the cluster is
    /// tens of milliseconds).
    pub fn cluster() -> Self {
        NetworkModel {
            latency: Normal::new(0.030, 0.010, 0.001),
            bandwidth_kbps: Normal::new(1_000_000.0, 0.0, 1_000_000.0),
            control_bytes: 128,
            data_bytes: 1024,
            timeout: 0.5,
        }
    }

    /// Delay of one control message (seconds).
    pub fn control_delay(&self, rng: &mut impl Rng) -> f64 {
        self.message_delay(self.control_bytes, rng)
    }

    /// Delay of one message carrying a data replica (seconds).
    pub fn data_delay(&self, rng: &mut impl Rng) -> f64 {
        self.message_delay(self.data_bytes, rng)
    }

    /// Delay of a message of `bytes` bytes (seconds).
    pub fn message_delay(&self, bytes: u64, rng: &mut impl Rng) -> f64 {
        let latency = self.latency.sample(rng);
        let bandwidth_bps = self.bandwidth_kbps.sample(rng) * 1000.0;
        latency + (bytes as f64 * 8.0) / bandwidth_bps
    }

    /// The penalty paid when a probed peer turns out to be dead.
    pub fn timeout_penalty(&self) -> f64 {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn internet_delays_are_in_a_plausible_range() {
        let model = NetworkModel::internet();
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0.0;
        for _ in 0..2000 {
            let d = model.data_delay(&mut rng);
            assert!(d > 0.0 && d < 5.0, "delay {d}");
            total += d;
        }
        let mean = total / 2000.0;
        // ~200 ms latency + 8192 bits / 56 kbps ≈ 0.2 + 0.15 ≈ 0.35 s.
        assert!(mean > 0.25 && mean < 0.6, "mean data delay {mean}");
    }

    #[test]
    fn control_messages_are_cheaper_than_data_messages() {
        let model = NetworkModel::internet();
        let mut rng = StdRng::seed_from_u64(2);
        let control: f64 = (0..2000).map(|_| model.control_delay(&mut rng)).sum();
        let data: f64 = (0..2000).map(|_| model.data_delay(&mut rng)).sum();
        assert!(control < data);
    }

    #[test]
    fn cluster_is_much_faster_than_internet() {
        let cluster = NetworkModel::cluster();
        let internet = NetworkModel::internet();
        let mut rng = StdRng::seed_from_u64(3);
        let c: f64 = (0..500).map(|_| cluster.data_delay(&mut rng)).sum();
        let i: f64 = (0..500).map(|_| internet.data_delay(&mut rng)).sum();
        assert!(c * 3.0 < i, "cluster {c} vs internet {i}");
    }

    #[test]
    fn timeout_penalty_exceeds_typical_latency() {
        let model = NetworkModel::internet();
        assert!(model.timeout_penalty() > model.latency.mean);
    }
}
