//! Random distributions used by the simulator.
//!
//! The paper's Table 1 draws latencies and bandwidths from normal
//! distributions and times churn and updates with Poisson processes. Rather
//! than pulling in an extra dependency for three small distributions, they
//! are implemented here on top of the `rand` crate:
//!
//! * [`Normal`] — Box–Muller transform, with a floor so physical quantities
//!   (latency, bandwidth) never go non-positive;
//! * [`Exponential`] — inverse-CDF sampling of inter-arrival times, which is
//!   exactly how a Poisson process is generated event by event.

use rand::Rng;

/// A normal distribution `N(mean, std_dev²)` clamped below at `min`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    /// Mean of the distribution.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Samples are clamped to be at least this value (physical quantities
    /// such as latency cannot be negative).
    pub min: f64,
}

impl Normal {
    /// Creates a clamped normal distribution.
    pub fn new(mean: f64, std_dev: f64, min: f64) -> Self {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        Normal { mean, std_dev, min }
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean.max(self.min);
        }
        // Box–Muller: u1 must be strictly positive.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mean + self.std_dev * z).max(self.min)
    }
}

/// An exponential distribution with the given rate (events per unit time).
/// Sampling it repeatedly yields the inter-arrival times of a Poisson
/// process with that rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    /// Rate parameter λ (expected number of events per unit time).
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate` (> 0).
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Draws one inter-arrival time.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_mean_and_spread_are_respected() {
        let dist = Normal::new(200.0, 30.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
        assert!((var.sqrt() - 30.0).abs() < 2.0, "std {}", var.sqrt());
    }

    #[test]
    fn normal_respects_floor() {
        let dist = Normal::new(1.0, 50.0, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            assert!(dist.sample(&mut rng) >= 0.5);
        }
    }

    #[test]
    fn normal_with_zero_std_is_constant() {
        let dist = Normal::new(7.0, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(dist.sample(&mut rng), 7.0);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let dist = Exponential::new(0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..50_000).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!(samples.iter().all(|s| *s > 0.0));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic(expected = "standard deviation must be non-negative")]
    fn normal_rejects_negative_std() {
        let _ = Normal::new(0.0, -1.0, 0.0);
    }
}
