//! Churn handling: departures (graceful or failing) and compensating joins,
//! with replica hand-off and the KTS direct counter transfer.

use rand::Rng;

use rdht_hashing::Key;
use rdht_overlay::{
    MembershipEventKind, NodeId, Overlay, Record, ResponsibilityChange, WritePolicy,
};

use rdht_core::Timestamp;

use crate::algo::Algorithm;
use crate::peer::PeerState;
use crate::rng::Exponential;
use crate::scheduler::Event;
use crate::simulation::Simulation;

impl Simulation {
    /// Handles one departure event: a uniformly random peer leaves (gracefully
    /// or by failing, per the configured failure rate), a fresh peer joins so
    /// the population stays constant, and the next departure is scheduled.
    pub(crate) fn handle_departure(&mut self) {
        if self.overlay.len() > 2 {
            let Some(victim) = self.random_alive_peer() else {
                return;
            };
            let is_failure = self.rng.gen_bool(self.config.failure_rate);
            if is_failure {
                self.perform_failure(victim);
            } else {
                self.perform_graceful_leave(victim);
            }
            // Compensating join with a fresh identifier.
            let new_id = NodeId(self.rng.gen());
            self.perform_join(new_id);
        }

        if self.config.churn_rate_per_second > 0.0 {
            let inter = Exponential::new(self.config.churn_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_in(inter, Event::PeerDeparture);
        }
    }

    /// Handles one uncompensated [`Event::Join`]: a fresh peer enters the
    /// overlay, splitting its successor's range (counters hand over
    /// directly, replicas move if the deployment transfers data).
    pub(crate) fn handle_churn_join(&mut self) {
        let new_id = NodeId(self.rng.gen());
        self.perform_join(new_id);
        if self.config.join_rate_per_second > 0.0 {
            let inter = Exponential::new(self.config.join_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_in(inter, Event::Join);
        }
    }

    /// Handles one uncompensated [`Event::GracefulLeave`]: a random peer
    /// departs through the direct algorithm of Section 4.2.1.
    pub(crate) fn handle_churn_graceful_leave(&mut self) {
        if self.overlay.len() > 2 {
            if let Some(victim) = self.random_alive_peer() {
                self.perform_graceful_leave(victim);
            }
        }
        if self.config.graceful_leave_rate_per_second > 0.0 {
            let inter =
                Exponential::new(self.config.graceful_leave_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_in(inter, Event::GracefulLeave);
        }
    }

    /// Handles one uncompensated [`Event::Crash`]: a random peer fail-stops;
    /// its counters and (non-replicated) state die with it, forcing indirect
    /// re-initializations later.
    pub(crate) fn handle_churn_crash(&mut self) {
        if self.overlay.len() > 2 {
            if let Some(victim) = self.random_alive_peer() {
                self.perform_failure(victim);
            }
        }
        if self.config.crash_rate_per_second > 0.0 {
            let inter = Exponential::new(self.config.crash_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_in(inter, Event::Crash);
        }
    }

    /// A graceful leave of `victim`: the overlay hands its ranges over and
    /// the departing state is transferred per [`Self::process_departure_change`].
    pub(crate) fn perform_graceful_leave(&mut self, victim: NodeId) {
        let departing_state = self.peers.remove(&victim);
        self.stats.leaves += 1;
        let outcome = self.overlay.leave(victim);
        if let Some(mut departing_state) = departing_state {
            for change in &outcome.changes {
                self.process_departure_change(change, &mut departing_state);
            }
        }
    }

    /// A fail-stop of `victim`: nothing is handed over.
    pub(crate) fn perform_failure(&mut self, victim: NodeId) {
        let departing_state = self.peers.remove(&victim);
        self.stats.failures += 1;
        let outcome = self.overlay.fail(victim);
        if let Some(mut departing_state) = departing_state {
            for change in &outcome.changes {
                self.process_departure_change(change, &mut departing_state);
            }
        }
    }

    /// A join of `new_id`: the overlay splits the successor's range and the
    /// still-alive previous responsible hands state over per
    /// [`Self::process_join_change`].
    pub(crate) fn perform_join(&mut self, new_id: NodeId) {
        let join_outcome = self.overlay.join(new_id);
        self.peers.insert(new_id, PeerState::new());
        self.stats.joins += 1;
        for change in &join_outcome.changes {
            self.process_join_change(change);
        }
    }

    /// Processes a responsibility change caused by a departure. For a
    /// graceful leave, the departing peer hands over its KTS counters (the
    /// direct algorithm — UMS-Direct universe only) and, if the deployment
    /// transfers data on membership changes, its replicas. For a failure,
    /// nothing can be handed over: replicas and counters die with the peer.
    fn process_departure_change(
        &mut self,
        change: &ResponsibilityChange,
        departing_state: &mut PeerState,
    ) {
        if !change.handover_possible || change.kind == MembershipEventKind::Fail {
            return;
        }

        // Direct counter transfer (Section 4.2.1): the departing responsible
        // of timestamping ships the counters of the keys whose timestamping
        // position falls in the moved range to the next responsible.
        let family = &self.family;
        let exported: Vec<(Key, Timestamp)> = departing_state
            .kts_direct
            .export_counters_in_range(|key| change.covers(family.eval_timestamp(key)));
        if let Some(target) = self.peers.get_mut(&change.to) {
            target.kts_direct.receive_transferred_counters(exported);
        }
        // The UMS-Indirect universe never transfers counters: they simply die
        // with the departing peer, forcing the indirect initialization later.

        if self.config.transfer_data_on_membership_change {
            for algorithm in Algorithm::ALL {
                let moved: Vec<(rdht_hashing::HashId, Key, Record)> = departing_state
                    .store_mut(algorithm)
                    .drain_range(change.range_start, change.range_end);
                if let Some(target) = self.peers.get_mut(&change.to) {
                    for (hash, key, record) in moved {
                        target
                            .store_mut(algorithm)
                            .put(hash, key, record, WritePolicy::KeepNewest);
                    }
                }
            }
        }
    }

    /// Processes a responsibility change caused by a join: the previous
    /// responsible (still alive — the RLA detection point) hands the covered
    /// counters to the new responsible in the UMS-Direct universe, drops them
    /// in the UMS-Indirect universe (Rule 3), and optionally hands replicas
    /// over.
    fn process_join_change(&mut self, change: &ResponsibilityChange) {
        if change.kind != MembershipEventKind::Join {
            return;
        }

        let family = &self.family;
        let transfer_data = self.config.transfer_data_on_membership_change;

        // Extract everything from the previous responsible first, then apply
        // it to the new responsible (two sequential mutable borrows).
        let mut exported_counters: Vec<(Key, Timestamp)> = Vec::new();
        let mut moved_records: Vec<(Algorithm, rdht_hashing::HashId, Key, Record)> = Vec::new();
        if let Some(previous) = self.peers.get_mut(&change.from) {
            exported_counters = previous
                .kts_direct
                .export_counters_in_range(|key| change.covers(family.eval_timestamp(key)));
            // RLA Rule 3 in the UMS-Indirect universe: the previous
            // responsible detects the loss of responsibility and invalidates
            // the covered counters without transferring them.
            previous
                .kts_indirect
                .export_counters_in_range(|key| change.covers(family.eval_timestamp(key)));
            if transfer_data {
                for algorithm in Algorithm::ALL {
                    for (hash, key, record) in previous
                        .store_mut(algorithm)
                        .drain_range(change.range_start, change.range_end)
                    {
                        moved_records.push((algorithm, hash, key, record));
                    }
                }
            }
        }
        if let Some(new_responsible) = self.peers.get_mut(&change.to) {
            new_responsible
                .kts_direct
                .receive_transferred_counters(exported_counters);
            for (algorithm, hash, key, record) in moved_records {
                new_responsible.store_mut(algorithm).put(
                    hash,
                    key,
                    record,
                    WritePolicy::KeepNewest,
                );
            }
        }
    }
}
