//! The simulation engine: state, workload processes and the run loop.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdht_hashing::{HashFamily, Key};
use rdht_metrics::{Registry, TraceSink};
use rdht_overlay::chord::{ChordConfig, ChordNetwork};
use rdht_overlay::{NodeId, Overlay};

use rdht_core::{ums, LastTsInitPolicy};

use crate::access::SimAccess;
use crate::algo::Algorithm;
use crate::config::SimConfig;
use crate::metrics::{QuerySample, RunStats, SimulationReport};
use crate::network::NetworkModel;
use crate::peer::PeerState;
use crate::rng::Exponential;
use crate::scheduler::{Event, EventQueue};

/// A full simulation run: the overlay, the per-peer state of the three
/// algorithm universes, the workload processes and the metric collection.
///
/// Construction bootstraps a converged Chord ring of `num_peers` peers and
/// performs one initial insert of every data item; [`Simulation::run`] then
/// processes churn, update, stabilization and query events until the
/// configured duration and returns a [`SimulationReport`].
pub struct Simulation {
    pub(crate) config: SimConfig,
    pub(crate) family: HashFamily,
    pub(crate) network: NetworkModel,
    pub(crate) overlay: ChordNetwork,
    pub(crate) peers: HashMap<NodeId, PeerState>,
    pub(crate) keys: Vec<Key>,
    /// Ring position of each workload key under each replication hash
    /// function (`key_positions[key_index][hash_index]`). Positions depend
    /// only on the hash family, so they are computed once at construction
    /// and reused by every update, query and inspection event.
    pub(crate) key_positions: Vec<Box<[u64]>>,
    /// Ring position of each workload key under the timestamping function.
    pub(crate) ts_positions: Vec<u64>,
    /// Sequence number of the latest update applied to each key.
    pub(crate) update_sequence: Vec<u64>,
    /// Payload of the latest committed update for each key (ground truth for
    /// the currency checks).
    pub(crate) latest_payload: Vec<Vec<u8>>,
    pub(crate) rng: StdRng,
    pub(crate) queue: EventQueue,
    pub(crate) stats: RunStats,
    pub(crate) last_ts_policy: LastTsInitPolicy,
    samples: Vec<QuerySample>,
    /// When attached, every processed event is recorded as a chrome-trace
    /// event with its **simulated** timestamp — `None` by default, so runs
    /// carry no instrumentation and reports stay bit-for-bit deterministic.
    trace: Option<TraceSink>,
    /// Deterministic trace id of the next traced query span. Derived from a
    /// plain counter — **never** from the workload RNG — and only advanced
    /// inside the traced branch, so it cannot perturb an untraced run and a
    /// traced run with the same seed always assigns the same ids.
    trace_query_seq: u64,
}

impl Simulation {
    /// Builds a simulation from a configuration. Panics if the configuration
    /// is invalid (see [`SimConfig::validate`]).
    pub fn new(config: SimConfig) -> Self {
        if let Err(problem) = config.validate() {
            panic!("invalid simulation configuration: {problem}");
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let family = HashFamily::new(config.num_replicas, config.seed ^ 0x00ff_00ff_00ff_00ff);
        let network = config.network.model();

        // Bootstrap a converged ring with `num_peers` random identifiers.
        let mut ids = std::collections::BTreeSet::new();
        while ids.len() < config.num_peers {
            ids.insert(NodeId(rng.gen()));
        }
        let chord_config = ChordConfig {
            successor_list_len: config.successor_list_len,
            finger_bits: 64,
            fingers_fixed_per_round: config.fingers_fixed_per_round,
            max_routing_steps: 512,
        };
        let overlay = ChordNetwork::bootstrap(ids.iter().copied(), chord_config);
        let peers = ids.iter().map(|id| (*id, PeerState::new())).collect();

        let keys: Vec<Key> = (0..config.num_keys)
            .map(|i| Key::new(format!("data-{i}")))
            .collect();
        let key_positions: Vec<Box<[u64]>> = keys
            .iter()
            .map(|key| {
                family
                    .replication_functions()
                    .iter()
                    .map(|h| h.eval(key))
                    .collect()
            })
            .collect();
        let ts_positions: Vec<u64> = keys.iter().map(|key| family.eval_timestamp(key)).collect();
        let update_sequence = vec![0; config.num_keys];
        let latest_payload = vec![Vec::new(); config.num_keys];

        Simulation {
            family,
            network,
            overlay,
            peers,
            keys,
            key_positions,
            ts_positions,
            update_sequence,
            latest_payload,
            rng,
            queue: EventQueue::new(),
            stats: RunStats::default(),
            last_ts_policy: LastTsInitPolicy::ObservedMax,
            samples: Vec::new(),
            trace: None,
            trace_query_seq: 0,
            config,
        }
    }

    /// Attaches a chrome-trace sink: every event the run loop processes is
    /// recorded at its simulated time (virtual seconds mapped to trace
    /// microseconds), and each measured query additionally records one
    /// complete event per algorithm whose duration is the simulated
    /// response time. Attach before [`Simulation::run`]; render the result
    /// with [`TraceSink::render_chrome_trace`] or write it to a
    /// `trace.json` loadable in `chrome://tracing` / Perfetto.
    ///
    /// Tracing never touches the workload's random sequence, so a traced
    /// run returns exactly the report an untraced one does.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// The configuration this simulation was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The shared hash family.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.queue.now()
    }

    /// Number of live peers (constant over a run by construction).
    pub fn live_peers(&self) -> usize {
        self.overlay.len()
    }

    /// The workload keys.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Sums the KTS work counters of every live peer in one UMS universe
    /// (`None` for BRK, which has no timestamping service). Peers that
    /// already departed took their counters with them, so this measures the
    /// work the *surviving* population performed — the quantity the direct
    /// vs crash-and-indirect comparison reads off after a churn run.
    pub fn total_kts_stats(&self, algorithm: Algorithm) -> Option<rdht_core::kts::KtsStats> {
        use rdht_core::kts::KtsStats;
        let mut total = KtsStats::default();
        let mut any = false;
        for peer in self.peers.values() {
            let kts = peer.kts(algorithm)?;
            let stats = kts.stats();
            total.timestamps_generated += stats.timestamps_generated;
            total.last_ts_served += stats.last_ts_served;
            total.counters_received_directly += stats.counters_received_directly;
            total.indirect_initializations += stats.indirect_initializations;
            total.corrections += stats.corrections;
            total.recovery_floor_seeds += stats.recovery_floor_seeds;
            any = true;
        }
        any.then_some(total)
    }

    /// Picks a uniformly random live peer without materializing the member
    /// list (the old `alive_ids()` call cloned the whole ring — one `O(n)`
    /// `Vec` per event at 10k peers).
    pub(crate) fn random_alive_peer(&mut self) -> Option<NodeId> {
        let count = self.overlay.alive_count();
        if count == 0 {
            return None;
        }
        let index = self.rng.gen_range(0..count);
        self.overlay.sample_alive(index)
    }

    /// Runs the simulation to completion and returns the collected report.
    pub fn run(&mut self) -> SimulationReport {
        self.initial_load();
        self.schedule_initial_events();

        while let Some((time, event)) = self.queue.pop() {
            if time > self.config.duration {
                break;
            }
            if let Some(trace) = &self.trace {
                trace.instant_at(event_name(&event), TRACE_PID_EVENTS, 0, trace_us(time));
            }
            match event {
                Event::PeerDeparture => self.handle_departure(),
                Event::Join => self.handle_churn_join(),
                Event::GracefulLeave => self.handle_churn_graceful_leave(),
                Event::Crash => self.handle_churn_crash(),
                Event::UpdateData { key_index } => self.handle_update(key_index),
                Event::Stabilize => self.handle_stabilize(),
                Event::PeriodicInspection => self.handle_inspection(),
                Event::Query => self.handle_query(),
            }
        }

        SimulationReport {
            samples: std::mem::take(&mut self.samples),
            stats: self.stats,
            num_peers: self.config.num_peers,
            num_replicas: self.config.num_replicas,
            duration: self.config.duration,
        }
    }

    /// Inserts every data item once so that queries issued early in the run
    /// have something to retrieve (the paper's workload starts from a
    /// populated DHT).
    fn initial_load(&mut self) {
        for key_index in 0..self.keys.len() {
            self.apply_update(key_index);
        }
        // The initial population is not part of the measured workload.
        self.stats.updates = 0;
    }

    fn schedule_initial_events(&mut self) {
        let duration = self.config.duration;
        // Churn process.
        if self.config.churn_rate_per_second > 0.0 && self.config.num_peers > 2 {
            let inter = Exponential::new(self.config.churn_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_at(inter, Event::PeerDeparture);
        }
        // Uncompensated membership processes (elastic population). Disabled
        // at the default rate of 0.0, so runs without them consume exactly
        // the same random sequence as before these events existed.
        if self.config.join_rate_per_second > 0.0 {
            let inter = Exponential::new(self.config.join_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_at(inter, Event::Join);
        }
        if self.config.graceful_leave_rate_per_second > 0.0 && self.config.num_peers > 2 {
            let inter =
                Exponential::new(self.config.graceful_leave_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_at(inter, Event::GracefulLeave);
        }
        if self.config.crash_rate_per_second > 0.0 && self.config.num_peers > 2 {
            let inter = Exponential::new(self.config.crash_rate_per_second).sample(&mut self.rng);
            self.queue.schedule_at(inter, Event::Crash);
        }
        // Update process per data item.
        if self.config.update_rate_per_hour > 0.0 {
            let rate_per_second = self.config.update_rate_per_hour / 3600.0;
            for key_index in 0..self.keys.len() {
                let inter = Exponential::new(rate_per_second).sample(&mut self.rng);
                self.queue
                    .schedule_at(inter, Event::UpdateData { key_index });
            }
        }
        // Stabilization rounds.
        if self.config.stabilize_interval > 0.0 {
            self.queue
                .schedule_at(self.config.stabilize_interval, Event::Stabilize);
        }
        // Periodic-inspection rounds (Section 4.2.2).
        if self.config.inspection_interval > 0.0 {
            self.queue
                .schedule_at(self.config.inspection_interval, Event::PeriodicInspection);
        }
        // Queries at uniformly random times.
        for _ in 0..self.config.queries {
            let t = self.rng.gen_range(0.0..duration);
            self.queue.schedule_at(t, Event::Query);
        }
    }

    fn handle_stabilize(&mut self) {
        self.overlay.stabilize();
        self.stats.stabilize_rounds += 1;
        self.queue
            .schedule_in(self.config.stabilize_interval, Event::Stabilize);
    }

    /// Periodic inspection (Section 4.2.2): the current responsible of
    /// timestamping for each key compares its counter with the largest
    /// timestamp stored among the key's replicas and raises it if it is
    /// behind. This is the background safety net for the rare cases where the
    /// indirect initialization missed the latest timestamp after a failure.
    fn handle_inspection(&mut self) {
        self.stats.inspection_rounds += 1;
        const UNIVERSES: [Algorithm; 2] = [Algorithm::UmsDirect, Algorithm::UmsIndirect];
        for key_index in 0..self.keys.len() {
            let key = self.keys[key_index].clone();
            let Some(responsible) = self.overlay.responsible_for(self.ts_positions[key_index])
            else {
                continue;
            };
            // Largest timestamp stored at the ground-truth replica holders in
            // each UMS universe. Each (key, hash) position and its holder are
            // resolved once and shared by both universes — both stores live
            // on the same peer, so the per-hash holder lookup is identical.
            let mut observed: [Option<u64>; 2] = [None, None];
            for (hash_index, hash) in self.family.replication_ids().enumerate() {
                let position = self.key_positions[key_index][hash_index];
                let Some(holder) = self.overlay.responsible_for(position) else {
                    continue;
                };
                let Some(peer) = self.peers.get(&holder) else {
                    continue;
                };
                for (universe, slot) in UNIVERSES.iter().zip(observed.iter_mut()) {
                    if let Some(record) = peer.store(*universe).get(hash, &key) {
                        *slot = Some(slot.map_or(record.stamp, |m| m.max(record.stamp)));
                    }
                }
            }
            for (universe, slot) in UNIVERSES.iter().zip(observed) {
                let Some(observed) = slot else { continue };
                if let Some(kts) = self
                    .peers
                    .get_mut(&responsible)
                    .and_then(|peer| peer.kts_mut(*universe))
                {
                    if kts
                        .inspect_key(&key, rdht_core::Timestamp(observed))
                        .is_some()
                    {
                        self.stats.inspection_corrections += 1;
                    }
                }
            }
        }
        self.queue
            .schedule_in(self.config.inspection_interval, Event::PeriodicInspection);
    }

    /// Applies one update to `key_index` in all three universes, with a
    /// shared per-replica write-failure plan so that the universes stay
    /// comparable, and records the committed payload.
    pub(crate) fn apply_update(&mut self, key_index: usize) {
        let Some(origin) = self.random_alive_peer() else {
            return;
        };
        self.update_sequence[key_index] += 1;
        let sequence = self.update_sequence[key_index];
        let key = self.keys[key_index].clone();
        let payload = format!("{}#{}", key.display_lossy(), sequence).into_bytes();

        // Decide once which replica writes are lost (transiently unreachable
        // holders), and share the same plan with every universe by reference
        // (the set used to be cloned once per universe).
        let failure_probability = self.config.put_failure_probability;
        let forced_failures: std::collections::HashSet<rdht_hashing::HashId> = self
            .family
            .replication_ids()
            .filter(|_| self.rng.gen_bool(failure_probability))
            .collect();

        let mut committed = false;
        for algorithm in [Algorithm::UmsDirect, Algorithm::UmsIndirect] {
            let mut access =
                SimAccess::new(self, origin, algorithm).with_forced_put_failures(&forced_failures);
            if let Ok(report) = ums::insert(&mut access, &key, payload.clone()) {
                committed |= report.replicas_written > 0;
            }
        }
        {
            let mut access = SimAccess::new(self, origin, Algorithm::Brk)
                .with_forced_put_failures(&forced_failures);
            if let Ok(report) = rdht_baseline::insert(&mut access, &key, payload.clone()) {
                committed |= report.replicas_written > 0;
            }
        }
        if committed {
            self.latest_payload[key_index] = payload;
        }
        self.stats.updates += 1;
    }

    fn handle_update(&mut self, key_index: usize) {
        self.apply_update(key_index);
        if self.config.update_rate_per_hour > 0.0 {
            let rate_per_second = self.config.update_rate_per_hour / 3600.0;
            let inter = Exponential::new(rate_per_second).sample(&mut self.rng);
            self.queue
                .schedule_in(inter, Event::UpdateData { key_index });
        }
    }

    fn handle_query(&mut self) {
        let Some(origin) = self.random_alive_peer() else {
            return;
        };
        let key_index = self.rng.gen_range(0..self.keys.len());
        let key = self.keys[key_index].clone();
        let time = self.now();
        self.stats.queries += 1;

        for algorithm in Algorithm::ALL {
            let currency = self.measure_currency(key_index, algorithm);
            let sample = match algorithm {
                Algorithm::UmsDirect | Algorithm::UmsIndirect => {
                    let mut access = SimAccess::new(self, origin, algorithm);
                    match ums::retrieve(&mut access, &key) {
                        Ok(report) => {
                            let (elapsed, messages) = access.cost();
                            let returned_latest = report.data.as_deref()
                                == Some(self.latest_payload[key_index].as_slice());
                            Some(QuerySample {
                                time,
                                algorithm,
                                key_index,
                                response_time: elapsed,
                                messages,
                                replicas_probed: report.replicas_probed,
                                certified_current: report.is_current,
                                returned_latest,
                                currency_availability: currency,
                            })
                        }
                        Err(_) => None,
                    }
                }
                Algorithm::Brk => {
                    let mut access = SimAccess::new(self, origin, algorithm);
                    match rdht_baseline::retrieve(&mut access, &key) {
                        Ok(report) => {
                            let (elapsed, messages) = access.cost();
                            let returned_latest = report.data.as_deref()
                                == Some(self.latest_payload[key_index].as_slice());
                            Some(QuerySample {
                                time,
                                algorithm,
                                key_index,
                                response_time: elapsed,
                                messages,
                                replicas_probed: report.replicas_probed,
                                certified_current: false,
                                returned_latest,
                                currency_availability: currency,
                            })
                        }
                        Err(_) => None,
                    }
                }
            };
            if let Some(sample) = sample {
                if let Some(trace) = &self.trace {
                    // One lane per algorithm; the span's length is the
                    // simulated response time the figures plot. The span
                    // carries a deterministic trace id (a counter, not the
                    // RNG) so sim traces merge with live ones on equal
                    // footing — same `trace_id` args key, same format.
                    self.trace_query_seq += 1;
                    trace.complete_with_args(
                        algorithm.label(),
                        TRACE_PID_QUERIES,
                        trace_tid(algorithm),
                        trace_us(time),
                        trace_us(sample.response_time),
                        vec![(
                            "trace_id".to_string(),
                            format!("{:016x}", self.trace_query_seq),
                        )],
                    );
                }
                self.samples.push(sample);
            }
        }
    }

    /// Exports one live peer's state as a metrics registry snapshot:
    /// per-universe KTS work counters and stored-replica gauges, labeled
    /// with the peer's overlay id and the universe. Built on demand — the
    /// run itself carries no instrumentation — and named to mirror the live
    /// instruments of the threaded deployment (see
    /// [`crate::metrics::names`]). `None` for an id that is not a live
    /// member.
    pub fn peer_registry(&self, id: NodeId) -> Option<Registry> {
        use crate::metrics::names;
        let peer = self.peers.get(&id)?;
        let registry = Registry::new();
        let peer_label = format!("{:016x}", id.0);
        for algorithm in Algorithm::ALL {
            let labels = [
                ("peer", peer_label.as_str()),
                ("universe", algorithm.label()),
            ];
            registry
                .gauge(
                    names::STORED_REPLICAS,
                    "replicas currently stored by the peer in one universe",
                    &labels,
                )
                .set(peer.store(algorithm).len() as i64);
            let Some(kts) = peer.kts(algorithm) else {
                continue;
            };
            let stats = kts.stats();
            let counters = [
                (
                    names::KTS_TIMESTAMPS,
                    "timestamps generated (gen_ts served)",
                    stats.timestamps_generated,
                ),
                (
                    names::KTS_LAST_TS,
                    "last_ts requests served",
                    stats.last_ts_served,
                ),
                (
                    names::KTS_DIRECT_RECEIPTS,
                    "counters received through the direct transfer",
                    stats.counters_received_directly,
                ),
                (
                    names::KTS_INDIRECT_INITS,
                    "counters initialized with the indirect algorithm",
                    stats.indirect_initializations,
                ),
                (
                    names::KTS_CORRECTIONS,
                    "counters corrected by recovery or periodic inspection",
                    stats.corrections,
                ),
                (
                    names::KTS_RECOVERY_FLOORS,
                    "indirect initializations raised by a recovered durable counter",
                    stats.recovery_floor_seeds,
                ),
            ];
            for (name, help, value) in counters {
                registry.counter(name, help, &labels).add(value);
            }
        }
        Some(registry)
    }

    /// Registry snapshots of every live peer, in overlay-id order.
    pub fn export_registries(&self) -> Vec<(NodeId, Registry)> {
        let mut ids: Vec<NodeId> = self.peers.keys().copied().collect();
        ids.sort();
        ids.into_iter()
            .filter_map(|id| Some((id, self.peer_registry(id)?)))
            .collect()
    }

    /// Measures the probability of currency and availability `p_t` for one
    /// key in one universe: the fraction of replica slots whose ground-truth
    /// responsible currently stores the latest committed payload.
    pub fn measure_currency(&self, key_index: usize, algorithm: Algorithm) -> f64 {
        let key = &self.keys[key_index];
        let latest = &self.latest_payload[key_index];
        if latest.is_empty() {
            return 0.0;
        }
        let mut current = 0usize;
        let mut total = 0usize;
        for (hash_index, hash) in self.family.replication_ids().enumerate() {
            total += 1;
            let position = self.key_positions[key_index][hash_index];
            let Some(responsible) = self.overlay.responsible_for(position) else {
                continue;
            };
            let Some(peer) = self.peers.get(&responsible) else {
                continue;
            };
            if let Some(record) = peer.store(algorithm).get(hash, key) {
                if record.payload == *latest {
                    current += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            current as f64 / total as f64
        }
    }
}

/// Trace process id of the run-loop event lane.
const TRACE_PID_EVENTS: u64 = 0;
/// Trace process id of the per-algorithm query lanes.
const TRACE_PID_QUERIES: u64 = 1;

/// Maps virtual seconds onto chrome-trace microseconds.
fn trace_us(seconds: f64) -> u64 {
    (seconds * 1_000_000.0) as u64
}

/// One trace lane (thread id) per algorithm, in the reporting order.
fn trace_tid(algorithm: Algorithm) -> u64 {
    match algorithm {
        Algorithm::Brk => 0,
        Algorithm::UmsIndirect => 1,
        Algorithm::UmsDirect => 2,
    }
}

/// The chrome-trace name of a workload event.
fn event_name(event: &Event) -> &'static str {
    match event {
        Event::PeerDeparture => "peer_departure",
        Event::Join => "join",
        Event::GracefulLeave => "graceful_leave",
        Event::Crash => "crash",
        Event::UpdateData { .. } => "update",
        Event::Stabilize => "stabilize",
        Event::PeriodicInspection => "inspection",
        Event::Query => "query",
    }
}
