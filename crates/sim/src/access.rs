//! `SimAccess`: executes UMS/BRK operations against the simulated overlay
//! while accumulating simulated time and message counts.

use std::collections::HashSet;

use rdht_hashing::{HashId, Key};
use rdht_net::fault::End;
use rdht_overlay::{LookupError, NodeId, Overlay, Record, WritePolicy};

use rdht_baseline::{BrkAccess, Version, VersionedValue};
use rdht_core::kts::IndirectObservation;
use rdht_core::{ReplicaValue, Timestamp, UmsAccess, UmsError};

use crate::algo::Algorithm;
use crate::simulation::Simulation;

/// A cost-accounting view of the simulated DHT, bound to one origin peer and
/// one algorithm universe.
///
/// Every [`UmsAccess`] / [`BrkAccess`] call is executed against the real
/// overlay (routing hops, timeouts, lazy repair) and the per-peer stores of
/// the chosen universe, and its cost is added to the running totals returned
/// by [`SimAccess::cost`]. The paper's response time and message-count
/// metrics are exactly these totals.
pub struct SimAccess<'a> {
    sim: &'a mut Simulation,
    origin: NodeId,
    algorithm: Algorithm,
    elapsed: f64,
    messages: u64,
    forced_put_failures: Option<&'a HashSet<HashId>>,
}

impl<'a> SimAccess<'a> {
    /// Creates an access context for `origin` in the given algorithm
    /// universe.
    pub fn new(sim: &'a mut Simulation, origin: NodeId, algorithm: Algorithm) -> Self {
        SimAccess {
            sim,
            origin,
            algorithm,
            elapsed: 0.0,
            messages: 0,
            forced_put_failures: None,
        }
    }

    /// Marks a set of replication hash functions whose writes will not reach
    /// their holder (transiently unreachable peers). Used by the update
    /// workload so that all algorithm universes share the same failure plan —
    /// by reference, so one plan serves every universe without clones.
    pub fn with_forced_put_failures(mut self, failures: &'a HashSet<HashId>) -> Self {
        self.forced_put_failures = Some(failures);
        self
    }

    fn put_is_forced_to_fail(&self, hash: HashId) -> bool {
        self.forced_put_failures
            .is_some_and(|failures| failures.contains(&hash))
    }

    /// Rolls the configured fault plan for the data message
    /// `origin → holder`. A dropped message costs the sender a full timeout
    /// (it waits for an ack or response that never comes) — the same penalty
    /// a transiently unreachable peer incurs.
    fn data_message_dropped(&mut self, holder: NodeId) -> bool {
        let dropped = self
            .sim
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|plan| plan.roll_drop(End::Peer(self.origin.0), End::Peer(holder.0)));
        if dropped {
            self.elapsed += self.sim.network.timeout_penalty();
            self.messages += 1;
        }
        dropped
    }

    /// The accumulated cost: (simulated seconds, messages).
    pub fn cost(&self) -> (f64, u64) {
        (self.elapsed, self.messages)
    }

    /// The origin peer of this context.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// The algorithm universe of this context.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    fn charge_control(&mut self) {
        self.elapsed += self.sim.network.control_delay(&mut self.sim.rng);
        self.messages += 1;
    }

    fn charge_data(&mut self) {
        self.elapsed += self.sim.network.data_delay(&mut self.sim.rng);
        self.messages += 1;
    }

    /// Routes a lookup and charges its hops and timeouts.
    fn lookup_priced(&mut self, from: NodeId, position: u64) -> Result<NodeId, UmsError> {
        match self.sim.overlay.lookup(from, position) {
            Ok(outcome) => {
                for _ in 0..outcome.hops {
                    self.elapsed += self.sim.network.control_delay(&mut self.sim.rng);
                }
                self.elapsed += f64::from(outcome.timeouts) * self.sim.network.timeout_penalty();
                self.messages += u64::from(outcome.hops) + u64::from(outcome.timeouts);
                Ok(outcome.responsible)
            }
            Err(LookupError::RoutingExhausted { messages, timeouts }) => {
                self.elapsed += f64::from(messages - timeouts)
                    * self.sim.network.control_delay(&mut self.sim.rng)
                    + f64::from(timeouts) * self.sim.network.timeout_penalty();
                self.messages += u64::from(messages);
                Err(UmsError::lookup("routing exhausted"))
            }
            Err(error) => Err(UmsError::lookup(error.to_string())),
        }
    }

    /// Runs the indirect counter initialization from the timestamping
    /// responsible: reads the key's replicas under every replication hash
    /// function and returns the largest timestamp observed (Figure 5 of the
    /// paper), charging `|Hr|` lookups and responses.
    fn collect_indirect_observation(
        &mut self,
        responsible: NodeId,
        key: &Key,
    ) -> IndirectObservation {
        let mut max_observed: Option<Timestamp> = None;
        // Iterate by index so the borrow of the family does not outlive the
        // mutable borrows below (no id vector is materialized).
        for hash_index in 0..self.sim.family.num_replication() {
            let hash = HashId(hash_index as u32);
            let position = self.sim.family.eval(hash, key);
            let Ok(holder) = self.lookup_priced(responsible, position) else {
                continue;
            };
            let stamp = self
                .sim
                .peers
                .get(&holder)
                .and_then(|peer| peer.store(self.algorithm).get(hash, key))
                .map(|record| record.stamp);
            match stamp {
                Some(stamp) => {
                    self.charge_data();
                    let ts = Timestamp(stamp);
                    if max_observed.map(|m| ts > m).unwrap_or(true) {
                        max_observed = Some(ts);
                    }
                }
                None => self.charge_control(),
            }
        }
        match max_observed {
            Some(ts) => IndirectObservation::observed(ts),
            None => IndirectObservation::nothing(),
        }
    }

    /// Shared implementation of the two KTS client calls: route to the
    /// timestamping responsible, run the indirect initialization if its
    /// counter is missing, then serve the request.
    fn kts_request(&mut self, key: &Key, generate: bool) -> Result<Timestamp, UmsError> {
        if self.algorithm == Algorithm::Brk {
            return Err(UmsError::kts("BRK has no timestamping service"));
        }
        let ts_position = self.sim.family.eval_timestamp(key);
        let responsible = self.lookup_priced(self.origin, ts_position)?;

        let needs_init = self
            .sim
            .peers
            .get(&responsible)
            .and_then(|peer| peer.kts(self.algorithm))
            .map(|kts| !kts.has_counter(key))
            .unwrap_or(true);
        let observation = if needs_init {
            self.collect_indirect_observation(responsible, key)
        } else {
            IndirectObservation::nothing()
        };

        // The responsible's reply to the timestamp request.
        self.charge_control();

        let policy = self.sim.last_ts_policy;
        let peer = self
            .sim
            .peers
            .get_mut(&responsible)
            .ok_or_else(|| UmsError::kts("timestamping responsible vanished"))?;
        let kts = peer
            .kts_mut(self.algorithm)
            .ok_or_else(|| UmsError::kts("algorithm has no timestamping service"))?;
        let timestamp = if generate {
            kts.gen_ts(key, || observation).timestamp
        } else {
            kts.last_ts(key, policy, || observation).timestamp
        };
        Ok(timestamp)
    }
}

impl UmsAccess for SimAccess<'_> {
    fn kts_gen_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.kts_request(key, true)
    }

    fn kts_last_ts(&mut self, key: &Key) -> Result<Timestamp, UmsError> {
        self.kts_request(key, false)
    }

    fn put_replica(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &ReplicaValue,
    ) -> Result<(), UmsError> {
        let position = self.sim.family.eval(hash, key);
        let holder = self.lookup_priced(self.origin, position)?;
        if self.put_is_forced_to_fail(hash) {
            // The data message is lost; the writer waits for an ack that never
            // arrives.
            self.elapsed += self.sim.network.timeout_penalty();
            self.messages += 1;
            return Err(UmsError::lookup("replica holder transiently unreachable"));
        }
        if self.data_message_dropped(holder) {
            return Err(UmsError::lookup("replica write lost (fault plan)"));
        }
        self.charge_data();
        self.charge_control();
        let peer = self
            .sim
            .peers
            .get_mut(&holder)
            .ok_or_else(|| UmsError::lookup("replica holder vanished"))?;
        peer.store_mut(self.algorithm).put(
            hash,
            key.clone(),
            Record {
                payload: value.data.clone(),
                stamp: value.timestamp.0,
                position,
            },
            WritePolicy::KeepNewest,
        );
        Ok(())
    }

    fn get_replica(&mut self, hash: HashId, key: &Key) -> Result<Option<ReplicaValue>, UmsError> {
        let position = self.sim.family.eval(hash, key);
        let holder = self.lookup_priced(self.origin, position)?;
        if self.data_message_dropped(holder) {
            return Err(UmsError::lookup("replica probe lost (fault plan)"));
        }
        let record = self
            .sim
            .peers
            .get(&holder)
            .and_then(|peer| peer.store(self.algorithm).get(hash, key))
            .cloned();
        match record {
            Some(record) => {
                self.charge_data();
                Ok(Some(ReplicaValue::new(
                    record.payload,
                    Timestamp(record.stamp),
                )))
            }
            None => {
                self.charge_control();
                Ok(None)
            }
        }
    }

    fn replication_count(&self) -> usize {
        self.sim.family.num_replication()
    }
}

impl BrkAccess for SimAccess<'_> {
    fn put_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
        value: &VersionedValue,
    ) -> Result<(), UmsError> {
        let position = self.sim.family.eval(hash, key);
        let holder = self.lookup_priced(self.origin, position)?;
        if self.put_is_forced_to_fail(hash) {
            self.elapsed += self.sim.network.timeout_penalty();
            self.messages += 1;
            return Err(UmsError::lookup("replica holder transiently unreachable"));
        }
        if self.data_message_dropped(holder) {
            return Err(UmsError::lookup("replica write lost (fault plan)"));
        }
        self.charge_data();
        self.charge_control();
        let peer = self
            .sim
            .peers
            .get_mut(&holder)
            .ok_or_else(|| UmsError::lookup("replica holder vanished"))?;
        peer.store_mut(self.algorithm).put(
            hash,
            key.clone(),
            Record {
                payload: value.data.clone(),
                stamp: value.version.0,
                position,
            },
            WritePolicy::KeepNewest,
        );
        Ok(())
    }

    fn get_versioned(
        &mut self,
        hash: HashId,
        key: &Key,
    ) -> Result<Option<VersionedValue>, UmsError> {
        let position = self.sim.family.eval(hash, key);
        let holder = self.lookup_priced(self.origin, position)?;
        if self.data_message_dropped(holder) {
            return Err(UmsError::lookup("replica probe lost (fault plan)"));
        }
        let record = self
            .sim
            .peers
            .get(&holder)
            .and_then(|peer| peer.store(self.algorithm).get(hash, key))
            .cloned();
        match record {
            Some(record) => {
                self.charge_data();
                Ok(Some(VersionedValue::new(
                    record.payload,
                    Version(record.stamp),
                )))
            }
            None => {
                self.charge_control();
                Ok(None)
            }
        }
    }

    fn replication_count(&self) -> usize {
        self.sim.family.num_replication()
    }
}
