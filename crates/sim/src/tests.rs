//! Simulator-level tests: determinism, currency guarantees, cost ordering.

use crate::{Algorithm, SimConfig, Simulation};

fn run(config: SimConfig) -> crate::SimulationReport {
    Simulation::new(config).run()
}

#[test]
fn small_run_produces_samples_for_every_algorithm() {
    let report = run(SimConfig::small_test(48, 1));
    for algorithm in Algorithm::ALL {
        let summary = report.summary(algorithm);
        assert!(summary.count > 0, "no samples for {algorithm}");
        assert!(summary.mean_response_time > 0.0);
        assert!(summary.mean_messages > 0.0);
    }
    assert!(report.stats.queries > 0);
    assert!(report.stats.updates > 0);
}

#[test]
fn same_seed_is_deterministic() {
    let a = run(SimConfig::small_test(48, 42));
    let b = run(SimConfig::small_test(48, 42));
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.algorithm, y.algorithm);
        assert_eq!(x.key_index, y.key_index);
        assert_eq!(x.messages, y.messages);
        assert!((x.response_time - y.response_time).abs() < 1e-9);
    }
    assert_eq!(a.stats, b.stats);
}

#[test]
fn different_seeds_differ() {
    let a = run(SimConfig::small_test(48, 1));
    let b = run(SimConfig::small_test(48, 2));
    // Extremely unlikely to coincide exactly.
    let identical = a.samples.len() == b.samples.len()
        && a.samples
            .iter()
            .zip(&b.samples)
            .all(|(x, y)| (x.response_time - y.response_time).abs() < 1e-12);
    assert!(!identical);
}

#[test]
fn ums_is_cheaper_than_brk() {
    // The headline result: UMS probes far fewer replicas, so both its
    // response time and its message count are below BRK's.
    let report = run(SimConfig::small_test(64, 3));
    let ums = report.summary(Algorithm::UmsDirect);
    let brk = report.summary(Algorithm::Brk);
    assert!(
        ums.mean_response_time < brk.mean_response_time,
        "UMS {} vs BRK {}",
        ums.mean_response_time,
        brk.mean_response_time
    );
    assert!(ums.mean_messages < brk.mean_messages);
    assert!(ums.mean_replicas_probed < brk.mean_replicas_probed);
}

#[test]
fn brk_probes_every_replica() {
    let config = SimConfig::small_test(48, 4);
    let replicas = config.num_replicas;
    let report = run(config);
    for sample in report.samples_for(Algorithm::Brk) {
        assert_eq!(sample.replicas_probed, replicas);
    }
}

#[test]
fn ums_returns_latest_committed_data() {
    // With moderate churn, UMS queries overwhelmingly return the latest
    // committed payload, and certified-current answers are always correct.
    let report = run(SimConfig::small_test(64, 5));
    for algorithm in [Algorithm::UmsDirect, Algorithm::UmsIndirect] {
        let mut certified = 0;
        for sample in report.samples_for(algorithm) {
            if sample.certified_current {
                certified += 1;
                assert!(
                    sample.returned_latest,
                    "{algorithm} certified a non-latest answer as current"
                );
            }
        }
        assert!(
            certified > 0,
            "no certified-current answers for {algorithm}"
        );
    }
}

#[test]
fn query_probes_respect_replica_bound() {
    let config = SimConfig::small_test(48, 6);
    let replicas = config.num_replicas;
    let report = run(config);
    for sample in &report.samples {
        assert!(sample.replicas_probed <= replicas);
        assert!(sample.response_time >= 0.0);
        assert!((0.0..=1.0).contains(&sample.currency_availability));
    }
}

#[test]
fn population_stays_constant_under_churn() {
    let config = SimConfig::small_test(40, 7);
    let peers = config.num_peers;
    let mut sim = Simulation::new(config);
    let report = sim.run();
    assert_eq!(sim.live_peers(), peers);
    assert_eq!(
        report.stats.joins,
        report.stats.leaves + report.stats.failures
    );
    assert!(
        report.stats.joins > 0,
        "the churn process should have fired"
    );
}

#[test]
fn zero_churn_and_zero_updates_still_works() {
    let mut config = SimConfig::small_test(24, 8);
    config.churn_rate_per_second = 0.0;
    config.update_rate_per_hour = 0.0;
    let report = run(config);
    // Only the initial load populated the DHT; queries still find data and
    // everything is current because nothing ever changed.
    for sample in &report.samples {
        assert!(sample.returned_latest, "static data must always be current");
    }
    assert_eq!(report.stats.failures + report.stats.leaves, 0);
}

#[test]
fn higher_replica_count_increases_brk_cost_but_not_ums_direct() {
    let few = run(SimConfig::small_test(48, 9).with_num_replicas(4));
    let many = run(SimConfig::small_test(48, 9).with_num_replicas(16));
    let brk_few = few.summary(Algorithm::Brk);
    let brk_many = many.summary(Algorithm::Brk);
    assert!(
        brk_many.mean_messages > brk_few.mean_messages * 2.0,
        "BRK cost should grow roughly linearly with the replica count"
    );
    let ums_few = few.summary(Algorithm::UmsDirect);
    let ums_many = many.summary(Algorithm::UmsDirect);
    assert!(
        ums_many.mean_messages < ums_few.mean_messages * 2.0,
        "UMS-Direct cost should not grow linearly with the replica count"
    );
}

#[test]
fn measure_currency_reflects_store_state() {
    let mut sim = Simulation::new(SimConfig::small_test(32, 10));
    // Before any load, currency is zero.
    assert_eq!(sim.measure_currency(0, Algorithm::UmsDirect), 0.0);
    let report = sim.run();
    assert!(report.samples.iter().any(|s| s.currency_availability > 0.0));
}

#[test]
fn sparse_maintenance_costs_more_under_churn() {
    // Ablation for the maintenance design choice: with rare stabilization and
    // few fingers refreshed per round, stale routing entries linger, lookups
    // pay more timeouts, and the same query workload gets slower.
    let mut aggressive = SimConfig::small_test(96, 14);
    aggressive.churn_rate_per_second *= 4.0;
    aggressive.stabilize_interval = 15.0;
    aggressive.fingers_fixed_per_round = 16;
    let mut sparse = aggressive.clone();
    sparse.stabilize_interval = 240.0;
    sparse.fingers_fixed_per_round = 1;

    let fast = run(aggressive).summary(Algorithm::Brk);
    let slow = run(sparse).summary(Algorithm::Brk);
    assert!(
        slow.mean_response_time >= fast.mean_response_time,
        "sparse maintenance should not be faster (sparse {} vs aggressive {})",
        slow.mean_response_time,
        fast.mean_response_time
    );
}

#[test]
fn periodic_inspection_rounds_run_when_enabled() {
    let mut config = SimConfig::small_test(48, 12);
    config.inspection_interval = 120.0;
    let report = run(config);
    assert!(report.stats.inspection_rounds > 0);

    let mut disabled = SimConfig::small_test(48, 12);
    disabled.inspection_interval = 0.0;
    let report = run(disabled);
    assert_eq!(report.stats.inspection_rounds, 0);
    assert_eq!(report.stats.inspection_corrections, 0);
}

#[test]
fn inspection_corrections_restore_lagging_counters() {
    // Force a situation where inspection has something to fix: heavy churn
    // with mostly failures loses timestamping counters while replicas (and
    // their timestamps) survive at other peers, so responsibles that
    // re-initialize too low are eventually corrected. We only require that
    // the machinery runs without violating any query invariant.
    let mut config = SimConfig::small_test(64, 13);
    config.failure_rate = 0.9;
    config.churn_rate_per_second *= 4.0;
    config.inspection_interval = 60.0;
    let report = run(config);
    assert!(report.stats.inspection_rounds > 0);
    for sample in &report.samples {
        if sample.certified_current {
            assert!(sample.returned_latest);
        }
    }
}

#[test]
#[should_panic(expected = "invalid simulation configuration")]
fn invalid_configuration_is_rejected() {
    let mut config = SimConfig::small_test(8, 1);
    config.num_replicas = 0;
    let _ = Simulation::new(config);
}

#[test]
fn uncompensated_joins_grow_the_population() {
    let mut config = SimConfig::small_test(24, 31);
    config.churn_rate_per_second = 0.0;
    config.join_rate_per_second = 24.0 / 300.0; // a few joins over the run
    let mut simulation = Simulation::new(config);
    assert_eq!(simulation.live_peers(), 24);
    let report = simulation.run();
    assert!(report.stats.joins > 0);
    assert_eq!(report.stats.leaves + report.stats.failures, 0);
    assert_eq!(
        simulation.live_peers(),
        24 + report.stats.joins as usize,
        "every Join event grew the ring by one"
    );
}

#[test]
fn uncompensated_graceful_leaves_shrink_and_hand_counters_over() {
    let mut config = SimConfig::small_test(32, 32);
    config.churn_rate_per_second = 0.0;
    config.graceful_leave_rate_per_second = 32.0 / 400.0;
    let mut simulation = Simulation::new(config);
    let report = simulation.run();
    assert!(report.stats.leaves > 0);
    assert_eq!(report.stats.joins, 0);
    assert_eq!(simulation.live_peers(), 32 - report.stats.leaves as usize);
    // The direct universe actually transferred counters on those leaves.
    let direct = simulation
        .total_kts_stats(Algorithm::UmsDirect)
        .expect("UMS universes have KTS state");
    assert!(
        direct.counters_received_directly > 0,
        "graceful leaves must run the direct algorithm"
    );
    assert!(simulation.total_kts_stats(Algorithm::Brk).is_none());
}

#[test]
fn graceful_leave_churn_needs_fewer_indirect_inits_than_crash_churn() {
    // The paired experiment the new events exist for: identical workload
    // and rate, one universe departs gracefully (direct hand-off), the
    // other crashes (counters lost). The crash run must pay strictly more
    // indirect initializations in the direct-transfer universe.
    let base = |seed: u64| {
        let mut config = SimConfig::small_test(32, seed);
        config.churn_rate_per_second = 0.0;
        config.update_rate_per_hour = 60.0;
        config.queries = 20;
        config
    };
    let rate = 32.0 / 200.0;

    let mut graceful = Simulation::new(base(33).with_graceful_leave_rate(rate));
    let graceful_report = graceful.run();
    let graceful_stats = graceful.total_kts_stats(Algorithm::UmsDirect).unwrap();

    let mut crashed = Simulation::new(base(33).with_crash_rate(rate));
    let crashed_report = crashed.run();
    let crashed_stats = crashed.total_kts_stats(Algorithm::UmsDirect).unwrap();

    assert!(graceful_report.stats.leaves > 0);
    assert!(crashed_report.stats.failures > 0);
    assert!(
        graceful_stats.indirect_initializations < crashed_stats.indirect_initializations,
        "direct hand-off ({} indirect inits) must beat crash recovery ({})",
        graceful_stats.indirect_initializations,
        crashed_stats.indirect_initializations
    );
    assert!(graceful_stats.counters_received_directly > 0);
}

#[test]
fn membership_rates_reject_negative_values() {
    assert!(SimConfig::small_test(8, 1)
        .with_join_rate(-1.0)
        .validate()
        .is_err());
    assert!(SimConfig::small_test(8, 1)
        .with_graceful_leave_rate(-0.5)
        .validate()
        .is_err());
    assert!(SimConfig::small_test(8, 1)
        .with_crash_rate(-2.0)
        .validate()
        .is_err());
    assert!(SimConfig::small_test(8, 1)
        .with_join_rate(0.1)
        .with_graceful_leave_rate(0.1)
        .with_crash_rate(0.1)
        .validate()
        .is_ok());
}

#[test]
fn lossy_fault_plan_drops_messages_and_stays_deterministic() {
    use rdht_net::FaultPlan;

    // A fresh plan per run: the plan carries its own per-link RNG state.
    let run_lossy = |seed| {
        let plan = FaultPlan::lossy(seed, 0.1);
        let report = run(SimConfig::small_test(48, 7).with_fault_plan(plan.clone()));
        (report, plan.stats())
    };
    let (a, stats_a) = run_lossy(90);
    let (b, stats_b) = run_lossy(90);
    assert!(
        stats_a.totals.frames_dropped > 0,
        "a 10% lossy plan must drop some simulated data messages"
    );
    assert_eq!(
        stats_a.totals.frames_dropped, stats_b.totals.frames_dropped,
        "the same plan seed must drop the same messages"
    );
    assert_eq!(a.samples.len(), b.samples.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.algorithm, y.algorithm);
        assert_eq!(x.messages, y.messages);
        assert!((x.response_time - y.response_time).abs() < 1e-9);
    }
    assert_eq!(a.stats, b.stats);

    // And the losses are visible: every lost data message costs the sender a
    // full timeout, so the lossy run responds slower than the clean one.
    let clean = run(SimConfig::small_test(48, 7));
    let lossy_rt = a.summary(Algorithm::UmsDirect).mean_response_time;
    let clean_rt = clean.summary(Algorithm::UmsDirect).mean_response_time;
    assert!(
        lossy_rt > clean_rt,
        "lossy {lossy_rt} should exceed clean {clean_rt}"
    );
}

/// A traced run records every workload event at its simulated timestamp,
/// renders a loadable chrome trace, and — because tracing never touches the
/// random sequence — returns exactly the report an untraced run does.
#[test]
fn traced_run_is_deterministic_and_renders_chrome_trace() {
    let config = SimConfig::small_test(48, 11);
    let untraced = run(config.clone());

    let mut sim = Simulation::new(config);
    let sink = rdht_metrics::TraceSink::new();
    sim.attach_trace(sink.clone());
    let traced = sim.run();
    assert_eq!(untraced, traced, "tracing must not perturb the workload");

    assert!(!sink.is_empty(), "the run recorded events");
    let events = sink.events();
    assert!(
        events.iter().any(|e| e.name == "query"),
        "query events appear in the trace"
    );
    assert!(
        events.iter().any(|e| e.name == "UMS-Direct"),
        "per-algorithm query spans appear in the trace"
    );
    // Query spans carry deterministic trace ids (counter-derived, never
    // from the workload RNG) in the same `trace_id` args format live
    // deployments use, so merged sim + live traces correlate uniformly.
    assert!(
        events
            .iter()
            .filter(|e| e.name == "UMS-Direct")
            .all(|e| e.args.iter().any(|(k, v)| k == "trace_id" && v.len() == 16)),
        "per-algorithm query spans carry a 16-hex-digit trace_id arg"
    );
    let rendered = sink.render_chrome_trace();
    assert!(
        rendered.starts_with("{\"traceEvents\":["),
        "chrome trace uses the object format"
    );
    assert!(rendered.trim_end().ends_with("]}"));
    // Timestamps are simulated: all inside the configured duration.
    let duration_us = (sim.config().duration * 1_000_000.0) as u64;
    assert!(events.iter().all(|e| e.ts_us <= duration_us));

    // Two traced runs of the same seed render byte-identical traces: span
    // ids, timestamps and args are all derived from deterministic state.
    let mut again = Simulation::new(sim.config().clone());
    let second_sink = rdht_metrics::TraceSink::new();
    again.attach_trace(second_sink.clone());
    let second = again.run();
    assert_eq!(traced, second);
    assert_eq!(
        rendered,
        second_sink.render_chrome_trace(),
        "a traced rerun must reproduce the trace byte for byte"
    );
}

/// The exported per-peer registries carry the KTS work counters and stored
/// replica gauges of every universe, and the sum over peers matches the
/// totals the report computes.
#[test]
fn exported_peer_registries_mirror_kts_totals() {
    let config = SimConfig::small_test(48, 12);
    let mut sim = Simulation::new(config);
    sim.run();

    let registries = sim.export_registries();
    assert_eq!(registries.len(), sim.live_peers());

    let mut generated_from_registries = 0u64;
    for (_, registry) in &registries {
        let exposition = rdht_metrics::encode(registry);
        let parsed = rdht_metrics::parse::parse(&exposition).expect("parses");
        assert!(parsed.has_metric(crate::metrics::names::STORED_REPLICAS));
        generated_from_registries += parsed
            .samples
            .iter()
            .filter(|s| s.name == crate::metrics::names::KTS_TIMESTAMPS)
            .map(|s| s.value as u64)
            .sum::<u64>();
    }
    let direct = sim
        .total_kts_stats(Algorithm::UmsDirect)
        .expect("UMS universes have KTS state");
    let indirect = sim
        .total_kts_stats(Algorithm::UmsIndirect)
        .expect("UMS universes have KTS state");
    assert_eq!(
        generated_from_registries,
        direct.timestamps_generated + indirect.timestamps_generated,
        "registry snapshots mirror the live totals"
    );
}
