//! A discrete-event simulator for UMS/KTS over Chord — the analogue of the
//! SimJava simulation the paper uses to scale its evaluation to 10,000 peers
//! (Section 5.1).
//!
//! The simulator owns:
//!
//! * a Chord overlay (`rdht-overlay`) whose routing state degrades under
//!   churn and is repaired by periodic stabilization;
//! * per-peer state (`rdht-core` KTS nodes and replica stores) for **three
//!   parallel algorithm universes** sharing the same churn and update
//!   history: UMS with direct counter initialization, UMS with indirect
//!   counter initialization, and the BRK baseline;
//! * a network model pricing every message with a normally distributed
//!   latency plus a bandwidth term (Table 1: latency ~ N(200 ms, 100),
//!   bandwidth ~ N(56 kbps, 32)), and a timeout penalty for probes sent to
//!   failed peers;
//! * Poisson processes for peer departures (λ = 1/s, each departure is a
//!   failure with probability `failure_rate`, and is immediately compensated
//!   by a fresh join so the population stays constant) and for updates on
//!   each data item (λ = 1/hour by default);
//! * a query workload issuing `retrieve` operations at uniformly random
//!   times from random peers, measuring response time and message count for
//!   each algorithm — the two metrics every figure of the paper reports.
//!
//! The measured operations run the *real* library code: queries call
//! [`rdht_core::ums::retrieve`] and [`rdht_baseline::retrieve`]; updates call
//! [`rdht_core::ums::insert`] and [`rdht_baseline::insert`] — all through
//! [`SimAccess`], which executes lookups against the simulated overlay and
//! accumulates simulated time and messages.
//!
//! # Example
//!
//! ```
//! use rdht_sim::{Algorithm, SimConfig, Simulation};
//!
//! let config = SimConfig::small_test(64, 7);
//! let mut sim = Simulation::new(config);
//! let report = sim.run();
//! let ums = report.summary(Algorithm::UmsDirect);
//! let brk = report.summary(Algorithm::Brk);
//! assert!(ums.mean_response_time <= brk.mean_response_time);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod algo;
mod config;
mod membership;
pub mod metrics;
mod network;
pub mod peer;
pub mod rng;
mod scheduler;
mod simulation;

pub use access::SimAccess;
pub use algo::Algorithm;
pub use config::{NetworkProfile, SimConfig};
pub use metrics::{QuerySample, RunStats, SimulationReport, SummaryStatistics};
pub use network::NetworkModel;
pub use peer::PeerState;
pub use scheduler::{Event, EventQueue};
pub use simulation::Simulation;

#[cfg(test)]
mod tests;
