//! The algorithms compared by the evaluation.

use std::fmt;

/// The three algorithms the paper's evaluation compares (Section 5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// UMS with a KTS that initializes counters with the **direct** transfer
    /// whenever possible (graceful leaves and joins hand counters to the next
    /// responsible); the indirect algorithm is only needed after failures.
    UmsDirect,
    /// UMS with a KTS that never transfers counters: every responsibility
    /// change forces the **indirect** initialization on the next request.
    UmsIndirect,
    /// The BRK baseline (BRICKS-style version counters, fetch-all retrieve).
    Brk,
}

impl Algorithm {
    /// All algorithms, in the order the experiment tables report them.
    pub const ALL: [Algorithm; 3] = [Algorithm::Brk, Algorithm::UmsIndirect, Algorithm::UmsDirect];

    /// Whether this algorithm uses UMS/KTS (as opposed to the baseline).
    pub fn is_ums(self) -> bool {
        matches!(self, Algorithm::UmsDirect | Algorithm::UmsIndirect)
    }

    /// The label used in tables and experiment output, matching the paper's
    /// figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::UmsDirect => "UMS-Direct",
            Algorithm::UmsIndirect => "UMS-Indirect",
            Algorithm::Brk => "BRK",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Algorithm::UmsDirect.label(), "UMS-Direct");
        assert_eq!(Algorithm::UmsIndirect.label(), "UMS-Indirect");
        assert_eq!(Algorithm::Brk.label(), "BRK");
        assert_eq!(Algorithm::Brk.to_string(), "BRK");
    }

    #[test]
    fn classification() {
        assert!(Algorithm::UmsDirect.is_ums());
        assert!(Algorithm::UmsIndirect.is_ums());
        assert!(!Algorithm::Brk.is_ums());
        assert_eq!(Algorithm::ALL.len(), 3);
    }
}
