//! The discrete-event scheduler: a virtual clock and a time-ordered event
//! queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The kinds of events driving a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A peer departs (graceful leave or failure, decided when the event
    /// fires) and a fresh peer joins to keep the population constant.
    PeerDeparture,
    /// A fresh peer joins the overlay, growing the population by one — the
    /// elastic half of the membership protocol (range split + direct counter
    /// hand-off from the successor).
    Join,
    /// A peer leaves gracefully, shrinking the population by one: it hands
    /// its replicas and counters to its successor (the direct algorithm of
    /// Section 4.2.1) before departing.
    GracefulLeave,
    /// A peer fail-stops, shrinking the population by one: nothing is handed
    /// over, and the counters it held must later re-initialize indirectly
    /// (Section 4.2.2). Scheduling [`Event::GracefulLeave`] and
    /// [`Event::Crash`] runs at the same rate is how the figure experiments
    /// compare the direct hand-off against crash-and-indirect recovery.
    Crash,
    /// The data item with this index is updated by a random peer.
    UpdateData {
        /// Index of the data item in the workload key set.
        key_index: usize,
    },
    /// A periodic overlay stabilization round.
    Stabilize,
    /// A periodic-inspection round (Section 4.2.2): timestamping responsibles
    /// compare their counters with the timestamps stored in the DHT.
    PeriodicInspection,
    /// A retrieve query is issued from a random peer for a random key, for
    /// every algorithm under test.
    Query,
}

/// One scheduled event.
#[derive(Clone, Debug)]
struct Scheduled {
    time: f64,
    sequence: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties are broken by insertion order to keep runs deterministic.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with a virtual clock.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    now: f64,
    next_sequence: u64,
}

impl EventQueue {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`. Events scheduled in the
    /// past are clamped to the current time (they fire immediately, after
    /// already-pending events at that time).
    pub fn schedule_at(&mut self, time: f64, event: Event) {
        let time = time.max(self.now);
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Scheduled {
            time,
            sequence,
            event,
        });
    }

    /// Schedules `event` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, event: Event) {
        self.schedule_at(self.now + delay.max(0.0), event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|scheduled| {
            self.now = scheduled.time;
            (scheduled.time, scheduled.event)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut queue = EventQueue::new();
        queue.schedule_at(5.0, Event::Stabilize);
        queue.schedule_at(1.0, Event::PeerDeparture);
        queue.schedule_at(3.0, Event::Query);
        let times: Vec<f64> = std::iter::from_fn(|| queue.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut queue = EventQueue::new();
        queue.schedule_at(2.0, Event::Stabilize);
        assert_eq!(queue.now(), 0.0);
        queue.pop();
        assert_eq!(queue.now(), 2.0);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut queue = EventQueue::new();
        queue.schedule_at(1.0, Event::UpdateData { key_index: 1 });
        queue.schedule_at(1.0, Event::UpdateData { key_index: 2 });
        queue.schedule_at(1.0, Event::UpdateData { key_index: 3 });
        let order: Vec<Event> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Event::UpdateData { key_index: 1 },
                Event::UpdateData { key_index: 2 },
                Event::UpdateData { key_index: 3 },
            ]
        );
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut queue = EventQueue::new();
        queue.schedule_at(10.0, Event::Stabilize);
        queue.pop();
        queue.schedule_at(3.0, Event::Query);
        let (time, event) = queue.pop().unwrap();
        assert_eq!(time, 10.0);
        assert_eq!(event, Event::Query);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut queue = EventQueue::new();
        queue.schedule_at(4.0, Event::Stabilize);
        queue.pop();
        queue.schedule_in(2.5, Event::Query);
        assert_eq!(queue.pop().unwrap().0, 6.5);
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut queue = EventQueue::new();
        assert!(queue.is_empty());
        queue.schedule_in(1.0, Event::Query);
        assert_eq!(queue.len(), 1);
        queue.pop();
        assert!(queue.is_empty());
    }
}
