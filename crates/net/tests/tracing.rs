//! End-to-end distributed-tracing contract: sampled client calls propagate
//! their context over the wire, peers attribute wall time to named phases,
//! and the `SlowRequests` scrape returns trees whose phases account for the
//! request's time. Also pins the negative space: scrapes and lifecycle
//! messages never enter the sampler, and an untraced cluster records
//! nothing.

use rdht_core::ums;
use rdht_hashing::Key;
use rdht_net::{Cluster, ClusterConfig, RequestTree, TraceConfig, TraceSink, TransportKind};

/// The five phases every peer-side request tree carries, in order.
const PEER_PHASES: [&str; 5] = ["queue_wait", "apply", "batch_wait", "fsync", "reply"];

fn phase_names(tree: &RequestTree) -> Vec<&str> {
    tree.phases.iter().map(|(name, _)| name.as_str()).collect()
}

/// One traced cluster + client over a shared sink, with every call sampled.
fn traced_cluster(kind: TransportKind, seed: u64) -> (Cluster, TraceSink) {
    let sink = TraceSink::new();
    let cluster = Cluster::spawn_with(
        ClusterConfig::new(4, 3, seed)
            .with_transport(kind)
            .with_trace(sink.clone()),
    );
    (cluster, sink)
}

#[test]
fn sampled_inserts_fill_peer_slowlogs_with_attributed_phases() {
    let (cluster, sink) = traced_cluster(TransportKind::Channel, 7201);
    let mut client = cluster.client();
    client.attach_trace(sink.clone(), TraceConfig::always());
    for i in 0..16 {
        let key = Key::new(format!("trace:{i}"));
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
    }

    let mut trees: Vec<RequestTree> = Vec::new();
    for peer in cluster.peer_ids() {
        trees.extend(client.slow_requests(peer, 32).unwrap());
    }
    assert!(
        !trees.is_empty(),
        "sampled inserts must land in at least one peer slowlog"
    );
    for tree in &trees {
        assert_eq!(phase_names(tree), PEER_PHASES, "tree {}", tree.name);
        assert_ne!(tree.trace_id, 0, "sampled trees carry the client trace id");
        // The phases partition arrival → reply-sent by construction; each
        // phase truncates to whole microseconds, so allow one microsecond
        // of rounding per phase.
        let attributed = tree.attributed_us();
        let floor = (tree.total_us * 9) / 10;
        assert!(
            attributed + PEER_PHASES.len() as u64 >= floor,
            "only {attributed}µs of {}µs attributed in {:?}",
            tree.total_us,
            tree
        );
    }

    // The client kept its own view of the same calls.
    let calls = client.slow_calls(32);
    assert!(!calls.is_empty(), "client slowlog records sampled calls");
    assert!(calls.iter().all(|tree| tree.trace_id != 0));

    cluster.shutdown();

    // One trace id must appear on both sides of the wire: in a client span
    // and in a peer span of the shared sink.
    let events = sink.events();
    let ids_of = |prefix: &str| -> Vec<String> {
        events
            .iter()
            .filter(|event| event.name.starts_with(prefix))
            .flat_map(|event| {
                event
                    .args
                    .iter()
                    .filter(|(key, _)| key == "trace_id")
                    .map(|(_, value)| value.clone())
            })
            .flat_map(|joined| joined.split(',').map(str::to_string).collect::<Vec<_>>())
            .collect()
    };
    let client_ids = ids_of("client.");
    let peer_ids = ids_of("peer.");
    assert!(!client_ids.is_empty(), "client spans recorded");
    assert!(!peer_ids.is_empty(), "peer spans recorded");
    assert!(
        client_ids.iter().any(|id| peer_ids.contains(id)),
        "a sampled trace id must span both the client and a peer"
    );
    // The storage engine's observer hook fired for the covering syncs.
    assert!(
        events.iter().any(|event| event.name == "peer.fsync"),
        "batch-covering fsync spans recorded"
    );
}

#[test]
fn scrapes_and_lifecycle_bypass_the_sampler() {
    let (cluster, sink) = traced_cluster(TransportKind::Channel, 7202);
    let mut client = cluster.client();
    client.attach_trace(sink.clone(), TraceConfig::always());

    // Protocol-noise requests: metrics scrapes and slowlog scrapes. None of
    // them may enter a slowlog or emit spans, even at sample rate 1.0.
    let peer = cluster.peer_ids()[0];
    for _ in 0..4 {
        let trees = client.slow_requests(peer, 8).unwrap();
        assert!(trees.is_empty(), "scrapes must never trace themselves");
    }
    assert!(client.slow_calls(8).is_empty());
    cluster.shutdown();
    assert!(
        sink.events().is_empty(),
        "no data request was made, so nothing may have been traced: {:?}",
        sink.events()
    );
}

#[test]
fn unsampled_clusters_record_nothing() {
    let cluster =
        Cluster::spawn_with(ClusterConfig::new(3, 2, 7203).with_transport(TransportKind::Channel));
    let mut client = cluster.client();
    // No attach_trace: the sampler is off, requests carry no context.
    for i in 0..4 {
        let key = Key::new(format!("plain:{i}"));
        ums::insert(&mut client, &key, vec![i]).unwrap();
    }
    for peer in cluster.peer_ids() {
        assert!(
            client.slow_requests(peer, 8).unwrap().is_empty(),
            "an untraced workload must leave every peer slowlog empty"
        );
    }
    cluster.shutdown();
}

#[test]
fn tracing_works_over_tcp() {
    let (cluster, sink) = traced_cluster(TransportKind::Tcp, 7204);
    let mut client = cluster.client();
    client.attach_trace(sink.clone(), TraceConfig::always());
    for i in 0..8 {
        let key = Key::new(format!("tcp-trace:{i}"));
        ums::insert(&mut client, &key, vec![i]).unwrap();
    }
    let mut trees: Vec<RequestTree> = Vec::new();
    for peer in cluster.peer_ids() {
        trees.extend(client.slow_requests(peer, 16).unwrap());
    }
    assert!(
        !trees.is_empty(),
        "trace contexts must survive the TCP wire (v4 frames)"
    );
    for tree in &trees {
        assert_eq!(phase_names(tree), PEER_PHASES);
    }
    cluster.shutdown();
}
