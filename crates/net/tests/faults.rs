//! The fault matrix: the cluster's behavioural contract re-asserted on a
//! hostile network, against **both** transport backends. A seeded
//! [`FaultPlan`] drops, duplicates and delays frames on every link while the
//! retry/backoff client and the peers' idempotency window keep every
//! workload exactly-once and every retrieve current. This suite is the
//! standing proving ground for networking changes: anything that loses an
//! ack, double-applies a mutation, or hangs a coordinator fails here.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use proptest::collection::vec;
use proptest::prelude::*;

use rdht_core::{ums, Timestamp};
use rdht_hashing::Key;
use rdht_membership::HandoffBundle;
use rdht_net::{
    serve_tcp_peer, Cluster, ClusterConfig, End, FaultPlan, LinkFaults, OpId, PeerId, Reply,
    Request, RetryPolicy, TcpPeerConfig, TcpTransport, Transport, TransportKind,
};

const REPLY_WAIT: Duration = Duration::from_secs(5);

fn both(check: impl Fn(TransportKind)) {
    for kind in [TransportKind::Channel, TransportKind::Tcp] {
        check(kind);
    }
}

fn spawn_faulty(kind: TransportKind, peers: usize, replicas: usize, plan: FaultPlan) -> Cluster {
    Cluster::spawn_with(
        ClusterConfig::new(peers, replicas, 0xFA17)
            .with_transport(kind)
            .with_faults(plan),
    )
}

/// Runs an insert-then-retrieve workload and asserts the full contract: no
/// lost acks on insert, and every retrieve certified current (not degraded).
fn hostile_workload(kind: TransportKind, cluster: &Cluster, keys: usize, tag: &str) {
    let mut client = cluster
        .client()
        .with_retry_policy(RetryPolicy::aggressive());
    for i in 0..keys {
        let key = Key::new(format!("{tag}:{i}"));
        let report = ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
        assert_eq!(
            report.replicas_failed, 0,
            "{kind:?}/{tag}: insert {i} lost an ack"
        );
    }
    for i in 0..keys {
        let key = Key::new(format!("{tag}:{i}"));
        let got = ums::retrieve(&mut client, &key).unwrap();
        assert!(got.is_current, "{kind:?}/{tag}: key {i} is not current");
        assert!(!got.degraded, "{kind:?}/{tag}: key {i} degraded");
        assert_eq!(got.data.unwrap(), format!("v{i}").into_bytes());
    }
}

#[test]
fn workload_survives_five_percent_loss() {
    both(|kind| {
        let plan = FaultPlan::lossy(0x1055, 0.05);
        let cluster = spawn_faulty(kind, 5, 4, plan.clone());
        hostile_workload(kind, &cluster, 12, "lossy");
        let stats = plan.stats();
        assert!(
            stats.totals.frames_dropped > 0,
            "{kind:?}: a 5% lossy plan must actually drop frames"
        );
        cluster.shutdown();
    });
}

#[test]
fn workload_survives_heavy_duplication() {
    both(|kind| {
        let plan = FaultPlan::dup_heavy(0xD0_0B1E);
        let cluster = spawn_faulty(kind, 5, 4, plan.clone());
        hostile_workload(kind, &cluster, 12, "dup");
        let stats = plan.stats();
        assert!(
            stats.totals.frames_duplicated > 0,
            "{kind:?}: the dup-heavy plan must actually duplicate frames"
        );
        let dedup = cluster.dedup_stats();
        assert!(
            dedup.duplicates_suppressed > 0,
            "{kind:?}: duplicated mutations must be absorbed by the dedup window"
        );
        cluster.shutdown();
    });
}

#[test]
fn workload_survives_jittered_latency() {
    both(|kind| {
        let plan = FaultPlan::jittered_latency(0x1A7, Duration::from_millis(50));
        let cluster = spawn_faulty(kind, 5, 4, plan.clone());
        hostile_workload(kind, &cluster, 8, "latency");
        let stats = plan.stats();
        assert!(
            stats.totals.frames_delayed > 0,
            "{kind:?}: the latency plan must actually delay frames"
        );
        cluster.shutdown();
    });
}

/// The acceptance workload: 8 concurrent writers under 5% loss *and*
/// duplication, on both backends. Every retrieve must come back current and
/// `last_timestamp` must equal the number of logical inserts per key — a
/// retried or duplicated `gen_ts` that burned a second timestamp would show
/// up here as an inflated counter.
#[test]
fn eight_writer_workload_is_exactly_once_under_loss_and_duplication() {
    both(|kind| {
        let plan = FaultPlan::new(0xACCE55).with_all_links(LinkFaults {
            drop_probability: 0.05,
            duplicate_probability: 0.25,
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
        });
        let cluster = spawn_faulty(kind, 6, 4, plan.clone());
        const WRITERS: usize = 8;
        const UPDATES: u64 = 4;
        thread::scope(|scope| {
            for writer in 0..WRITERS {
                let cluster = &cluster;
                scope.spawn(move || {
                    let mut client = cluster
                        .client()
                        .with_retry_policy(RetryPolicy::aggressive());
                    let key = Key::new(format!("acc:{writer}"));
                    for i in 0..UPDATES {
                        ums::insert(&mut client, &key, format!("w{writer}:{i}").into_bytes())
                            .unwrap();
                    }
                });
            }
        });
        let mut client = cluster
            .client()
            .with_retry_policy(RetryPolicy::aggressive());
        for writer in 0..WRITERS {
            let key = Key::new(format!("acc:{writer}"));
            let got = ums::retrieve(&mut client, &key).unwrap();
            assert!(got.is_current, "{kind:?}: acc:{writer} is not current");
            assert_eq!(
                got.data.unwrap(),
                format!("w{writer}:{}", UPDATES - 1).into_bytes()
            );
            assert_eq!(
                got.last_timestamp,
                Timestamp(UPDATES),
                "{kind:?}: acc:{writer}: retried/duplicated gen_ts burned extra timestamps"
            );
        }
        let stats = plan.stats();
        assert!(stats.totals.frames_dropped > 0 && stats.totals.frames_duplicated > 0);
        assert!(
            cluster.dedup_stats().duplicates_suppressed > 0,
            "{kind:?}: the dedup window never fired under 25% duplication"
        );
        cluster.shutdown();
    });
}

/// The coordinator's bounded install retry: a partition swallows the first
/// `InstallState` of a join; once it heals mid-run the source's re-send goes
/// through and the join converges instead of hanging forever.
#[test]
fn join_converges_when_the_first_install_is_dropped() {
    let plan = FaultPlan::new(0x10A1);
    let mut cluster = Cluster::spawn_with(
        ClusterConfig::new(4, 3, 9000)
            .with_transport(TransportKind::Channel)
            .with_faults(plan.clone()),
    );
    let mut client = cluster.client();
    for i in 0..8u8 {
        ums::insert(&mut client, &Key::new(format!("j:{i}")), vec![i]).unwrap();
    }
    let ids = cluster.peer_ids();
    // Join midway into the first arc: the hand-off source is ids[1].
    let new_id = PeerId(ids[0].0 + (ids[1].0 - ids[0].0) / 2);
    let source = ids[1];
    plan.partition(
        "install",
        vec![End::Peer(source.0)],
        vec![End::Peer(new_id.0)],
    );
    let healer = {
        let plan = plan.clone();
        thread::spawn(move || {
            // Past the first 2 s install-ack wait: at least one install has
            // been swallowed before the link comes back.
            thread::sleep(Duration::from_secs(3));
            plan.heal("install");
        })
    };
    let started = Instant::now();
    cluster
        .join_peer(new_id)
        .expect("join must converge once the partition heals");
    healer.join().unwrap();
    assert!(
        plan.stats().totals.frames_dropped >= 1,
        "the partition never swallowed an install"
    );
    assert!(
        started.elapsed() < Duration::from_secs(12),
        "the join took longer than the bounded retry budget explains"
    );
    for i in 0..8u8 {
        let got = ums::retrieve(&mut client, &Key::new(format!("j:{i}"))).unwrap();
        assert!(
            got.is_current,
            "j:{i} lost currency across the retried join"
        );
        assert_eq!(got.data.unwrap(), vec![i]);
    }
    cluster.shutdown();
}

/// A lost install *ack* means the target applied the bundle but the source
/// re-sends it: the target must re-ack from its dedup cache without applying
/// the bundle a second time.
#[test]
fn retried_install_is_applied_once_and_reacked_from_cache() {
    both(|kind| {
        let cluster = Cluster::spawn_with(ClusterConfig::new(3, 3, 9100).with_transport(kind));
        let peer = cluster.peer_ids()[0];
        let endpoint = cluster.peer_endpoint(peer).unwrap();
        let mut bundle = HandoffBundle::default();
        bundle
            .counters
            .push((Key::new("install:key"), Timestamp(7)));
        let op = Some(OpId {
            client: 0xD_EAD,
            seq: 1,
        });
        let install = || {
            endpoint
                .send(Request::InstallState {
                    op,
                    start: 1,
                    end: 2,
                    bundle: bundle.clone(),
                })
                .unwrap()
                .wait(REPLY_WAIT)
                .unwrap()
        };
        let first = install();
        let second = install();
        assert!(
            matches!(first, Reply::InstallAck { .. }),
            "{kind:?}: unexpected install reply: {first:?}"
        );
        assert_eq!(
            first, second,
            "{kind:?}: the cached re-ack must be identical"
        );
        assert_eq!(cluster.dedup_stats().duplicates_suppressed, 1);
        cluster.shutdown();
    });
}

/// When the timestamping responsible is unreachable past the retry budget,
/// retrieval returns the best reachable stamp flagged `degraded` instead of
/// failing — and recovers full currency once the partition heals.
#[test]
fn retrieve_degrades_while_the_timestamp_peer_is_partitioned_away() {
    let plan = FaultPlan::new(0xDE6);
    let cluster = Cluster::spawn_with(
        ClusterConfig::new(5, 4, 9200)
            .with_transport(TransportKind::Channel)
            .with_faults(plan.clone()),
    );
    let mut client = cluster.client().with_retry_policy(RetryPolicy {
        attempts: 2,
        try_timeout: Duration::from_millis(200),
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter: 0.0,
    });
    let key = Key::new("deg:key");
    ums::insert(&mut client, &key, b"v".to_vec()).unwrap();
    let ts_peer = cluster.timestamp_responsible(&key).unwrap();
    plan.partition("kts", vec![End::Client], vec![End::Peer(ts_peer.0)]);
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(got.degraded, "unreachable KTS must surface as degraded");
    assert!(!got.is_current, "currency cannot be certified without KTS");
    assert_eq!(got.last_timestamp, Timestamp::ZERO);
    assert_eq!(
        got.data.unwrap(),
        b"v",
        "the best reachable stamp is served"
    );
    plan.heal("kts");
    let got = ums::retrieve(&mut client, &key).unwrap();
    assert!(
        got.is_current && !got.degraded,
        "healing restores certification"
    );
    cluster.shutdown();
}

// ---------------------------------------------------------------------------
// TCP redial: a peer restarting on a new port mid-stream
// ---------------------------------------------------------------------------

fn free_addr() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

fn wait_until_accepting(addr: &SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect(addr).is_err() {
        assert!(Instant::now() < deadline, "peer at {addr} never came up");
        thread::sleep(Duration::from_millis(5));
    }
}

fn spawn_tcp_peer(id: PeerId, addr: SocketAddr) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        serve_tcp_peer(TcpPeerConfig {
            id,
            peers: vec![(id, addr)],
            num_replicas: 2,
            seed: 9300,
            storage: None,
            trace_out: None,
        })
        .unwrap()
    })
}

/// A peer that comes back on a *different* port mid-stream: the pooled
/// connection dies, the book is updated, and the endpoint's capped-backoff
/// redial loop re-resolves the address and reconnects — same endpoint
/// object, no client restart.
#[test]
fn tcp_endpoint_redials_a_peer_restarted_on_a_new_port() {
    let id = PeerId(4_000);
    let first_addr = free_addr();
    let server = spawn_tcp_peer(id, first_addr);
    wait_until_accepting(&first_addr);

    let transport = TcpTransport::with_peers([(id, first_addr)]);
    let endpoint = transport.endpoint(id).unwrap();
    let key = Key::new("redial:key");
    let put = endpoint
        .send(Request::PutReplica {
            op: None,
            hash: rdht_hashing::HashId(0),
            key: key.clone(),
            payload: b"before".to_vec(),
            timestamp: Timestamp(1),
        })
        .unwrap();
    assert_eq!(put.wait(REPLY_WAIT).unwrap(), Reply::PutAck);

    // Take the peer down; the pooled connection is now dead. A data request
    // while it is gone must fail typed within the redial deadline, not hang.
    endpoint.send_no_reply(Request::Shutdown).unwrap();
    server.join().unwrap();
    let started = Instant::now();
    let outcome = endpoint.send(Request::GetReplica {
        hash: rdht_hashing::HashId(0),
        key: key.clone(),
    });
    assert!(outcome.is_err(), "a downed peer must fail the send");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "the redial loop must give up at its deadline"
    );

    // Restart on a fresh port, update the book: the same endpoint redials.
    let second_addr = free_addr();
    assert_ne!(first_addr, second_addr);
    let server = spawn_tcp_peer(id, second_addr);
    wait_until_accepting(&second_addr);
    transport.set_addr(id, second_addr);
    let got = endpoint
        .send(Request::GetReplica {
            hash: rdht_hashing::HashId(0),
            key,
        })
        .unwrap()
        .wait(REPLY_WAIT)
        .unwrap();
    // The restarted peer has a fresh store — the point is that the frame
    // reached it over the re-dialed connection at the new address.
    assert_eq!(got, Reply::Replica(None));
    endpoint.send_no_reply(Request::Shutdown).unwrap();
    server.join().unwrap();
}

// ---------------------------------------------------------------------------
// Dedup window: duplication/reordering ≡ exactly-once (proptest)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any duplication and reordering of a `gen_ts` op sequence is
    /// equivalent to applying each op exactly once: the counter advances by
    /// the number of *distinct* ops, every duplicate is re-acked from the
    /// cache, and the suppression counter accounts for every extra send.
    #[test]
    fn duplicated_reordered_gen_ts_applies_exactly_once(
        n in 1usize..24,
        extras in vec(any::<u16>(), 0..40),
        shuffle_seed in any::<u64>(),
    ) {
        let cluster = Cluster::spawn(3, 2, 9400);
        let key = Key::new("dedup:key");
        let mut client = cluster.client();
        // One insert initializes the key's counter to 1.
        ums::insert(&mut client, &key, b"seed".to_vec()).unwrap();
        let responsible = cluster.timestamp_responsible(&key).unwrap();
        let endpoint = cluster.peer_endpoint(responsible).unwrap();

        // Each distinct op at least once, plus duplicates, then a
        // deterministic Fisher–Yates shuffle.
        let mut schedule: Vec<u64> = (0..n as u64).collect();
        schedule.extend(extras.iter().map(|&e| u64::from(e) % n as u64));
        let mut state = shuffle_seed | 1;
        let mut next = move |bound: usize| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        for i in (1..schedule.len()).rev() {
            let j = next(i + 1);
            schedule.swap(i, j);
        }

        let pending: Vec<_> = schedule
            .iter()
            .map(|&seq| {
                endpoint
                    .send(Request::Timestamp {
                        op: Some(OpId { client: 0xD00D, seq }),
                        key: key.clone(),
                        generate: true,
                        observation_hint: None,
                    })
                    .unwrap()
            })
            .collect();
        for p in pending {
            let reply = p.wait(REPLY_WAIT).unwrap();
            prop_assert!(
                matches!(reply, Reply::Timestamp(_)),
                "unexpected gen_ts reply: {:?}", reply
            );
        }

        let last = endpoint
            .send(Request::Timestamp {
                op: None,
                key: key.clone(),
                generate: false,
                observation_hint: None,
            })
            .unwrap()
            .wait(REPLY_WAIT)
            .unwrap();
        prop_assert_eq!(last, Reply::Timestamp(Timestamp(1 + n as u64)));
        prop_assert_eq!(
            cluster.dedup_stats().duplicates_suppressed,
            (schedule.len() - n) as u64
        );
        cluster.shutdown();
    }
}
