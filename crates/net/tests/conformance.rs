//! Transport conformance suite: the same behavioural contract, asserted
//! against **both** transport backends — the in-process channel mesh and
//! length-framed TCP over loopback. Everything a deployment relies on is
//! here: request/reply matching under pipelining, concurrent clients,
//! typed (not hanging) failures when a peer crashes mid-request, and
//! forwarding through a departed peer. TCP-only robustness (garbage and
//! oversized frames from a hostile client) is covered at the end against
//! real sockets via the public multi-process API.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use rdht_core::{ums, Timestamp, UmsAccess};
use rdht_hashing::{HashId, Key};
use rdht_net::{
    serve_tcp_peer, CallError, Cluster, ClusterClient, ClusterConfig, PeerId, Reply, Request,
    TcpPeerConfig, TcpTransport, Transport, TransportKind, MAX_FRAME_LEN,
};

const REPLY_WAIT: Duration = Duration::from_secs(5);

/// Runs a conformance check against both transport backends.
fn both(check: impl Fn(TransportKind)) {
    for kind in [TransportKind::Channel, TransportKind::Tcp] {
        check(kind);
    }
}

fn spawn(kind: TransportKind, peers: usize, replicas: usize, seed: u64) -> Cluster {
    Cluster::spawn_with(ClusterConfig::new(peers, replicas, seed).with_transport(kind))
}

#[test]
fn insert_and_retrieve_are_current_on_both_transports() {
    both(|kind| {
        let cluster = spawn(kind, 5, 4, 1101);
        let mut client = cluster.client();
        for i in 0..12 {
            let key = Key::new(format!("conf:{i}"));
            ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
        }
        for i in 0..12 {
            let key = Key::new(format!("conf:{i}"));
            let got = ums::retrieve(&mut client, &key).unwrap();
            assert!(got.is_current, "{kind:?}: key conf:{i} is not current");
            assert_eq!(got.data.unwrap(), format!("v{i}").into_bytes());
        }
        cluster.shutdown();
    });
}

/// Pipelining: a client may have many requests in flight on one endpoint;
/// each pending reply must resolve to the answer of *its* request (matching
/// is by request id on the wire, not by arrival luck).
#[test]
fn pipelined_requests_match_replies_by_id() {
    both(|kind| {
        let cluster = spawn(kind, 3, 3, 1102);
        let peer = cluster.peer_ids()[0];
        let endpoint = cluster.peer_endpoint(peer).expect("first peer endpoint");
        let n = 32u8;
        let puts: Vec<_> = (0..n)
            .map(|i| {
                endpoint
                    .send(Request::PutReplica {
                        op: None,
                        hash: HashId(0),
                        key: Key::new(format!("pipe:{i}")),
                        payload: vec![i; 3],
                        timestamp: Timestamp(1),
                    })
                    .unwrap()
            })
            .collect();
        let gets: Vec<_> = (0..n)
            .map(|i| {
                endpoint
                    .send(Request::GetReplica {
                        hash: HashId(0),
                        key: Key::new(format!("pipe:{i}")),
                    })
                    .unwrap()
            })
            .collect();
        for put in puts {
            assert_eq!(put.wait(REPLY_WAIT).unwrap(), Reply::PutAck);
        }
        for (i, get) in gets.into_iter().enumerate() {
            match get.wait(REPLY_WAIT).unwrap() {
                Reply::Replica(Some((payload, stamp))) => {
                    assert_eq!(payload, vec![i as u8; 3], "{kind:?}: reply mismatched");
                    assert_eq!(stamp, Timestamp(1));
                }
                other => panic!("{kind:?}: unexpected reply to get {i}: {other:?}"),
            }
        }
        cluster.shutdown();
    });
}

#[test]
fn concurrent_clients_do_not_interfere() {
    both(|kind| {
        let cluster = spawn(kind, 4, 4, 1103);
        thread::scope(|scope| {
            for writer in 0..4u8 {
                let cluster = &cluster;
                scope.spawn(move || {
                    let mut client = cluster.client();
                    for i in 0..8u8 {
                        let key = Key::new(format!("w{writer}:{i}"));
                        ums::insert(&mut client, &key, vec![writer, i]).unwrap();
                        let got = ums::retrieve(&mut client, &key).unwrap();
                        assert!(got.is_current);
                        assert_eq!(got.data.unwrap(), vec![writer, i]);
                    }
                });
            }
        });
        // Every write is visible to a fresh client afterwards.
        let mut client = cluster.client();
        for writer in 0..4u8 {
            for i in 0..8u8 {
                let got = ums::retrieve(&mut client, &Key::new(format!("w{writer}:{i}"))).unwrap();
                assert!(got.is_current, "{kind:?}: w{writer}:{i} lost");
                assert_eq!(got.data.unwrap(), vec![writer, i]);
            }
        }
        cluster.shutdown();
    });
}

/// A peer crashing with a request outstanding must surface as a *typed*,
/// prompt error — never a silent hang until the timeout.
#[test]
fn crashed_peer_yields_typed_error_and_ring_stays_live() {
    both(|kind| {
        let cluster = spawn(kind, 4, 3, 1104);
        let victim = cluster.peer_ids()[1];
        let endpoint = cluster.peer_endpoint(victim).expect("victim endpoint");
        cluster.crash_peer(victim).unwrap();
        while !cluster.peer_thread_finished(victim) {
            thread::sleep(Duration::from_millis(2));
        }
        let started = Instant::now();
        let outcome = endpoint
            .send(Request::GetReplica {
                hash: HashId(1),
                key: Key::new("gone"),
            })
            .map_err(CallError::Transport)
            .and_then(|pending| pending.wait(REPLY_WAIT));
        match outcome {
            Err(CallError::Dropped)
            | Err(CallError::Transport(_))
            | Err(CallError::Rejected(_)) => {}
            Ok(reply) => panic!("{kind:?}: crashed peer answered: {reply:?}"),
            Err(CallError::Timeout) => {
                panic!("{kind:?}: crash surfaced as a timeout, not a typed failure")
            }
            Err(CallError::Exhausted { .. }) => {
                panic!("{kind:?}: a bare endpoint send never retries")
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "{kind:?}: the failure was not prompt"
        );
        // The remaining ring reroutes around the dead peer.
        let mut client = cluster.client();
        let key = Key::new("still-alive");
        ums::insert(&mut client, &key, b"x".to_vec()).unwrap();
        assert!(ums::retrieve(&mut client, &key).unwrap().is_current);
        cluster.shutdown();
    });
}

/// After a graceful leave, requests still reaching the departed peer (sent
/// by clients holding the old view) are forwarded to the new owner — on
/// both transports, including across real sockets.
#[test]
fn departed_peer_forwards_to_the_new_owner() {
    both(|kind| {
        let mut cluster = spawn(kind, 5, 4, 1105);
        let mut client = cluster.client();
        let keys: Vec<Key> = (0..24).map(|i| Key::new(format!("fwd:{i}"))).collect();
        for (i, key) in keys.iter().enumerate() {
            ums::insert(&mut client, key, format!("v{i}").into_bytes()).unwrap();
        }
        let leaving = cluster.peer_ids()[2];
        // Record (hash, key) pairs whose replica the departing peer owns,
        // as a stale client would have resolved them.
        let hashes: Vec<HashId> = client.replication_ids().collect();
        let mut owned: Vec<(HashId, Key, usize)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            for &hash in &hashes {
                if cluster.replica_responsible(hash, key) == Some(leaving) {
                    owned.push((hash, key.clone(), i));
                }
            }
        }
        assert!(
            !owned.is_empty(),
            "{kind:?}: the departing peer owns no probed replica; pick another seed"
        );
        let old_endpoint = cluster.peer_endpoint(leaving).expect("departing endpoint");
        cluster.leave_peer(leaving).unwrap();
        // Probe through the *old* endpoint: the departed peer must forward
        // to the new owner and relay the answer, not serve its dead store.
        for (hash, key, i) in owned {
            let pending = old_endpoint
                .send(Request::GetReplica {
                    hash,
                    key: key.clone(),
                })
                .expect("departed forwarder still reachable");
            match pending.wait(REPLY_WAIT).unwrap() {
                Reply::Replica(Some((payload, _))) => {
                    assert_eq!(
                        payload,
                        format!("v{i}").into_bytes(),
                        "{kind:?}: wrong replica"
                    );
                }
                other => panic!("{kind:?}: unexpected forwarded reply: {other:?}"),
            }
        }
        // And the normal client path still certifies currency everywhere.
        for (i, key) in keys.iter().enumerate() {
            let got = ums::retrieve(&mut client, key).unwrap();
            assert!(
                got.is_current,
                "{kind:?}: fwd:{i} lost currency after leave"
            );
        }
        cluster.shutdown();
    });
}

// ---------------------------------------------------------------------------
// TCP-only robustness: hostile bytes on real sockets
// ---------------------------------------------------------------------------

/// Reserves `n` distinct loopback addresses by binding and dropping
/// listeners (the ports stay free long enough for the peers to claim them).
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|listener| listener.local_addr().unwrap())
        .collect()
}

fn wait_until_accepting(addr: &SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while TcpStream::connect(addr).is_err() {
        assert!(Instant::now() < deadline, "peer at {addr} never came up");
        thread::sleep(Duration::from_millis(5));
    }
}

/// A deterministic xorshift byte stream — the "fuzzing client".
struct Garbage(u64);

impl Garbage {
    fn chunk(&mut self, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                self.0 as u8
            })
            .collect()
    }
}

/// Garbage, truncated and oversized frames from hostile connections must
/// not take a TCP peer down: the peer drops the offending connection and
/// keeps serving well-formed clients. Exercises the public multi-process
/// API (`serve_tcp_peer` + `ClusterClient::connect_tcp`) over real sockets.
#[test]
fn tcp_peer_survives_garbage_and_oversized_frames() {
    let ids = [PeerId(1_000), PeerId(2_000), PeerId(3_000)];
    let addrs = free_addrs(ids.len());
    let book: Vec<(PeerId, SocketAddr)> = ids.iter().copied().zip(addrs).collect();
    let servers: Vec<_> = ids
        .iter()
        .map(|&id| {
            let peers = book.clone();
            thread::spawn(move || {
                serve_tcp_peer(TcpPeerConfig {
                    id,
                    peers,
                    num_replicas: 3,
                    seed: 1106,
                    storage: None,
                    trace_out: None,
                })
            })
        })
        .collect();
    for (_, addr) in &book {
        wait_until_accepting(addr);
    }

    let mut garbage = Garbage(0x5eed_cafe);
    for (_, addr) in &book {
        // Plain garbage: the first 4 bytes form an absurd length prefix.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&[0xDE; 64]).unwrap();
        // An oversized length prefix must be rejected before allocation.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&(MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
        conn.write_all(&garbage.chunk(32)).unwrap();
        // A plausible length prefix followed by a garbage payload.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&32u32.to_le_bytes()).unwrap();
        conn.write_all(&garbage.chunk(32)).unwrap();
        // A frame truncated by a disconnect.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(&100u32.to_le_bytes()).unwrap();
        conn.write_all(&garbage.chunk(10)).unwrap();
        drop(conn);
        // A burst of random connections spraying random bytes.
        for _ in 0..8 {
            let mut conn = TcpStream::connect(addr).unwrap();
            let len = 1 + (garbage.chunk(1)[0] as usize % 200);
            let _ = conn.write_all(&garbage.chunk(len));
        }
    }

    // The deployment is still fully live for a well-formed client.
    let mut client = ClusterClient::connect_tcp(book.clone(), 3, 1106);
    for i in 0..8 {
        let key = Key::new(format!("fuzz:{i}"));
        ums::insert(&mut client, &key, format!("v{i}").into_bytes()).unwrap();
        let got = ums::retrieve(&mut client, &key).unwrap();
        assert!(got.is_current, "fuzz:{i} not current after garbage storm");
        assert_eq!(got.data.unwrap(), format!("v{i}").into_bytes());
    }

    let transport = TcpTransport::with_peers(book.iter().copied());
    for &id in &ids {
        transport
            .endpoint(id)
            .unwrap()
            .send_no_reply(Request::Shutdown)
            .unwrap();
    }
    for server in servers {
        server.join().unwrap().unwrap();
    }
}
